"""The propositional bridge and coNP-completeness (Section 5).

Demonstrates:

1. the implication-constraint formula of a differential constraint and
   Prop 5.3's identity ``negminset = L(X, Y)``,
2. implication transfer (Prop 5.4) through truth tables and DPLL,
3. the Prop 5.5 reduction: DNF tautology as a differential-constraint
   implication query,
4. a small timing sweep making the exponential growth visible.

Run:  python examples/logic_and_complexity.py
"""

import random
import time

from repro import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core.implication import implies_lattice, implies_sat
from repro.instances import random_constraint, random_constraint_set, random_dnf
from repro.logic import (
    implies_prop,
    is_tautology_bruteforce,
    is_tautology_via_differential,
    negminset_of_constraint,
    to_formula,
)


def main() -> None:
    S = GroundSet("ABCD")

    # ------------------------------------------------------------------
    # 1. Prop 5.3
    # ------------------------------------------------------------------
    c = DifferentialConstraint.parse(S, "A -> B, CD")
    print(f"constraint {c!r}")
    print(f"  as a formula: {to_formula(c)!r}")
    nm = sorted(S.format_mask(u) for u in negminset_of_constraint(c))
    lat = sorted(S.format_mask(u) for u in c.iter_lattice())
    print(f"  negminset = {nm}")
    print(f"  L(X, Y)   = {lat}   (Prop 5.3: identical)\n")

    # ------------------------------------------------------------------
    # 2. Prop 5.4 on a random instance
    # ------------------------------------------------------------------
    rng = random.Random(42)
    cset = random_constraint_set(rng, S, 3, max_members=2)
    target = random_constraint(rng, S, max_members=2)
    print(f"C = {cset!r}")
    print(f"target = {target!r}")
    print(f"  lattice:        {implies_lattice(cset, target)}")
    print(f"  minset:         {implies_prop(cset, target, 'minset')}")
    print(f"  DPLL:           {implies_sat(cset, target)}\n")

    # ------------------------------------------------------------------
    # 3. Prop 5.5: DNF tautology through differential constraints
    # ------------------------------------------------------------------
    P = GroundSet("PQR")
    # (P and Q) or (not P) or (not Q): a tautology
    taut = [(P.parse("PQ"), 0), (0, P.parse("P")), (0, P.parse("Q"))]
    print("phi = (P & Q) | ~P | ~Q")
    print(f"  brute force tautology:        {is_tautology_bruteforce(taut, P)}")
    print(f"  via differential implication: "
          f"{is_tautology_via_differential(taut, P)}")
    non_taut = [(P.parse("P"), 0), (0, P.parse("Q"))]
    print("psi = P | ~Q")
    print(f"  via differential implication: "
          f"{is_tautology_via_differential(non_taut, P)}\n")

    # ------------------------------------------------------------------
    # 4. the exponential wall (the content of coNP-hardness on a laptop)
    # ------------------------------------------------------------------
    print("decision time vs |S| (20 random queries each):")
    print("  |S|   lattice(ms)   DPLL(ms)")
    for n in (4, 6, 8, 10, 12):
        ground = GroundSet([f"x{i}" for i in range(n)])
        rng = random.Random(100 + n)
        queries = [
            (
                random_constraint_set(rng, ground, 3, max_members=2),
                random_constraint(rng, ground, max_members=2),
            )
            for _ in range(20)
        ]
        t0 = time.perf_counter()
        lat = [implies_lattice(cs, t) for cs, t in queries]
        t_lat = (time.perf_counter() - t0) * 1e3 / len(queries)
        t0 = time.perf_counter()
        sat = [implies_sat(cs, t) for cs, t in queries]
        t_sat = (time.perf_counter() - t0) * 1e3 / len(queries)
        assert lat == sat
        print(f"  {n:3d}   {t_lat:11.3f}   {t_sat:8.3f}")
    print("\n(Prop 5.5: no polynomial algorithm is expected -- the "
          "singleton-RHS fragment, in contrast, is P-time; see "
          "examples/quickstart.py and benchmarks/test_bench_fd_subclass.py)")


if __name__ == "__main__":
    main()
