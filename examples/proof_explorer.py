"""Exploring the inference system: proofs as first-class objects (Section 4).

Shows the Figure-1 rules, Figure-2 macro rules, the constructive
completeness engine, proof checking, and expansion of derived rules into
primitives -- including the paper's own Example 4.3 derivation replayed
step by step.

Run:  python examples/proof_explorer.py
"""

from repro import ConstraintSet, DifferentialConstraint, GroundSet, check_proof, derive
from repro.core import SetFamily
from repro.core.proofs import augmentation, axiom, projection, transitivity
from repro.errors import NotImpliedError


def main() -> None:
    S = GroundSet("ABCD")

    # ------------------------------------------------------------------
    # 1. Example 4.3, replayed literally
    # ------------------------------------------------------------------
    print("Example 4.3: derive AB -> {D} from {A -> {BC, CD}, C -> {D}}\n")
    given_b = axiom(DifferentialConstraint.parse(S, "A -> BC, CD"))
    given_a = axiom(DifferentialConstraint.parse(S, "C -> D"))
    step = projection(given_b, S.parse("CD"), S.parse("C"))
    step = projection(step, S.parse("BC"), S.parse("C"))
    step = augmentation(step, S.parse("B"))
    proof = transitivity(step, given_a, S.parse("C"), S.parse("D"), SetFamily(S))
    print(proof.format())
    hypotheses = [given_b.conclusion, given_a.conclusion]
    check_proof(proof, hypotheses)
    print(f"\nchecked: OK ({proof.size()} steps, depth {proof.depth()})")

    # ------------------------------------------------------------------
    # 2. expansion to Figure-1 primitives
    # ------------------------------------------------------------------
    primitive = proof.expand()
    check_proof(primitive, hypotheses, allow_derived=False)
    print(f"\nexpanded to Figure-1 only ({primitive.size()} steps):")
    print(primitive.format())

    # ------------------------------------------------------------------
    # 3. the completeness engine finds its own derivations (Thm 4.8)
    # ------------------------------------------------------------------
    cset = ConstraintSet.of(S, "A -> BC, CD", "C -> D")
    target = DifferentialConstraint.parse(S, "AB -> D")
    auto = derive(cset, target)
    print(f"\nengine-found derivation of {target!r} "
          f"({auto.size()} steps, rules used: {auto.rule_counts()}):")
    print(auto.format())

    # ------------------------------------------------------------------
    # 4. refusal comes with a certificate
    # ------------------------------------------------------------------
    bad = DifferentialConstraint.parse(S, "D -> A")
    try:
        derive(cset, bad)
    except NotImpliedError as err:
        print(f"\nderive(C, {bad!r}) correctly refuses:")
        print(f"  {err}")
        print("  (the mask is a lattice element of the target uncovered by "
              "L(C); Theorem 3.5 turns it into a counterexample function)")


if __name__ == "__main__":
    main()
