"""Relational dependency reasoning through differential constraints (Section 7).

A small hospital schema shows the Section 7 bridge at work:

1. classical functional dependencies, closures and candidate keys,
2. a *positive boolean dependency* that no FD can express
   ("patients in the same ward share the doctor OR the discharge day"),
3. the Simpson function of the probabilistic relation and Prop 7.3's
   satisfaction transfer,
4. dependency implication decided four independent ways (Cor 7.4 /
   Theorem 8.1).

Run:  python examples/relational_dependencies.py
"""

import random

from repro import ConstraintSet, GroundSet
from repro.relational import (
    BooleanDependency,
    Distribution,
    FunctionalDependency,
    Relation,
    candidate_keys,
    closure,
    implies_boolean,
    semantic_implies_over_two_tuple_relations,
    simpson_function,
    simpson_satisfies,
)


def main() -> None:
    # schema: Patient, Ward, Doctor, dischargeDay
    S = GroundSet(["patient", "ward", "doctor", "day"])
    r = Relation(
        S,
        [
            ("ann", "w1", "dr_k", "mon"),
            ("bob", "w1", "dr_m", "mon"),
            ("cee", "w1", "dr_j", "mon"),
            ("dan", "w2", "dr_m", "fri"),
            ("eve", "w2", "dr_m", "sat"),
        ],
    )
    print(f"Relation with {len(r)} rows over {list(S.elements)}\n")

    # ------------------------------------------------------------------
    # 1. functional dependencies
    # ------------------------------------------------------------------
    fd = FunctionalDependency.of(S, ["patient"], ["ward", "doctor", "day"])
    print(f"FD patient -> ward,doctor,day holds? {fd.satisfied_by(r)}")
    fds = [fd]
    keys = candidate_keys(S, fds)
    print(f"candidate keys: "
          f"{[sorted(S.subset(k)) for k in keys]}")
    print(f"closure(patient) = {sorted(S.subset(closure(S, S.mask(['patient']), fds)))}\n")

    # ------------------------------------------------------------------
    # 2. a boolean dependency beyond FDs
    # ------------------------------------------------------------------
    bd = BooleanDependency.of(S, ["ward"], ["doctor"], ["day"])
    print(f"{bd!r} (same ward -> same doctor OR same day)")
    print(f"  holds in r? {bd.satisfied_by(r)}")
    fd_doctor = FunctionalDependency.of(S, ["ward"], ["doctor"])
    fd_day = FunctionalDependency.of(S, ["ward"], ["day"])
    print(f"  while ward -> doctor alone: {fd_doctor.satisfied_by(r)}, "
          f"ward -> day alone: {fd_day.satisfied_by(r)}\n")

    # ------------------------------------------------------------------
    # 3. the Simpson function view (Definition 7.1, Prop 7.3)
    # ------------------------------------------------------------------
    dist = Distribution.uniform(r)
    simpson = simpson_function(dist)
    print("Simpson function values (uniformity of the marginals):")
    for attrs in ([], ["ward"], ["ward", "doctor"], ["patient"]):
        label = ",".join(attrs) or "(/)"
        print(f"  simpson({label:>12}) = {simpson.value(S.mask(attrs)):.4f}")
    diff_constraint = bd.to_differential()
    print(f"Prop 7.3: simpson satisfies {diff_constraint!r}? "
          f"{simpson_satisfies(dist, diff_constraint)} "
          f"(== boolean dependency satisfaction)\n")

    # ------------------------------------------------------------------
    # 4. implication, four independent ways
    # ------------------------------------------------------------------
    premises = [
        BooleanDependency.of(S, ["ward"], ["doctor"], ["day"]),
        BooleanDependency.of(S, ["doctor"], ["day"]),
    ]
    target = BooleanDependency.of(S, ["ward"], ["day"])
    print(f"premises: {premises[0]!r};  {premises[1]!r}")
    print(f"target:   {target!r}")
    print(f"  lattice containment (Thm 3.5): "
          f"{implies_boolean(premises, target, 'lattice')}")
    print(f"  DPLL refutation (Prop 5.4):    "
          f"{implies_boolean(premises, target, 'sat')}")
    print(f"  two-tuple relation scan:       "
          f"{semantic_implies_over_two_tuple_relations(premises, target)}")
    cset = ConstraintSet(S, [p.to_differential() for p in premises])
    from repro import check_proof, derive

    proof = derive(cset, target.to_differential())
    check_proof(proof, cset.constraints)
    print(f"  inference system (Thm 4.8):    derivation found "
          f"({proof.size()} steps)")
    print("\nDerivation:")
    print(proof.format())


if __name__ == "__main__":
    main()
