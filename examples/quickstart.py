"""Quickstart: differential constraints in ten minutes.

Walks the core objects of Sayrafi & Van Gucht (PODS 2005) end to end:
set functions and their densities (Moebius inversion), differentials,
witness sets and lattice decompositions, constraint satisfaction, the
implication problem, and machine-checked derivations.

Run:  python examples/quickstart.py
"""

from repro import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core import (
    SetFamily,
    SetFunction,
    differential_value,
    lattice,
    refute,
    witnesses,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A ground set and a set function f : 2^S -> R
    # ------------------------------------------------------------------
    S = GroundSet("ABCD")
    print(f"Ground set S = {''.join(S.elements)}  (2^{S.size} subsets)\n")

    # Example 3.2 style: f is the support function of a tiny basket list
    f = SetFunction.from_density(S, {"AB": 2, "ABC": 1, "D": 1}, exact=True)
    print("f given by density d_f(AB)=2, d_f(ABC)=1, d_f(D)=1:")
    for subset in ("", "A", "AB", "ABC", "D", "AD"):
        print(f"  f({subset or '(/)':>4}) = {f(subset)}")
    print()

    # ------------------------------------------------------------------
    # 2. Differentials (Definition 2.1) and lattice decompositions
    # ------------------------------------------------------------------
    family = SetFamily.of(S, "B", "CD")
    a = S.parse("A")
    print("The {B, CD}-differential of f at A (Definition 2.1):")
    print(f"  D_f(A) = f(A) - f(AB) - f(ACD) + f(ABCD) = "
          f"{differential_value(f, family, a)}")

    ws = [S.format_mask(w) for w in witnesses(family)]
    lat = [S.format_mask(u) for u in lattice(a, family, S)]
    print(f"  witness sets W({{B, CD}}) = {ws}")
    print(f"  lattice decomposition L(A, {{B, CD}}) = {lat}")
    print("  (Prop 2.9: the differential is the density sum over L)\n")

    # ------------------------------------------------------------------
    # 3. Constraints and satisfaction (Definition 3.1)
    # ------------------------------------------------------------------
    c = DifferentialConstraint.parse(S, "A -> B, CD")
    print(f"Constraint {c!r}: every 'basket' with A also has B or CD")
    print(f"  satisfied by f?  {c.satisfied_by(f)}")
    c2 = DifferentialConstraint.parse(S, "A -> CD")
    print(f"Constraint {c2!r}:")
    print(f"  satisfied by f?  {c2.satisfied_by(f)}  "
          "(the AB basket has no CD)\n")

    # ------------------------------------------------------------------
    # 4. The implication problem (Theorem 3.5)
    # ------------------------------------------------------------------
    C = ConstraintSet.of(S, "A -> B", "B -> CD")
    target = DifferentialConstraint.parse(S, "A -> CD")
    print(f"C = {C!r}")
    print(f"  C |= {target!r}?  {C.implies(target)}")
    non_target = DifferentialConstraint.parse(S, "C -> A")
    print(f"  C |= {non_target!r}?  {C.implies(non_target)}")
    counterexample = refute(C, non_target)
    print(f"  counterexample function (Theorem 3.5): {counterexample!r}\n")

    # ------------------------------------------------------------------
    # 5. Machine-checked derivations (Theorem 4.8)
    # ------------------------------------------------------------------
    from repro import check_proof, derive

    proof = derive(C, target)
    print("A derivation in the Figure-1/2 system:")
    print(proof.format())
    check_proof(proof, C.constraints)
    primitive = proof.expand()
    check_proof(primitive, C.constraints, allow_derived=False)
    print(f"\n  checked; expands to {primitive.size()} Figure-1 steps.")


if __name__ == "__main__":
    main()
