"""Beyond the paper's core: the conclusion's research directions, running.

Three extensions the conclusion sketches, implemented on top of the
library:

1. **Armstrong witnesses** -- a single basket database whose satisfied
   constraints are exactly the consequences of a constraint set;
2. **Dempster-Shafer evidence** -- differential constraints as structural
   statements about focal elements, and what evidence fusion does (and
   does not) preserve;
3. **Frequency bounds** (the Calders-Paredaens bridge) -- joint
   satisfiability of support ranges, differential constraints, and
   generalized density-range constraints, decided by LP/MILP over the
   density coordinates.

Run:  python examples/uncertainty_and_bounds.py
"""

from repro import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core import armstrong_database
from repro.fis import (
    DisjunctiveConstraint,
    FrequencyConstraint,
    GeneralizedDensityConstraint,
    measure_sat,
    support_sat,
)
from repro.measures import MassFunction, vacuous_mass


def main() -> None:
    S = GroundSet("ABCD")

    # ------------------------------------------------------------------
    # 1. an Armstrong database
    # ------------------------------------------------------------------
    C = ConstraintSet.of(S, "A -> B", "B -> C, D")
    db = armstrong_database(C)
    print(f"Armstrong database for {C!r}: {len(db)} baskets")
    for text in ("A -> C, D", "A -> B, D", "C -> A", "D -> B"):
        c = DifferentialConstraint.parse(S, text)
        disj = DisjunctiveConstraint.from_differential(c)
        print(f"  satisfies {text:12s}? {disj.satisfied_by(db):d}   "
              f"C implies it? {C.implies(c):d}   (always equal)")
    print()

    # ------------------------------------------------------------------
    # 2. Dempster-Shafer evidence
    # ------------------------------------------------------------------
    print("Dempster-Shafer: constraints on focal elements")
    m = MassFunction(S, {"AB": 0.6, "ABD": 0.3, "CD": 0.1})
    q = m.commonality_function()
    print(f"  mass on AB (0.6), ABD (0.3), CD (0.1)")
    print(f"  commonality Q is a frequency function with Q((/)) = "
          f"{q.value(0):.1f} and density = mass")
    c = DifferentialConstraint.parse(S, "A -> B")
    print(f"  'every focal element with A also has B' == {c!r}: "
          f"{m.satisfies(c)}")
    c2 = DifferentialConstraint.parse(S, "C -> A")
    print(f"  {c2!r}: {m.satisfies(c2)}  (CD is focal, lacks A)")

    # fusion can break structural constraints
    a = MassFunction(S, {"AB": 1.0})
    b = MassFunction(S, {"AC": 1.0})
    fused = a.combine(b)
    cc = DifferentialConstraint.parse(S, "A -> B, C")
    print(f"  evidence AB and evidence AC both satisfy {cc!r};")
    print(f"  their Dempster combination is focal on "
          f"{[S.format_mask(x) for x in fused.focal_elements()]} "
          f"and satisfies it: {fused.satisfies(cc)}")
    print(f"  (total ignorance, by contrast, satisfies every "
          f"nonempty-family constraint: "
          f"{vacuous_mass(S).satisfies(cc)})\n")

    # ------------------------------------------------------------------
    # 3. frequency bounds + differential constraints, jointly
    # ------------------------------------------------------------------
    print("Frequency-constraint satisfiability (LP over densities):")
    bounds = [
        FrequencyConstraint.of(S, "", 100, 100),   # 100 baskets
        FrequencyConstraint.of(S, "A", 60, 70),
        FrequencyConstraint.of(S, "AB", 55, None),
    ]
    rule = DifferentialConstraint.parse(S, "A -> B")  # A-baskets carry B
    db2 = support_sat(S, bounds, [rule])
    print(f"  100 baskets, 60<=s(A)<=70, s(AB)>=55, and A -> {{B}}:")
    print(f"  realizable? {db2 is not None} "
          f"(witness: s(A)={db2.support(S.parse('A'))}, "
          f"s(AB)={db2.support(S.parse('AB'))})")

    impossible = bounds + [
        FrequencyConstraint.of(S, "AB", 0, 40),
    ]
    print(f"  adding s(AB)<=40 under A -> {{B}}: "
          f"satisfiable? {measure_sat(S, impossible, [rule]) is not None}")

    # the conclusion's generalized constraints: density ranges
    g = GeneralizedDensityConstraint.of(S, "A", ["B"], lower=5, upper=10)
    witness = measure_sat(S, [FrequencyConstraint.of(S, '', 30, 30)], [g])
    print(f"  generalized: 5 <= d(U) <= 10 on L(A, {{B}}), 30 baskets: "
          f"satisfiable? {witness is not None}")


if __name__ == "__main__":
    main()
