"""Running it as a service: durability, crash recovery, and the wire.

A constraint theory is served over HTTP/JSON with a write-ahead-logged
instance behind it: streamed transactions are durable before they are
acknowledged, snapshots compact the log, an abrupt stop loses nothing
committed, and a second service boots from the data directory with the
exact same answers -- the recovery invariant the Hypothesis suite
property-tests (replaying the log through the incremental engine
reproduces the live tables bit for bit).

Run:  PYTHONPATH=src python examples/durable_service.py
"""

import shutil
import tempfile

from repro.core import ConstraintSet, GroundSet
from repro.engine import (
    DurableStore,
    EngineConfig,
    ReproService,
    StreamSession,
)

ITEMS = GroundSet("ABCDE")

WATCH = ConstraintSet.of(ITEMS, "A -> B", "D -> C, E", "B -> C")

TRANSACTIONS = [
    ["+ AB 3"],
    ["+ ABC", "+ CDE 2"],
    ["+ CD", "+ D 2"],
    ["+ A"],          # a bare-A row: newly violates A -> B
    ["- A"],          # and deleting it restores the status
]


def boot(data_dir: str):
    config = EngineConfig(durable=data_dir, snapshot_every=3)
    session = StreamSession(
        ITEMS, constraints=WATCH.constraints, config=config,
    )
    service = ReproService(WATCH, session=session, config=config)
    return service.start_in_thread()


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-durable-")
    print(f"data dir: {data_dir}")

    # --- first life: stream transactions over the wire --------------
    with boot(data_dir) as running:
        client = running.client()
        print(f"service listening on {running.host}:{running.port} "
              f"(durable={client.health()['durable']})")
        assert client.implies("A -> C") is True
        print("implies A -> C: IMPLIED  (microbatched + memoized)")
        for ops in TRANSACTIONS:
            report = client.delta(ops)
            flips = report["newly_violated"] or report["restored"]
            note = f"  flips: {flips}" if flips else ""
            print(f"tx {report['tx']}: {ops}{note}")
        pre = {
            "transactions": client.health()["transactions"],
            "support(AB)": client.probe("AB"),
            "support(CD)": client.probe("CD"),
            "check(A -> B)": client.check("A -> B"),
        }
        print(f"acknowledged state before stopping: {pre}")
    # the context-manager exit drains gracefully: snapshot + compact

    recovered = DurableStore(data_dir).recover()
    print(f"on disk after drain: snapshot tx {recovered.snapshot['tx']}, "
          f"{len(recovered.tail)} WAL tail record(s)")

    # --- second life: a fresh process-equivalent boot ----------------
    with boot(data_dir) as running:
        client = running.client()
        post = {
            "transactions": client.health()["transactions"],
            "support(AB)": client.probe("AB"),
            "support(CD)": client.probe("CD"),
            "check(A -> B)": client.check("A -> B"),
        }
        print(f"recovered state after restart:      {post}")
        assert post == pre, "recovery must reproduce the acknowledged state"
        print("recovered answers match the acknowledged state  [exact]")

        # the recovered instance is fully live: keep streaming
        report = client.delta(["+ E 4"])
        assert report["tx"] == pre["transactions"] + 1
        print(f"tx {report['tx']}: streamed on after recovery; "
              f"support(E) = {client.probe('E')}")

    shutil.rmtree(data_dir)
    print("done (data dir removed)")


if __name__ == "__main__":
    main()
