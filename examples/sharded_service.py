"""Scaling out: a sharded instance behind the microbatching server.

A market-basket instance is partitioned across shards (density and
support are additive over disjoint row partitions, so per-shard tables
merge exactly by sum), streamed row deltas dirty only their owning
shard, evaluation fans out over the shards, and a constraint server
coalesces concurrent implication/check queries on top.

Run:  PYTHONPATH=src python examples/sharded_service.py
"""

from repro.core import ConstraintSet, GroundSet
from repro.engine import (
    EngineConfig,
    ShardedEvalContext,
    default_workers,
    serve_queries,
)
from repro.fis import BasketDatabase
from repro.fis.discovery import discover_cover

ITEMS = GroundSet("ABCDE")

BASKETS = [
    "AB", "AB", "AB", "ABC", "ABC",
    "CDE", "CDE", "CD", "D", "D", "DE",
]

WATCH = ConstraintSet.of(ITEMS, "A -> B", "D -> C, E", "B -> C")


def main() -> None:
    db = BasketDatabase.of(ITEMS, *BASKETS)
    workers = default_workers(shards=4)
    ctx = db.sharded_context(
        constraints=WATCH.constraints,
        config=EngineConfig(engine="sharded", shards=4),
    )
    print(f"instance: {len(db)} baskets over |S|={ITEMS.size}, "
          f"{ctx.shards} shards (host default workers: {workers})")
    print(f"shard sizes (distinct baskets per shard): {ctx.shard_sizes()}")

    # --- sharded tables merge exactly -------------------------------
    assert list(ctx.merged_support_table()) == list(ctx.support_table())
    print("merged per-shard support table == live support table  [exact]")

    # --- live monitoring: a delta dirties one shard -----------------
    before = ctx.shard_versions
    flips = ctx.apply_delta(ITEMS.parse("AD"), 1)  # a basket {A, D}
    dirty = [k for k, (a, b) in enumerate(zip(before, ctx.shard_versions))
             if a != b]
    print(f"inserted basket AD: dirtied shard {dirty[0]} only; "
          f"flips: {[(repr(c), v) for c, v in flips]}")

    # --- fan-out evaluation over the shards -------------------------
    fanout = ctx.evaluate(probes=["A", "D", "CD"])
    for text, mask in (("A", ITEMS.parse("A")), ("D", ITEMS.parse("D")),
                       ("CD", ITEMS.parse("CD"))):
        print(f"support({text}) = {fanout.support[mask]}  (sum over shards)")
    for c, violated in zip(ctx.constraints, fanout.violated):
        state = "VIOLATED" if violated else "satisfied"
        print(f"  {c!r}: {state}")

    # --- discovery reads the sharded state in place -----------------
    cover = discover_cover(ctx)
    print(f"discovered differential-theory cover: {len(cover)} constraints")

    # --- the microbatching constraint server ------------------------
    queries = (
        [("implies", ConstraintSet.of(ITEMS, "A -> C").constraints[0])] * 3
        + [("implies", ConstraintSet.of(ITEMS, "AD -> BC").constraints[0])]
        + [("check", c) for c in WATCH.constraints]
    )
    answers, stats = serve_queries(WATCH, queries, instance=ctx)
    for (kind, constraint), answer in zip(queries, answers):
        if kind == "implies":
            verdict = "IMPLIED" if answer else "NOT IMPLIED"
        else:
            verdict = "satisfied" if answer else "VIOLATED"
        print(f"  {kind} {constraint!r}: {verdict}")
    print(f"server: {stats.requests} requests in {stats.batches} batches, "
          f"{stats.coalesced} coalesced, {stats.cache_hits} cache hits, "
          f"{stats.computed} computed")


if __name__ == "__main__":
    main()
