"""Market-basket analysis with disjunctive constraints (Section 6).

The scenario the paper's introduction motivates: a retailer's basket
list, the frequent-itemset problem, and how differential/disjunctive
constraints buy *deduction instead of counting*:

1. mine frequent itemsets with Apriori (the monotonicity baseline),
2. mine the (FDFree, Bd-) concise representation,
3. derive supports of itemsets that were never counted,
4. use the inference system to prune redundant disjunctive rules.

Run:  python examples/market_basket_analysis.py
"""

import random

from repro import GroundSet
from repro.fis import (
    DisjunctiveConstraint,
    apriori,
    correlated_baskets,
    find_disjunctive_rule,
    is_derivably_disjunctive,
    mine_concise,
    prune_redundant_rules,
    verify_lossless,
)


def main() -> None:
    rng = random.Random(2005)

    # ------------------------------------------------------------------
    # a correlated store: customers buy from a few recipe templates
    # ------------------------------------------------------------------
    items = GroundSet(
        ["bread", "butter", "jam", "beer", "chips", "salsa", "milk", "eggs"]
    )
    db = correlated_baskets(
        items, n_baskets=250, n_templates=3, template_size=4,
        drop_probability=0.05, add_probability=0.03, rng=rng,
    )
    kappa = 15
    print(f"{len(db)} baskets over {items.size} items, threshold {kappa}\n")

    # ------------------------------------------------------------------
    # 1. Apriori baseline
    # ------------------------------------------------------------------
    result = apriori(db, kappa)
    print(f"Apriori: {len(result.frequent)} frequent itemsets, "
          f"{len(result.negative_border)} border sets, "
          f"{result.support_counts} support counts")
    top = sorted(result.frequent.items(), key=lambda kv: -kv[1])[:5]
    for mask, support in top:
        labels = sorted(items.subset(mask)) or ["(/)"]
        print(f"  support {support:3d}  {{{', '.join(labels)}}}")
    print()

    # ------------------------------------------------------------------
    # 2. the concise representation
    # ------------------------------------------------------------------
    rep = mine_concise(db, kappa, max_rhs=2)
    assert verify_lossless(db, rep)
    print(f"Concise representation: |FDFree| = {len(rep.elements)}, "
          f"|Bd-| = {len(rep.border)}  "
          f"(vs {len(result.frequent)} frequent sets; lossless)")
    rules = [
        entry.rule for entry in rep.border.values() if entry.rule is not None
    ]
    print(f"  {len(rules)} disjunctive rules discovered, e.g.:")
    for rule in rules[:4]:
        print(f"    {rule!r}")
    print()

    # ------------------------------------------------------------------
    # 3. derive a support that was never counted
    # ------------------------------------------------------------------
    big = items.mask(["bread", "butter", "jam", "milk"])
    status, support = rep.derive(big)
    print("Deriving the status of {bread, butter, jam, milk} "
          "from the representation alone:")
    print(f"  derived: {status} (support {support}); "
          f"actual: {db.support(big)}  -- no counting pass needed\n")

    # ------------------------------------------------------------------
    # 4. inference over disjunctive rules (Section 6, end)
    # ------------------------------------------------------------------
    S = GroundSet("ABCD")
    demo_rules = [
        DisjunctiveConstraint.of(S, "A", "B", "D"),
        DisjunctiveConstraint.of(S, "B", "C", "D"),
    ]
    acd = S.parse("ACD")
    print("Paper's closing example: rules A=>{B,D} and B=>{C,D}")
    print(f"  is ACD derivably disjunctive (via transitivity)? "
          f"{is_derivably_disjunctive(demo_rules, acd, S)}")
    redundant = DisjunctiveConstraint.of(S, "A", "C", "D")
    pruned = prune_redundant_rules(demo_rules + [redundant], S)
    print(f"  storing A=>{{C,D}} too is redundant: pruned back to "
          f"{len(pruned)} rules")

    # a rule the miner can rediscover on demand
    rule = find_disjunctive_rule(db, items.mask(["bread", "butter", "jam"]))
    if rule is not None:
        print(f"\nOn the store data, {{bread, butter, jam}} is disjunctive "
              f"via {rule!r}")


if __name__ == "__main__":
    main()
