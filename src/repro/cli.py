"""Command-line interface: ``python -m repro <command> ...``.

A thin, scriptable front door over the library for users who want to
reason about constraint files without writing Python:

``implies``
    Decide ``C |= target`` (any decider), optionally printing the
    Theorem 3.5 counterexample on failure.

``plan``
    Show the evaluation plan the engine planner resolves for a
    workload -- tier, backend, shards, workers -- and, with
    ``--explain``, the cost-model reasoning line by line.  Every
    subcommand shares the same ``--engine
    auto|scalar|batched|incremental|sharded`` selection; the
    pre-planner ``--backend``/``--shards``/``--workers`` flags remain
    as deprecated pinning aliases.

``derive``
    Print a checked derivation of the target (Figure 1/2 or
    Figure-1-only with ``--primitive``).

``closure``
    Print the atomic closure ``L(C)`` and a minimal cover of ``C``.

``mine``
    Mine a basket file: frequent itemsets (Apriori) or the
    ``(FDFree, Bd-)`` concise representation.

``discover``
    Discover the basket file's differential theory: the minimal
    disjunctive rules and a redundancy-free constraint cover.

``stream``
    Replay a transaction log of row inserts/deletes/updates against a
    constraint file, reporting per transaction which constraints were
    newly violated or restored (the incremental engine: per-row delta
    maintenance instead of full recomputation).  ``--shards K`` routes
    the instance through the horizontally sharded context.

``serve``
    Answer a batch of ``implies``/``check`` queries through the
    microbatching constraint server: concurrent duplicates coalesce
    into one computation and answers are memoized in a fingerprint
    -keyed LRU.  ``--baskets`` loads a (shardable) live instance for
    ``check`` queries.  With ``--port`` the command becomes a *long
    -running network service* speaking HTTP/JSON (check / implies /
    delta / probe endpoints; see :mod:`repro.engine.net`): it prints
    ``# listening on HOST:PORT`` and serves until SIGTERM, draining
    gracefully.  ``--data-dir`` makes the served instance durable --
    every committed transaction is write-ahead logged and
    ``--snapshot-every N`` checkpoints the state, so killing the
    process and restarting it on the same directory recovers the
    instance exactly.

Both ``stream`` and ``serve`` accept ``--data-dir`` (durability) and
``--fsync always|never`` (WAL sync policy).

Constraint files are plain text: first line the ground set (e.g.
``ABCD``), then one constraint per line in ``A -> B, CD`` syntax; ``#``
comments and blank lines are ignored.  Basket files: first line the item
ground set, then one basket per line in the same subset shorthand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO, Tuple

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    decide,
    derive,
    find_uncovered,
)
from repro.engine.plan import (
    EngineConfig,
    Plan,
    Planner,
    TIERS,
    Workload,
    build_context,
    default_planner,
)
from repro.errors import NotImpliedError, ReproError

__all__ = [
    "main",
    "engine_config_from_args",
    "parse_constraint_file",
    "parse_basket_file",
]


def parse_constraint_file(lines: Sequence[str]) -> Tuple[GroundSet, ConstraintSet]:
    """Parse the constraint-file format described in the module docstring."""
    meaningful = [
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    ]
    if not meaningful:
        raise ValueError("empty constraint file: expected a ground-set line")
    ground = GroundSet(meaningful[0])
    constraints = [
        DifferentialConstraint.parse(ground, line) for line in meaningful[1:]
    ]
    return ground, ConstraintSet(ground, constraints)


def parse_basket_file(lines: Sequence[str]):
    """Parse the basket-file format (ground set, then one basket/line)."""
    from repro.fis import BasketDatabase

    meaningful = [
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    ]
    if not meaningful:
        raise ValueError("empty basket file: expected a ground-set line")
    ground = GroundSet(meaningful[0])
    baskets = [ground.parse(line) for line in meaningful[1:]]
    return ground, BasketDatabase(ground, baskets)


def _read(path: str) -> List[str]:
    if path == "-":
        return sys.stdin.read().splitlines()
    with open(path) as fh:
        return fh.read().splitlines()


def engine_config_from_args(args, err: Optional[TextIO] = None) -> EngineConfig:
    """One :class:`EngineConfig` from the shared ``engine`` argparse
    group -- the single place CLI engine flags become configuration.

    ``--engine`` requests a tier (``auto`` lets the planner choose);
    the pre-planner ``--backend``/``--shards``/``--workers`` aliases
    keep working as pinned knobs but print a deprecation notice on
    ``err``.  Durability flags (``--data-dir``/``--snapshot-every``/
    ``--fsync``) ride along when the subcommand has them.
    """
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None)
    workers = getattr(args, "workers", None)
    if shards is not None and shards < 1:
        raise ValueError(f"--shards must be >= 1, got {shards}")
    if workers is not None and workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    deprecated = [
        f"--{name}"
        for name, value in (
            ("backend", backend), ("shards", shards), ("workers", workers)
        )
        if value is not None
    ]
    if deprecated and err is not None:
        print(
            f"# deprecated: {', '.join(deprecated)} -- prefer --engine "
            "and the planner (see 'repro plan --explain')",
            file=err,
        )
    engine = getattr(args, "engine", "auto")
    if engine == "auto" and shards is not None and shards > 1:
        # the legacy alias pinned the tier implicitly: keep doing so
        engine = "sharded"
    if shards is not None and shards > 1 and workers is None:
        # historic CLI default: CPU count capped by the shard count
        from repro.engine.parallel import default_workers

        workers = default_workers(shards)
    return EngineConfig(
        engine=engine,
        backend=backend,
        shards=shards,
        workers=workers,
        durable=getattr(args, "data_dir", None),
        snapshot_every=getattr(args, "snapshot_every", None),
        fsync=getattr(args, "fsync", "always"),
    )


def _engine_stamp_line(plan: Plan) -> str:
    """The one-line configuration stamp printed by stream/serve output."""
    return f"# engine: {plan.stamp()}"


def _cmd_implies(args, out: TextIO) -> int:
    from repro.core import principal_ideal_function

    ground, cset = parse_constraint_file(_read(args.file))
    target = DifferentialConstraint.parse(ground, args.target)
    config = engine_config_from_args(args, err=sys.stderr)
    plan = default_planner().plan(
        Workload(n=ground.size, constraints=len(cset), queries=1), config
    )
    context = build_context(plan, ground)
    answer = decide(cset, target, method=args.method, context=context)
    print(f"{'IMPLIED' if answer else 'NOT IMPLIED'}: {target!r}", file=out)
    if not answer and args.counterexample:
        u = find_uncovered(cset, target)
        print(
            f"counterexample f^U with U = {ground.format_mask(u)} "
            "(density 1 at U, satisfies C, violates the target)",
            file=out,
        )
        if ground.is_dense_capable():
            # re-check the Theorem 3.5 witness on the selected backend
            backend = context.backend
            exact = backend.exact if backend is not None else True
            f_u = principal_ideal_function(ground, u, exact=exact)
            ok = cset.satisfied_by(f_u) and not target.satisfied_by(f_u)
            kind = "exact" if exact else "float"
            print(f"witness checked on the {kind} backend: "
                  f"{'ok' if ok else 'FAILED'}", file=out)
    return 0 if answer else 1


def _cmd_plan(args, out: TextIO) -> int:
    """``repro plan [--explain]``: show the planner's resolution."""
    ground, cset = parse_constraint_file(_read(args.file))
    config = engine_config_from_args(args, err=sys.stderr)
    density_size = 0
    streaming = False
    if args.baskets:
        basket_ground, db = parse_basket_file(_read(args.baskets))
        ground.check_same(basket_ground)
        density_size = len(db.multiset_counts())
        streaming = True
    workload = Workload(
        n=ground.size,
        constraints=len(cset),
        density_size=density_size,
        streaming=streaming,
        queries=0 if streaming else 1,
    )
    planner = default_planner()
    if args.calibrate or args.recalibrate:
        from repro.engine.calibrate import ensure_profile

        profile = ensure_profile(recalibrate=args.recalibrate)
        planner = Planner.calibrated(profile)
        print(
            f"# calibration: host profile at {profile.path} "
            f"(measured {profile.created}, {profile.cpus} effective CPU(s))",
            file=out,
        )
    plan = planner.plan(workload, config)
    if args.explain:
        print(plan.explain(), file=out)
        method, why = planner.decide_method(
            ground.size, fd_fragment=cset.all_singleton_families()
        )
        print(f"  - implies method={method}: {why}", file=out)
    else:
        print(f"plan: {plan.stamp()}", file=out)
    return 0


def _cmd_derive(args, out: TextIO) -> int:
    ground, cset = parse_constraint_file(_read(args.file))
    target = DifferentialConstraint.parse(ground, args.target)
    try:
        proof = derive(cset, target, allow_derived=not args.primitive)
    except NotImpliedError as err:
        print(f"NOT IMPLIED: {err}", file=out)
        return 1
    print(proof.format(), file=out)
    print(f"# {proof.size()} steps, checked", file=out)
    return 0


def _cmd_closure(args, out: TextIO) -> int:
    ground, cset = parse_constraint_file(_read(args.file))
    atoms = list(cset.iter_lattice())
    print(f"atomic closure L(C): {len(atoms)} sets", file=out)
    if atoms:
        print("  " + " ".join(ground.format_mask(u) for u in atoms), file=out)
    else:
        print("  (empty)", file=out)
    cover = cset.minimal_cover()
    print(f"minimal cover ({len(cover)} of {len(cset)} constraints):", file=out)
    for c in cover:
        print(f"  {c!r}", file=out)
    return 0


def _cmd_mine(args, out: TextIO) -> int:
    from repro.fis import apriori, mine_concise

    ground, db = parse_basket_file(_read(args.file))
    if args.concise:
        rep = mine_concise(db, args.minsupport, max_rhs=args.rule_width)
        print(
            f"FDFree: {len(rep.elements)} sets, border: {len(rep.border)}",
            file=out,
        )
        for mask in sorted(rep.elements, key=lambda m: (m.bit_count(), m)):
            print(
                f"  {rep.elements[mask]:6d}  {ground.format_mask(mask)}",
                file=out,
            )
        for mask, entry in sorted(rep.border.items()):
            reason = "infrequent" if entry.infrequent else f"rule {entry.rule!r}"
            print(f"  border {ground.format_mask(mask)}: {reason}", file=out)
    else:
        result = apriori(db, args.minsupport)
        print(
            f"{len(result.frequent)} frequent itemsets at "
            f"minsupport {args.minsupport} "
            f"({result.support_counts} support counts)",
            file=out,
        )
        for mask in sorted(
            result.frequent, key=lambda m: (m.bit_count(), m)
        ):
            print(
                f"  {result.frequent[mask]:6d}  {ground.format_mask(mask)}",
                file=out,
            )
    return 0


def _cmd_discover(args, out: TextIO) -> int:
    from repro.fis.discovery import discover_cover, minimal_disjunctive_rules

    ground, db = parse_basket_file(_read(args.file))
    rules = minimal_disjunctive_rules(db, max_rhs=args.rule_width)
    print(f"{len(rules)} minimal disjunctive rules:", file=out)
    for rule in rules:
        print(f"  {rule!r}", file=out)
    if args.cover:
        cover = discover_cover(db)
        print(
            f"differential-theory cover ({len(cover)} constraints):",
            file=out,
        )
        for c in cover:
            print(f"  {c!r}", file=out)
    return 0


def _cmd_stream(args, out: TextIO) -> int:
    ground, cset = parse_constraint_file(_read(args.file))
    density = None
    if args.baskets:
        basket_ground, db = parse_basket_file(_read(args.baskets))
        ground.check_same(basket_ground)
        density = db.multiset_counts()
    config = engine_config_from_args(args, err=sys.stderr)
    session = cset.stream_session(density=density, config=config)
    print(_engine_stamp_line(session.plan), file=out)
    if args.data_dir and session.transactions:
        print(
            f"recovered {session.transactions} transaction(s) from "
            f"{args.data_dir}; "
            f"{len(session.violated_constraints())}/{len(cset)} "
            "constraints violated",
            file=out,
        )
    elif density:
        seeded = session.violated_constraints()
        print(
            f"seeded {sum(density.values())} rows; "
            f"{len(seeded)}/{len(cset)} constraints violated",
            file=out,
        )
    reports = session.replay(_read(args.log))
    for rep in reports:
        print(
            f"tx {rep.tx}: +{len(rep.newly_violated)} violated, "
            f"-{len(rep.restored)} restored; "
            f"{len(rep.violated)}/{len(cset)} violated",
            file=out,
        )
        for c in rep.newly_violated:
            print(f"  violated: {c!r}", file=out)
        for c in rep.restored:
            print(f"  restored: {c!r}", file=out)
    final = session.violated_constraints()
    if session.plan.shards > 1:
        # cross-check the incremental statuses through the per-shard
        # fan-out (runs on the worker pool when workers > 1)
        fanout = session.context.evaluate()
        consistent = fanout.violated == tuple(
            session.context.is_violated(c) for c in session.context.constraints
        )
        print(
            f"# fan-out check over {session.plan.shards} shards / "
            f"{session.plan.effective_workers} worker(s): "
            f"{'consistent' if consistent else 'INCONSISTENT'}",
            file=out,
        )
    print(
        f"final: {len(final)}/{len(cset)} constraints violated "
        f"after {len(reports)} transactions",
        file=out,
    )
    for c in final:
        print(f"  {c!r}", file=out)
    if args.data_dir:
        session.snapshot()
        print(
            f"# snapshotted tx {session.transactions} to {args.data_dir}",
            file=out,
        )
    session.close()
    return 1 if final else 0


def parse_query_file(ground, lines: Sequence[str]):
    """Parse serve queries: one per line, ``implies``/``check`` prefix
    optional (``implies`` assumed), then a constraint in arrow syntax."""
    queries = []
    for raw in lines:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        kind = "implies"
        head, _, rest = line.partition(" ")
        if head in ("implies", "check"):
            kind, line = head, rest.strip()
        queries.append(
            (kind, DifferentialConstraint.parse(ground, line))
        )
    return queries


def _cmd_serve(args, out: TextIO) -> int:
    from repro.engine.server import serve_queries

    ground, cset = parse_constraint_file(_read(args.file))
    if args.port is not None:
        return _serve_network(args, ground, cset, out)
    if args.queries is None:
        raise ValueError(
            "serve needs a query file in batch mode (or --port to run "
            "as a network service)"
        )
    queries = parse_query_file(ground, _read(args.queries))
    config = engine_config_from_args(args, err=sys.stderr)
    if config.shards is None and config.engine == "auto":
        # the batch server historically ran a single inline shard
        # unless the user asked for more; an explicit --engine sharded
        # lets the planner resolve the shard/worker counts
        config = config.replace(shards=1)
    instance = None
    if args.baskets:
        basket_ground, db = parse_basket_file(_read(args.baskets))
        ground.check_same(basket_ground)
        instance = db.sharded_context(config=config)
    if instance is None and any(kind == "check" for kind, _ in queries):
        raise ValueError(
            "'check' queries need a live instance: no live instance was "
            "loaded (pass --baskets)"
        )
    from repro.engine.plan import plan_of_context

    if instance is not None:
        print(_engine_stamp_line(plan_of_context(instance, config)), file=out)
    else:
        plan = default_planner().plan(
            Workload(
                n=ground.size, constraints=len(cset), queries=len(queries)
            ),
            config,
        )
        print(_engine_stamp_line(plan), file=out)
    answers, stats = serve_queries(
        cset,
        queries,
        instance=instance,
        max_batch=args.batch_size,
        max_delay=args.max_delay / 1000.0,
        config=config,
    )
    failures = 0
    for (kind, constraint), answer in zip(queries, answers):
        if kind == "implies":
            verdict = "IMPLIED" if answer else "NOT IMPLIED"
        else:
            verdict = "SATISFIED" if answer else "VIOLATED"
        if not answer:
            failures += 1
        print(f"{verdict}: {constraint!r}", file=out)
    print(
        f"# served {stats.requests} queries in {stats.batches} batches: "
        f"{stats.coalesced} coalesced, {stats.cache_hits} cache hits, "
        f"{stats.computed} computed",
        file=out,
    )
    return 1 if failures else 0


def _serve_network(args, ground, cset, out: TextIO) -> int:
    """``repro serve --port``: the long-running HTTP/JSON service."""
    from repro.engine.net import ReproService
    from repro.engine.stream import StreamSession

    config = engine_config_from_args(args, err=sys.stderr)
    ship_to = getattr(args, "ship_to", None)
    if ship_to:
        if not args.data_dir:
            raise ValueError(
                "--ship-to mirrors a durable store: pass --data-dir too"
            )
        from repro.engine.fleet import ShippingStore

        config = config.replace(
            durable=ShippingStore(args.data_dir, ship_to, fsync=config.fsync)
        )
        print(f"# shipping WAL to standby {ship_to}", file=out)
    density = None
    if args.baskets:
        basket_ground, db = parse_basket_file(_read(args.baskets))
        ground.check_same(basket_ground)
        density = db.multiset_counts()
    session = StreamSession(
        ground,
        constraints=cset.constraints,
        density=density,
        config=config,
    )
    print(_engine_stamp_line(session.plan), file=out)
    if args.data_dir and session.transactions:
        print(
            f"recovered {session.transactions} transaction(s) from "
            f"{args.data_dir}",
            file=out,
        )

    def _ready(host: str, port: int) -> None:
        # the e2e driver (and any supervisor) parses this line, so it
        # must be flushed before the event loop settles into serving
        print(f"# listening on {host}:{port}", file=out, flush=True)

    service = ReproService(
        cset,
        session=session,
        config=config,
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        max_batch=args.batch_size,
        max_delay=args.max_delay / 1000.0,
        on_ready=_ready,
    )
    service.serve_forever()
    print(
        f"# drained after {session.transactions} transaction(s)",
        file=out,
    )
    return 0


def _cmd_fleet(args, out: TextIO) -> int:
    """``repro fleet``: N supervised workers behind the tenant router."""
    from repro.engine.fleet import FleetService, worker_dirs
    from repro.engine.plan import default_fleet_workers
    from repro.engine.quota import QuotaPolicy

    # parse the constraint file up front so a bad file fails here, not
    # N times inside the workers
    parse_constraint_file(_read(args.file))
    count = args.workers if args.workers is not None else default_fleet_workers()
    if count < 1:
        raise ValueError(f"--workers must be >= 1, got {count}")
    data_root, standby_root = args.data_root, args.standby_root
    if standby_root and not data_root:
        raise ValueError(
            "--standby-root mirrors durable stores: pass --data-root too"
        )
    if args.takeover:
        if not (data_root and standby_root):
            raise ValueError(
                "--takeover swaps the roots: pass both --data-root and "
                "--standby-root"
            )
        # recovery boot: the standby copies become the live stores, and
        # shipping re-seeds the old (possibly damaged) primaries
        data_root, standby_root = standby_root, data_root
        print(f"# takeover: recovering from {data_root}", file=out)
    data_dirs = (
        worker_dirs(data_root, count) if data_root else [None] * count
    )
    ship_dirs = (
        worker_dirs(standby_root, count) if standby_root else [None] * count
    )

    def worker_command(index: int) -> list:
        cmd = [
            sys.executable, "-m", "repro", "serve", args.file,
            "--port", "0", "--host", args.host,
            "--queue-size", str(args.queue_size),
            "--engine", args.engine,
        ]
        if data_dirs[index]:
            cmd += ["--data-dir", data_dirs[index], "--fsync", args.fsync]
        if ship_dirs[index]:
            cmd += ["--ship-to", ship_dirs[index]]
        if args.snapshot_every is not None:
            cmd += ["--snapshot-every", str(args.snapshot_every)]
        return cmd

    quota = None
    if args.quota_rate is not None:
        quota = QuotaPolicy(rate=args.quota_rate, burst=args.quota_burst)
        print(f"# per-tenant quota: {quota!r}", file=out)

    def _ready(host: str, port: int) -> None:
        # supervisors/drivers parse this line (note: distinct from the
        # workers' own '# listening on' lines, echoed below)
        print(
            f"# fleet listening on {host}:{port} ({count} workers)",
            file=out, flush=True,
        )

    def _worker_line(index: int, line: str) -> None:
        print(f"# [worker {index}] {line}", file=out, flush=True)

    service = FleetService(
        [worker_command(i) for i in range(count)],
        host=args.host,
        port=args.port,
        quota=quota,
        on_ready=_ready,
        on_line=_worker_line,
    )
    service.serve_forever()
    print("# fleet drained", file=out)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Differential constraints (Sayrafi & Van Gucht, PODS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("implies", help="decide C |= target")
    p.add_argument("file", help="constraint file ('-' for stdin)")
    p.add_argument("target", help='target constraint, e.g. "A -> B, CD"')
    p.add_argument(
        "--method",
        default="auto",
        choices=["auto", "engine", "lattice", "bitset", "sat", "fd"],
    )
    p.add_argument(
        "--counterexample",
        action="store_true",
        help="print the Theorem 3.5 witness when not implied",
    )
    _add_engine_flags(p)
    p.set_defaults(run=_cmd_implies)

    p = sub.add_parser(
        "plan",
        help="show the evaluation plan the engine planner resolves for "
        "a workload (--explain prints the cost-model reasoning)",
    )
    p.add_argument("file", help="constraint file ('-' for stdin)")
    p.add_argument(
        "--baskets",
        default=None,
        help="basket file: plan for a live (streaming) instance of "
        "this size instead of one-shot queries",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the planner's reasoning, one line per decision",
    )
    p.add_argument(
        "--calibrate",
        action="store_true",
        help="plan with measured host thresholds: load the per-host "
        "profile (micro-benchmarking this machine on first use; "
        "persisted under ~/.cache/repro/ or $REPRO_CALIBRATION)",
    )
    p.add_argument(
        "--recalibrate",
        action="store_true",
        help="force a fresh host measurement even if a valid profile "
        "exists (implies --calibrate)",
    )
    _add_engine_flags(p)
    p.set_defaults(run=_cmd_plan)

    p = sub.add_parser("derive", help="print a checked derivation")
    p.add_argument("file")
    p.add_argument("target")
    p.add_argument(
        "--primitive",
        action="store_true",
        help="expand Figure-2 macro rules into Figure-1 steps",
    )
    p.set_defaults(run=_cmd_derive)

    p = sub.add_parser("closure", help="atomic closure and minimal cover")
    p.add_argument("file")
    p.set_defaults(run=_cmd_closure)

    p = sub.add_parser("mine", help="mine a basket file")
    p.add_argument("file")
    p.add_argument("--minsupport", type=int, default=1)
    p.add_argument(
        "--concise",
        action="store_true",
        help="mine the (FDFree, Bd-) representation instead of Apriori",
    )
    p.add_argument("--rule-width", type=int, default=2)
    p.set_defaults(run=_cmd_mine)

    p = sub.add_parser(
        "discover", help="discover minimal rules / the constraint theory"
    )
    p.add_argument("file")
    p.add_argument("--rule-width", type=int, default=2)
    p.add_argument(
        "--cover",
        action="store_true",
        help="also print a redundancy-free cover of the full theory",
    )
    p.set_defaults(run=_cmd_discover)

    p = sub.add_parser(
        "stream", help="replay a transaction log against constraints"
    )
    p.add_argument("file", help="constraint file ('-' for stdin)")
    p.add_argument(
        "log",
        help="transaction log: '+|-|= SUBSET [AMOUNT]' lines, "
        "'commit' ends a transaction",
    )
    p.add_argument(
        "--baskets",
        default=None,
        help="seed the instance from a basket file before replaying",
    )
    _add_engine_flags(p)
    _add_durability_flags(p)
    p.set_defaults(run=_cmd_stream)

    p = sub.add_parser(
        "serve",
        help="answer implication/check queries via the microbatching "
        "server, or run the HTTP/JSON service with --port",
    )
    p.add_argument("file", help="constraint file ('-' for stdin)")
    p.add_argument(
        "queries",
        nargs="?",
        default=None,
        help="query file: one '[implies|check] X -> Y, Z' per line "
        "(omit when running with --port)",
    )
    p.add_argument(
        "--baskets",
        default=None,
        help="basket file loaded as the live instance for 'check' queries",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="microbatch bound: requests coalesced per dispatch (default 64)",
    )
    p.add_argument(
        "--max-delay",
        type=float,
        default=2.0,
        help="microbatch window in milliseconds (default 2)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="run as a long-lived HTTP/JSON service on this port "
        "(0 = OS-assigned; prints '# listening on HOST:PORT')",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port mode (default 127.0.0.1)",
    )
    p.add_argument(
        "--queue-size",
        type=int,
        default=128,
        help="backpressure bound: concurrent requests admitted before "
        "the service answers 503 (default 128)",
    )
    _add_engine_flags(p)
    _add_durability_flags(p)
    p.add_argument(
        "--ship-to",
        default=None,
        help="ship the WAL synchronously to this warm-standby directory "
        "(requires --data-dir); 'repro fleet --takeover' boots from it",
    )
    p.set_defaults(run=_cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run N supervised 'repro serve' workers behind a "
        "consistent-hash tenant router (restart-on-crash, per-tenant "
        "quotas, WAL shipping to a standby root)",
    )
    p.add_argument("file", help="constraint file served by every worker")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count (default: effective CPUs, capped at "
        "the planner's FLEET_MAX_WORKERS)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="router port (0 = OS-assigned; prints "
        "'# fleet listening on HOST:PORT')",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for the router and workers (default 127.0.0.1)",
    )
    p.add_argument(
        "--data-root",
        default=None,
        help="root directory for per-worker durable stores "
        "(worker-NN/ subdirectories; omit for in-memory workers)",
    )
    p.add_argument(
        "--standby-root",
        default=None,
        help="warm-standby root each worker ships its WAL to "
        "(requires --data-root)",
    )
    p.add_argument(
        "--takeover",
        action="store_true",
        help="recovery boot: swap the roots -- workers recover from "
        "--standby-root and ship back toward --data-root",
    )
    p.add_argument(
        "--engine",
        default="auto",
        choices=("auto",) + TIERS,
        help="evaluation tier passed to every worker (default auto)",
    )
    p.add_argument(
        "--queue-size",
        type=int,
        default=128,
        help="per-worker backpressure bound (worker answers 503 past it)",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="per-worker auto-snapshot cadence (transactions)",
    )
    p.add_argument(
        "--fsync",
        default="always",
        choices=["always", "never"],
        help="per-worker WAL sync policy (default always)",
    )
    p.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-tenant admission rate in requests/second (router "
        "answers 429 past it; default: unmetered)",
    )
    p.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="per-tenant burst capacity (default: one second of rate)",
    )
    p.set_defaults(run=_cmd_fleet)
    return parser


def _add_durability_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--data-dir",
        default=None,
        help="durable data directory: transactions are write-ahead "
        "logged and the instance recovers from it on restart",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="auto-snapshot (and compact the WAL) every N transactions",
    )
    p.add_argument(
        "--fsync",
        default="always",
        choices=["always", "never"],
        help="WAL sync policy: 'always' fsyncs each commit (default), "
        "'never' leaves flushing to the OS",
    )


def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    """The shared engine-selection group (one definition, every
    subcommand): ``--engine`` plus the deprecated pinning aliases."""
    grp = p.add_argument_group(
        "engine",
        "evaluation-engine selection: request a tier with --engine and "
        "let the planner resolve backend/shards/workers ('repro plan "
        "--explain' shows the cost model)",
    )
    grp.add_argument(
        "--engine",
        default="auto",
        choices=("auto",) + TIERS,
        help="evaluation tier (default: auto -- the planner chooses "
        "from the workload shape and host CPUs)",
    )
    grp.add_argument(
        "--backend",
        default=None,
        choices=["exact", "exact-vec", "float"],
        help="[deprecated alias] pin the numeric backend",
    )
    grp.add_argument(
        "--shards",
        type=int,
        default=None,
        help="[deprecated alias] pin the horizontal shard count",
    )
    grp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="[deprecated alias] pin the worker-process count",
    )


def main(argv: Optional[Sequence[str]] = None, out: TextIO = sys.stdout) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args, out)
    except (ReproError, ValueError, OSError) as err:
        print(f"error: {err}", file=out)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
