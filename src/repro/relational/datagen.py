"""Random relations and distributions (evaluation substrate for Section 7).

Seeded generators for the relational experiments: uniform random
relations, relations repaired to satisfy a set of functional
dependencies (chase-style value merging), and random probabilistic
relations.  Repair is by fixpoint: tuples agreeing on an FD's left side
get their right-side values overwritten from a representative until no
violation remains, then the result is verified.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.relational.fd import FunctionalDependency
from repro.relational.probability import Distribution
from repro.relational.relation import Relation

__all__ = [
    "random_relation",
    "random_probabilistic_relation",
    "relation_satisfying_fds",
]


def random_relation(
    ground: GroundSet,
    n_rows: int,
    domain_size: int,
    rng: random.Random,
) -> Relation:
    """``n_rows`` random tuples over ``{0, ..., domain_size - 1}``.

    Duplicates collapse, so the result may have fewer rows.
    """
    rows = [
        tuple(rng.randrange(domain_size) for _ in range(ground.size))
        for _ in range(n_rows)
    ]
    return Relation(ground, rows)


def random_probabilistic_relation(
    ground: GroundSet,
    n_rows: int,
    domain_size: int,
    rng: random.Random,
    uniform: bool = False,
) -> Distribution:
    """A random nonempty relation with a (random or uniform) distribution."""
    relation = random_relation(ground, max(1, n_rows), domain_size, rng)
    if uniform:
        return Distribution.uniform(relation)
    return Distribution.random(relation, rng)


def relation_satisfying_fds(
    ground: GroundSet,
    fds: Sequence[FunctionalDependency],
    n_rows: int,
    domain_size: int,
    rng: random.Random,
    max_rounds: int = 100,
) -> Relation:
    """A random relation repaired until it satisfies every FD.

    Each round scans each FD, groups rows by their left-side projection,
    and copies the right-side values of the group's first row onto the
    others.  Merging only equates values, so the process reaches a
    fixpoint; the result is verified before being returned.
    """
    rows: List[Tuple] = [
        tuple(rng.randrange(domain_size) for _ in range(ground.size))
        for _ in range(n_rows)
    ]
    for _ in range(max_rounds):
        changed = False
        for fd in fds:
            groups: Dict[Tuple, Tuple] = {}
            for i, row in enumerate(rows):
                key = tuple(row[bit] for bit in sb.iter_bits(fd.lhs))
                if key not in groups:
                    groups[key] = row
                    continue
                rep = groups[key]
                patched = list(row)
                for bit in sb.iter_bits(fd.rhs):
                    patched[bit] = rep[bit]
                patched_t = tuple(patched)
                if patched_t != row:
                    rows[i] = patched_t
                    changed = True
        if not changed:
            break
    relation = Relation(ground, rows)
    for fd in fds:
        if not fd.satisfied_by(relation):
            raise RuntimeError(f"FD repair failed to converge for {fd!r}")
    return relation
