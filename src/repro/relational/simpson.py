"""Simpson functions of probabilistic relations (Definition 7.1, Prop 7.2).

For a nonempty relation ``r`` with strictly positive distribution ``p``::

    simpson_{r,p}(X) = sum over x in pi_X(r) of p_X(x)^2

-- Simpson's 1949 diversity index applied to the ``X``-marginal; it
measures how *uniform* the ``X``-components of ``r`` are under ``p``.
Proposition 7.2 gives its density a closed pairwise form::

    d(X) = sum over ordered tuple pairs (t, t') with t[X] = t'[X] and
           t(y) != t'(y) for every y outside X   of   p(t) p(t')

(the pair ``(t, t)`` agrees exactly on ``S`` and contributes ``p(t)^2``
to ``d(S)`` -- which is why ``simpson(S)`` contains no function with
identically-zero density, an edge the Theorem 8.1 evaluator documents).
Both the marginal form and the pairwise density are implemented as
independent code paths; their agreement (via Moebius inversion) is a
property test.
"""

from __future__ import annotations

from typing import Union

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.ground import GroundSet
from repro.core.setfunction import DEFAULT_TOLERANCE, SetFunction
from repro.relational.probability import Distribution
from repro.relational.relation import Relation

__all__ = [
    "simpson_value",
    "simpson_function",
    "simpson_density_pairsum",
    "simpson_density_function_pairsum",
    "simpson_satisfies",
]


def simpson_value(dist: Distribution, x_mask: int) -> float:
    """``simpson_{r,p}(X)`` from the marginal ``p_X`` (Definition 7.1)."""
    return sum(mass * mass for mass in dist.marginal(x_mask).values())


def simpson_function(dist: Distribution) -> SetFunction:
    """The whole Simpson function as a dense element of ``F(S)``."""
    ground = dist.relation.ground
    values = [simpson_value(dist, mask) for mask in ground.all_masks()]
    return SetFunction(ground, values)


def simpson_density_pairsum(dist: Distribution, x_mask: int) -> float:
    """``d_{simpson}(X)`` by the Proposition 7.2 pairwise formula.

    Sums ``p(t) p(t')`` over *ordered* pairs that agree on ``X`` and
    disagree on every attribute outside ``X`` -- i.e. pairs whose
    agreement set is exactly ``X``.
    """
    relation = dist.relation
    ground = relation.ground
    total = 0.0
    rows = list(dist.items())
    for t, pt in rows:
        for t_prime, pt_prime in rows:
            if relation.agreement_set(t, t_prime) == x_mask:
                total += pt * pt_prime
    return total


def simpson_density_function_pairsum(dist: Distribution) -> SetFunction:
    """The full density table via the pairwise formula (one pass).

    Buckets every ordered pair by its exact agreement set; equals the
    Moebius density of :func:`simpson_function` (Prop 7.2), nonnegative
    everywhere -- hence every Simpson function is a frequency function.
    """
    relation = dist.relation
    ground = relation.ground
    table = [0.0] * (1 << ground.size)
    rows = list(dist.items())
    for t, pt in rows:
        for t_prime, pt_prime in rows:
            table[relation.agreement_set(t, t_prime)] += pt * pt_prime
    return SetFunction(ground, table)


def simpson_satisfies(
    dist: Distribution,
    constraint: DifferentialConstraint,
    tol: float = DEFAULT_TOLERANCE,
) -> bool:
    """Whether ``simpson_{r,p}`` satisfies the differential constraint.

    Decided on the pairwise density (no Moebius transform): the density
    must vanish on the lattice decomposition, i.e. no ordered pair of
    tuples may have its exact agreement set inside ``L(X, Y)``.
    """
    relation = dist.relation
    rows = list(dist.items())
    for i, (t, _) in enumerate(rows):
        for t_prime, _ in rows[i:]:
            agreement = relation.agreement_set(t, t_prime)
            if constraint.lattice_contains(agreement):
                return False
    return True
