"""Positive boolean dependencies (Section 7, formula (6), Prop 7.3, Cor 7.4).

``X =>bool Y`` holds in a relation ``r`` when every pair of tuples that
agrees on ``X`` agrees on some member of ``Y``::

    for all t, t' in r :   t[X] = t'[X]  =>  OR over Y in Y: t[Y] = t'[Y]

The quantifier ranges over *all* ordered pairs including ``t = t'`` --
the reading forced by Proposition 7.3 (a reflexive pair agrees on every
attribute, so it only matters when ``Y`` is empty, exactly where the
Simpson density at ``S`` is the obstruction; see
:mod:`repro.relational.simpson`).

Boolean dependencies generalize functional dependencies (take
``Y = {Y}``); Sagiv-Delobel-Parker-Fagin proved their implication problem
propositional, and Corollary 7.4 chains that equivalence through
differential constraints.  :func:`semantic_implies_over_two_tuple_relations`
decides implication purely by satisfaction scans over the two-tuple
relations ``r_U`` -- the independent code path used by the Theorem 8.1
experiment.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import decide
from repro.relational.relation import Relation, two_tuple_relation

__all__ = [
    "BooleanDependency",
    "implies_boolean",
    "semantic_implies_over_two_tuple_relations",
]


class BooleanDependency:
    """A positive boolean dependency ``X =>bool Y``."""

    __slots__ = ("_constraint",)

    def __init__(self, ground: GroundSet, lhs_mask: int, family: SetFamily):
        self._constraint = DifferentialConstraint(ground, lhs_mask, family)

    @classmethod
    def of(cls, ground: GroundSet, lhs, *members) -> "BooleanDependency":
        """Build from labels: ``BooleanDependency.of(S, "A", "B", "CD")``."""
        return cls(ground, ground.parse(lhs), SetFamily.of(ground, *members))

    @classmethod
    def from_differential(
        cls, constraint: DifferentialConstraint
    ) -> "BooleanDependency":
        return cls(constraint.ground, constraint.lhs, constraint.family)

    def to_differential(self) -> DifferentialConstraint:
        """The differential constraint with the same ``(X, Y)`` (Prop 7.3)."""
        return self._constraint

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._constraint.ground

    @property
    def lhs(self) -> int:
        return self._constraint.lhs

    @property
    def family(self) -> SetFamily:
        return self._constraint.family

    # ------------------------------------------------------------------
    def satisfied_by(self, relation: Relation) -> bool:
        """Formula (6) evaluated over all (unordered, with repeats) pairs."""
        self.ground.check_same(relation.ground)
        members = self._constraint.family.members
        rows = relation.rows
        for i, t in enumerate(rows):
            for t_prime in rows[i:]:
                agreement = relation.agreement_set(t, t_prime)
                # t[X] = t'[X] iff X is inside the agreement set
                if self.lhs & ~agreement:
                    continue
                if not any(m & ~agreement == 0 for m in members):
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BooleanDependency)
            and self._constraint == other._constraint
        )

    def __hash__(self) -> int:
        return hash(("bool", self._constraint))

    def __repr__(self) -> str:
        ground = self.ground
        lhs = ground.format_mask(self.lhs)
        rhs = ground.format_family(self.family.members)
        return f"{lhs} =>bool {rhs}"


def implies_boolean(
    dependencies: Iterable[BooleanDependency],
    target: BooleanDependency,
    method: str = "auto",
) -> bool:
    """``Cboolean |= X =>bool Y`` via Corollary 7.4 (any core decider)."""
    cset = ConstraintSet(
        target.ground, (d.to_differential() for d in dependencies)
    )
    return decide(cset, target.to_differential(), method=method)


def semantic_implies_over_two_tuple_relations(
    dependencies: Iterable[BooleanDependency],
    target: BooleanDependency,
) -> bool:
    """Boolean implication decided by satisfaction scans over ``r_U``.

    ``r_U`` satisfies ``X =>bool Y`` iff ``U`` is outside ``L(X, Y)``, so
    the two-tuple relations are refutation-complete; the scan exercises
    only :meth:`BooleanDependency.satisfied_by`, independent of the
    lattice machinery.
    """
    ground = target.ground
    deps = list(dependencies)
    for u in ground.all_masks():
        r = two_tuple_relation(ground, u)
        if all(d.satisfied_by(r) for d in deps) and not target.satisfied_by(r):
            return False
    return True
