"""Probability distributions over relations (Definition 7.1 substrate).

A *probabilistic relation* pairs a nonempty relation ``r`` with a
distribution ``p`` that is strictly positive on the tuples of ``r`` and
zero elsewhere.  :class:`Distribution` enforces exactly those conditions
and provides the marginals ``p_X`` used by the Simpson function::

    p_X(x) = sum of p(t) over tuples t with t[X] = x
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Tuple

from repro.relational.relation import Relation, Row

__all__ = ["Distribution"]

_TOL = 1e-9


class Distribution:
    """A strictly positive probability distribution on a relation's rows."""

    __slots__ = ("_relation", "_probs")

    def __init__(self, relation: Relation, probs: Mapping[Row, float]):
        if relation.is_empty():
            raise ValueError("Definition 7.1 requires a nonempty relation")
        clean: Dict[Row, float] = {}
        for row in relation:
            p = float(probs.get(row, 0.0))
            if p <= 0:
                raise ValueError(f"p must be strictly positive on r; p({row!r}) = {p}")
            clean[row] = p
        extra = set(probs) - set(relation.rows)
        if extra:
            raise ValueError(f"p assigns mass outside r: {sorted(map(str, extra))[:3]}")
        total = sum(clean.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"p must sum to 1 (got {total})")
        self._relation = relation
        self._probs = clean

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, relation: Relation) -> "Distribution":
        """The uniform distribution on the rows of ``relation``."""
        n = len(relation)
        return cls(relation, {row: 1.0 / n for row in relation})

    @classmethod
    def random(cls, relation: Relation, rng: random.Random) -> "Distribution":
        """A random strictly positive distribution (normalized weights)."""
        weights = {row: rng.random() + 0.05 for row in relation}
        total = sum(weights.values())
        return cls(relation, {row: w / total for row, w in weights.items()})

    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        return self._relation

    def prob(self, row: Row) -> float:
        """``p(t)`` (zero off the relation)."""
        return self._probs.get(tuple(row), 0.0)

    def items(self):
        """Iterate ``(row, p(row))``."""
        return self._probs.items()

    def marginal(self, x_mask: int) -> Dict[Row, float]:
        """The marginal ``p_X`` as ``{projected-tuple: mass}``."""
        out: Dict[Row, float] = {}
        for row, p in self._probs.items():
            key = self._relation.project_row(row, x_mask)
            out[key] = out.get(key, 0.0) + p
        return out

    def __repr__(self) -> str:
        return f"Distribution(over {self._relation!r})"
