"""Finite relations over an attribute ground set (Section 7 substrate).

A :class:`Relation` is a finite set of tuples over the attributes of a
:class:`~repro.core.ground.GroundSet`; rows are plain Python tuples
aligned with the attribute order.  The module provides projections
``pi_X(r)``, tuple agreement ``t[X] = t'[X]`` and the *two-tuple
relations* ``r_U`` (two rows agreeing exactly on ``U``) that make the
boolean-dependency implication problem semantically decidable by a scan
-- the relational analogue of Theorem 3.5's counterexample functions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.core import subsets as sb
from repro.core.ground import GroundSet

__all__ = ["Relation", "two_tuple_relation"]

Row = Tuple


class Relation:
    """An immutable finite relation (set of tuples) over a schema.

    Parameters
    ----------
    ground:
        The attribute ground set; bit order fixes the column order.
    rows:
        Tuples of attribute values (hashable); duplicates collapse
        (relations have set semantics, unlike basket *lists*).
    """

    __slots__ = ("_ground", "_rows")

    def __init__(self, ground: GroundSet, rows: Iterable[Sequence]):
        width = ground.size
        seen: Set[Row] = set()
        ordered: List[Row] = []
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} values, schema has {width}"
                )
            if tup not in seen:
                seen.add(tup)
                ordered.append(tup)
        self._ground = ground
        self._rows: Tuple[Row, ...] = tuple(ordered)

    @classmethod
    def of(cls, ground: GroundSet, *rows) -> "Relation":
        """Build from rows given positionally."""
        return cls(ground, rows)

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def rows(self) -> Tuple[Row, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self._ground == other._ground
            and set(self._rows) == set(other._rows)
        )

    def __hash__(self) -> int:
        return hash((self._ground, frozenset(self._rows)))

    def __repr__(self) -> str:
        return f"Relation({len(self._rows)} rows over |S|={self._ground.size})"

    def is_empty(self) -> bool:
        return not self._rows

    # ------------------------------------------------------------------
    # projections and agreement
    # ------------------------------------------------------------------
    def project_row(self, row: Row, x_mask: int) -> Row:
        """``t[X]``: the sub-tuple of ``row`` on the attributes of ``X``."""
        return tuple(row[bit] for bit in sb.iter_bits(x_mask))

    def project(self, x_mask: int) -> Set[Row]:
        """``pi_X(r)`` as a set of sub-tuples."""
        self._ground._check_mask(x_mask)
        return {self.project_row(row, x_mask) for row in self._rows}

    def agree(self, t: Row, t_prime: Row, x_mask: int) -> bool:
        """Whether ``t[X] = t'[X]``."""
        return all(t[bit] == t_prime[bit] for bit in sb.iter_bits(x_mask))

    def agreement_set(self, t: Row, t_prime: Row) -> int:
        """The mask of attributes on which the two rows agree."""
        mask = 0
        for bit in range(self._ground.size):
            if t[bit] == t_prime[bit]:
                mask |= 1 << bit
        return mask


def two_tuple_relation(ground: GroundSet, u_mask: int) -> Relation:
    """The relation ``r_U``: two rows agreeing exactly on ``U``.

    Row one is all zeros; row two is zero on ``U`` and one elsewhere.
    For ``U = S`` the rows coincide and the relation has a single row.
    Pairs of rows have exact agreement set ``U`` (the cross pair) or ``S``
    (the reflexive pairs), so ``r_U`` satisfies the boolean dependency
    ``X =>bool Y`` iff **both** ``U`` and ``S`` avoid ``L(X, Y)``; since
    ``S in L(X, Y)`` happens exactly for empty families, this reduces to
    ``U not in L(X, Y)`` on nonempty-family dependencies.  The family
    ``{r_U}`` is refutation-complete for boolean-dependency implication
    (and, through the Simpson function, for ``|=simpson``).
    """
    ground._check_mask(u_mask)
    row0 = tuple(0 for _ in range(ground.size))
    row1 = tuple(
        0 if u_mask >> bit & 1 else 1 for bit in range(ground.size)
    )
    return Relation(ground, [row0, row1])
