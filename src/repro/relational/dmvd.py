"""Degenerate multivalued dependencies (the Baixeries-Balcazar connection).

Section 2.2 credits Baixeries and Balcazar with a concept-lattice
characterization of the implication problem for *degenerate multivalued
dependencies* (DMVDs).  A DMVD ``X ->-> Y | Z`` (with ``Y, Z``
partitioning ``S - X``) holds in a relation when any two tuples agreeing
on ``X`` agree on ``Y`` or agree on ``Z`` -- which is precisely the
positive boolean dependency ``X =>bool {Y, Z}``, i.e. a two-member-family
differential constraint.  This module makes the specialization concrete:

* :class:`DegenerateMVD` with relation-level satisfaction and the
  conversion to :class:`~repro.relational.boolean_dependency.BooleanDependency`
  / :class:`~repro.core.constraint.DifferentialConstraint`;
* implication through the Theorem 3.5 machinery, so the DMVD implication
  problem inherits every decider (and, via ``derive``, explicit
  Figure-1 derivations for implied DMVDs).

Classical (non-degenerate) MVDs are *not* expressible this way -- their
semantics requires a third tuple -- which is why the paper's framework
captures the degenerate class exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import decide
from repro.relational.boolean_dependency import BooleanDependency
from repro.relational.relation import Relation

__all__ = ["DegenerateMVD", "implies_dmvd"]


class DegenerateMVD:
    """``X ->-> Y | Z`` with ``Y union Z = S - X`` and ``Y, Z`` disjoint."""

    __slots__ = ("_ground", "_lhs", "_left", "_right")

    def __init__(self, ground: GroundSet, lhs_mask: int, left_mask: int):
        """Build ``X ->-> Y | Z`` from ``X`` and ``Y`` (``Z`` is the rest)."""
        ground._check_mask(lhs_mask)
        ground._check_mask(left_mask)
        if left_mask & lhs_mask:
            raise ValueError("the left branch must be disjoint from X")
        self._ground = ground
        self._lhs = lhs_mask
        self._left = left_mask
        self._right = ground.universe_mask & ~(lhs_mask | left_mask)

    @classmethod
    def of(cls, ground: GroundSet, lhs, left) -> "DegenerateMVD":
        """``DegenerateMVD.of(S, "A", "BC")`` builds ``A ->-> BC | rest``."""
        return cls(ground, ground.parse(lhs), ground.parse(left))

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def lhs(self) -> int:
        return self._lhs

    @property
    def left(self) -> int:
        return self._left

    @property
    def right(self) -> int:
        return self._right

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DegenerateMVD)
            and self._ground == other._ground
            and self._lhs == other._lhs
            # X ->-> Y | Z and X ->-> Z | Y are the same dependency
            and {self._left, self._right} == {other._left, other._right}
        )

    def __hash__(self) -> int:
        return hash(
            (self._ground, self._lhs, frozenset((self._left, self._right)))
        )

    def __repr__(self) -> str:
        g = self._ground
        return (
            f"{g.format_mask(self._lhs)} ->-> "
            f"{g.format_mask(self._left)} | {g.format_mask(self._right)}"
        )

    # ------------------------------------------------------------------
    def satisfied_by(self, relation: Relation) -> bool:
        """Two tuples agreeing on ``X`` agree on ``Y`` or on ``Z``."""
        return self.to_boolean().satisfied_by(relation)

    def to_boolean(self) -> BooleanDependency:
        """The boolean dependency ``X =>bool {Y, Z}``.

        An empty branch contributes the empty-set member, which is
        trivially agreed upon -- matching the DMVD convention that
        ``X ->-> (S-X) | (/)`` always holds.
        """
        family = SetFamily(self._ground, [self._left, self._right])
        return BooleanDependency(self._ground, self._lhs, family)

    def to_differential(self) -> DifferentialConstraint:
        """The two-member-family differential constraint."""
        family = SetFamily(self._ground, [self._left, self._right])
        return DifferentialConstraint(self._ground, self._lhs, family)


def implies_dmvd(
    premises: Iterable[DegenerateMVD],
    target: DegenerateMVD,
    method: str = "auto",
) -> bool:
    """DMVD implication through the differential-constraint machinery."""
    cset = ConstraintSet(
        target.ground, (p.to_differential() for p in premises)
    )
    return decide(cset, target.to_differential(), method=method)
