"""Relational substrate (Section 7 of the paper).

Finite relations and probability distributions, Simpson functions with
their pairwise densities (Definition 7.1, Proposition 7.2), positive
boolean dependencies (formula (6), Proposition 7.3, Corollary 7.4),
classical functional dependencies with the P-time closure decision, and
Shannon-entropy probes for the paper's open problem.
"""

from repro.relational.relation import Relation, two_tuple_relation
from repro.relational.probability import Distribution
from repro.relational.simpson import (
    simpson_density_function_pairsum,
    simpson_density_pairsum,
    simpson_function,
    simpson_satisfies,
    simpson_value,
)
from repro.relational.boolean_dependency import (
    BooleanDependency,
    implies_boolean,
    semantic_implies_over_two_tuple_relations,
)
from repro.relational.fd import (
    FunctionalDependency,
    StreamingFDChecker,
    armstrong_derives,
    candidate_keys,
    closure,
    implies_fd_classic,
    is_superkey,
)
from repro.relational.shannon import (
    entropy_density_can_be_negative,
    entropy_function,
    entropy_value,
    fd_holds_by_entropy,
)
from repro.relational.datagen import (
    random_probabilistic_relation,
    random_relation,
    relation_satisfying_fds,
)
from repro.relational.dmvd import DegenerateMVD, implies_dmvd

__all__ = [
    "Relation",
    "two_tuple_relation",
    "Distribution",
    "simpson_density_function_pairsum",
    "simpson_density_pairsum",
    "simpson_function",
    "simpson_satisfies",
    "simpson_value",
    "BooleanDependency",
    "implies_boolean",
    "semantic_implies_over_two_tuple_relations",
    "FunctionalDependency",
    "StreamingFDChecker",
    "armstrong_derives",
    "candidate_keys",
    "closure",
    "implies_fd_classic",
    "is_superkey",
    "entropy_density_can_be_negative",
    "entropy_function",
    "entropy_value",
    "fd_holds_by_entropy",
    "random_probabilistic_relation",
    "random_relation",
    "relation_satisfying_fds",
    "DegenerateMVD",
    "implies_dmvd",
]
