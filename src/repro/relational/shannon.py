"""Shannon-entropy set functions -- the paper's open problem, made testable.

Section 7 notes that Lee/Malvestuto (and later Dalkilic-Robertson) used
Shannon entropy rather than the Simpson index, and that "it remains an
open problem whether results in this section apply to Shannon functions".
This module supplies the entropy function::

    h_{r,p}(X) = - sum over x in pi_X(r) of p_X(x) * log2 p_X(x)

and probes for the experiments:

* the density of an entropy function is (up to sign conventions) the
  multivariate *interaction information*, which famously can be negative
  -- so Shannon functions are not frequency functions in general, and the
  Theorem 3.5 machinery does not specialize as it does for Simpson
  (:func:`entropy_density_can_be_negative` exhibits the XOR relation);
* functional dependencies nevertheless match exactly:
  ``r |= X -> Y`` iff ``h(X union Y) = h(X)`` (Lee's characterization),
  implemented as :func:`fd_holds_by_entropy` and tested against the
  relational definition.

Nothing here claims to *settle* the open problem; the probes document its
precise shape (experiment E9 reports agreement/divergence rates between
Simpson-based and entropy-based constraint satisfaction).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.ground import GroundSet
from repro.core.setfunction import SetFunction
from repro.relational.probability import Distribution
from repro.relational.relation import Relation

__all__ = [
    "entropy_value",
    "entropy_function",
    "fd_holds_by_entropy",
    "entropy_density_can_be_negative",
]


def entropy_value(dist: Distribution, x_mask: int) -> float:
    """``h_{r,p}(X)``: Shannon entropy of the ``X``-marginal (bits)."""
    total = 0.0
    for mass in dist.marginal(x_mask).values():
        if mass > 0:
            total -= mass * math.log2(mass)
    return total


def entropy_function(dist: Distribution) -> SetFunction:
    """The entropy set function as a dense element of ``F(S)``."""
    ground = dist.relation.ground
    values = [entropy_value(dist, mask) for mask in ground.all_masks()]
    return SetFunction(ground, values)


def fd_holds_by_entropy(
    dist: Distribution, lhs_mask: int, rhs_mask: int, tol: float = 1e-9
) -> bool:
    """Lee's information-theoretic FD test: ``H(Y | X) = 0``.

    ``r`` satisfies ``X -> Y`` iff ``h(X union Y) = h(X)``; agreement with
    the pairwise relational definition is verified by the tests.
    """
    return abs(
        entropy_value(dist, lhs_mask | rhs_mask) - entropy_value(dist, lhs_mask)
    ) <= tol


def entropy_density_can_be_negative(ground: GroundSet) -> Tuple[Relation, float]:
    """A witness that entropy functions fall outside ``positive(S)``.

    Builds the XOR relation on the first three attributes (all rows with
    ``a ^ b ^ c = 0``, remaining attributes constant) under the uniform
    distribution and evaluates the entropy density at ``{A}`` together
    with the constant padding attributes::

        d(A) = h(A) - h(AB) - h(AC) + h(ABC) = 1 - 2 - 2 + 2 = -1

    -- the classic negative interaction information of the parity
    distribution.  Returns the relation and the (strictly negative)
    density value; by Proposition 2.9 this is also a negative
    differential, so no Simpson-style nonnegativity transfer is possible
    for Shannon functions.
    """
    if ground.size < 3:
        raise ValueError("need at least three attributes for the XOR witness")
    rows = []
    for a in (0, 1):
        for b in (0, 1):
            row = [0] * ground.size
            row[0], row[1], row[2] = a, b, a ^ b
            rows.append(tuple(row))
    relation = Relation(ground, rows)
    dist = Distribution.uniform(relation)
    h = entropy_function(dist)
    padding = ground.universe_mask & ~0b111  # attributes beyond A, B, C
    witness_mask = 0b001 | padding
    return relation, h.density().value(witness_mask)
