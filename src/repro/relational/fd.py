"""Classical functional dependencies and the P-time fragment.

The paper's conclusion singles out the subclass of differential
constraints whose right-hand sides contain exactly one member: its
implication problem "is equivalent to the implication problem for
functional dependencies, a problem in P".  This module supplies the
classical side of that equivalence:

* :class:`FunctionalDependency` with relation-level satisfaction
  (``t[X] = t'[X]  =>  t[Y] = t'[Y]``),
* the attribute-closure decision procedure (delegating to
  :func:`repro.core.implication.fd_closure`),
* Armstrong-axiom derivations (reflexivity / augmentation / transitivity)
  as a tiny independent proof system -- mirroring at FD level what
  Section 4 does for differential constraints,
* candidate-key computation as a worked consumer of closures.

Tests verify the equivalence: for singleton-family instances, FD
implication by closure == differential implication by lattices == boolean
dependency implication (an FD *is* the boolean dependency with
``Y = {Y}``).
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterable, List, Sequence, Set, Tuple

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import fd_closure
from repro.relational.boolean_dependency import BooleanDependency
from repro.relational.relation import Relation

__all__ = [
    "FunctionalDependency",
    "StreamingFDChecker",
    "closure",
    "implies_fd_classic",
    "is_superkey",
    "candidate_keys",
    "armstrong_derives",
]


class FunctionalDependency:
    """A functional dependency ``X -> Y`` over an attribute ground set."""

    __slots__ = ("_ground", "_lhs", "_rhs")

    def __init__(self, ground: GroundSet, lhs_mask: int, rhs_mask: int):
        ground._check_mask(lhs_mask)
        ground._check_mask(rhs_mask)
        self._ground = ground
        self._lhs = lhs_mask
        self._rhs = rhs_mask

    @classmethod
    def of(cls, ground: GroundSet, lhs, rhs) -> "FunctionalDependency":
        """``FunctionalDependency.of(S, "AB", "C")``."""
        return cls(ground, ground.parse(lhs), ground.parse(rhs))

    @classmethod
    def parse(cls, ground: GroundSet, text: str) -> "FunctionalDependency":
        """Parse ``"AB -> C"``."""
        lhs, _, rhs = text.partition("->")
        return cls.of(ground, lhs.strip(), rhs.strip())

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def lhs(self) -> int:
        return self._lhs

    @property
    def rhs(self) -> int:
        return self._rhs

    @property
    def is_trivial(self) -> bool:
        """Reflexivity: ``Y subseteq X``."""
        return sb.is_subset(self._rhs, self._lhs)

    # ------------------------------------------------------------------
    def satisfied_by(self, relation: Relation) -> bool:
        """No two tuples agree on ``X`` while disagreeing on ``Y``."""
        self._ground.check_same(relation.ground)
        rows = relation.rows
        for i, t in enumerate(rows):
            for t_prime in rows[i + 1 :]:
                agreement = relation.agreement_set(t, t_prime)
                if not self._lhs & ~agreement and self._rhs & ~agreement:
                    return False
        return True

    def to_differential(self) -> DifferentialConstraint:
        """The singleton-family differential constraint ``X -> {Y}``."""
        return DifferentialConstraint(
            self._ground, self._lhs, SetFamily(self._ground, [self._rhs])
        )

    def to_boolean(self) -> BooleanDependency:
        """The boolean dependency ``X =>bool {Y}``."""
        return BooleanDependency(
            self._ground, self._lhs, SetFamily(self._ground, [self._rhs])
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionalDependency)
            and self._ground == other._ground
            and self._lhs == other._lhs
            and self._rhs == other._rhs
        )

    def __hash__(self) -> int:
        return hash((self._ground, self._lhs, self._rhs))

    def __repr__(self) -> str:
        return (
            f"{self._ground.format_mask(self._lhs)} -> "
            f"{self._ground.format_mask(self._rhs)}"
        )


class StreamingFDChecker:
    """Delta-maintained FD checking over a stream of tuple inserts/deletes.

    The pairwise *agreement density* of a relation -- ``d(U)`` counting
    the unordered tuple pairs whose agreement set is exactly ``U`` --
    turns FD satisfaction into the paper's density semantics: ``X -> Y``
    fails on the relation iff some pair agrees on ``X`` but not on
    ``Y``, i.e. iff ``d`` is nonzero somewhere in ``L(X, {Y})``.  So the
    checker feeds agreement-pair deltas into a
    :class:`repro.engine.StreamSession` monitoring each FD's
    singleton-family differential constraint: inserting a tuple commits
    one batch of ``O(rows)`` deltas, each ``O(#FDs)`` to monitor, and
    every insert/delete reports exactly which FDs it newly violated or
    restored -- no quadratic re-scan of the relation per check.

    Engine policy (tier, backend, shards, workers) comes in as one
    :class:`repro.engine.EngineConfig` (``config=``), resolved by the
    planner and built through the single
    :func:`repro.engine.plan.build_context` factory; the pre-planner
    ``backend=``/``shards=``/``workers=``/``durable=`` kwargs remain as
    deprecated shims.

    ``config.durable`` (or the deprecated ``durable=<data dir>``)
    makes the checker crash-proof: the durable
    state is the *rows* (the agreement density is derived), so every
    insert/delete is appended to a CRC-framed write-ahead log as a JSON
    row op before it is applied, and snapshots persist the full row
    multiset.  Reopening on the same directory recovers the relation
    and re-derives the pairwise density through a fresh session (an
    ``O(rows^2)`` rebuild, asserted against the snapshot's violation
    counters).  Durable rows must be JSON-round-trippable tuples.
    """

    _UNSET = object()

    def __init__(
        self,
        ground: GroundSet,
        fds: Iterable[FunctionalDependency] = (),
        config=None,
        backend=_UNSET,
        shards=_UNSET,
        workers=_UNSET,
        durable=_UNSET,
        snapshot_every=None,
        fsync: str = "always",
        retain: int = 2,
        **session_kwargs,
    ):
        from repro.engine.persist import DurableStore
        from repro.engine.plan import EngineConfig, warn_deprecated_kwargs
        from repro.engine.stream import StreamSession

        unset = type(self)._UNSET
        legacy = {
            name: value
            for name, value in (
                ("backend", backend),
                ("shards", shards),
                ("workers", workers),
                ("durable", durable),
            )
            if value is not unset
        }
        if legacy:
            if config is not None:
                raise ValueError(
                    "StreamingFDChecker: pass config=EngineConfig(...) "
                    f"or the deprecated {', '.join(sorted(legacy))} "
                    "kwargs, not both"
                )
            warn_deprecated_kwargs(sorted(legacy), "StreamingFDChecker")
            durable = legacy.pop("durable", None)
            config = EngineConfig.from_legacy(**legacy)
        else:
            durable = config.durable if config is not None else None
            if config is None:
                config = EngineConfig(engine="incremental", backend="exact")
            if config.durable is not None:
                # the checker's durable state is the *rows* (the
                # agreement density is derived): the store is ours, the
                # engine session underneath stays in-memory
                config = config.replace(durable=None)
        if snapshot_every is None and config.snapshot_every is not None:
            snapshot_every = config.snapshot_every
        if fsync == "always":
            fsync = config.fsync
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self._ground = ground
        self._fds: List[FunctionalDependency] = list(fds)
        self._by_constraint = {
            fd.to_differential(): fd for fd in self._fds
        }
        # a sharded plan partitions the agreement density by
        # agreement-set mask (the sharded engine path); semantics are
        # identical.
        self._session = StreamSession(
            ground,
            constraints=tuple(self._by_constraint),
            config=config,
            _depth=1,
            **session_kwargs,
        )
        self._rows: Counter = Counter()
        self._row_tx = 0
        self._snapshot_every = snapshot_every
        self._wedged = False
        self._store = None
        if durable is not None:
            self._store = (
                durable
                if isinstance(durable, DurableStore)
                else DurableStore(durable, fsync=fsync, retain=retain)
            )
            if self._store.is_empty():
                self._store.write_meta(
                    {
                        "format": 1,
                        "kind": "fd-checker",
                        "n": ground.size,
                        "backend": self._session.context.backend.name,
                    }
                )
                self.snapshot()
            else:
                self._recover()

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def fds(self) -> Tuple[FunctionalDependency, ...]:
        return tuple(self._fds)

    @property
    def session(self):
        """The underlying stream session (live agreement density)."""
        return self._session

    def __len__(self) -> int:
        return sum(self._rows.values())

    def _agreement(self, t: Tuple, u: Tuple) -> int:
        mask = 0
        for bit in range(self._ground.size):
            if t[bit] == u[bit]:
                mask |= 1 << bit
        return mask

    def _check_row(self, row) -> Tuple:
        row = tuple(row)
        if len(row) != self._ground.size:
            raise ValueError(
                f"row arity {len(row)} != |schema| {self._ground.size}"
            )
        return row

    def _pair_deltas(self, row: Tuple, sign: int) -> List[Tuple[int, int]]:
        deltas: Counter = Counter()
        for other, count in self._rows.items():
            deltas[self._agreement(row, other)] += sign * count
        return [(mask, d) for mask, d in deltas.items() if d]

    # ------------------------------------------------------------------
    # durability: the rows are the durable state
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        return self._store is not None

    @staticmethod
    def _rows_fingerprint(rows: Counter) -> int:
        import json
        import zlib

        canon = json.dumps(
            sorted(
                ([list(row), count] for row, count in rows.items()),
                key=str,  # heterogeneous row values are not orderable
            ),
            separators=(",", ":"),
            default=str,
        )
        return zlib.crc32(canon.encode())

    def _check_not_wedged(self) -> None:
        if self._wedged:
            from repro.errors import PersistenceError

            raise PersistenceError(
                "checker is wedged: a durably-logged row op failed to "
                "apply, so the live state lags the log; reopen from the "
                "data directory to recover (replay heals the state)"
            )

    def _log_row(self, op: str, row: Tuple) -> None:
        """Durably commit a row op.  The append is the commit point:
        the sequence counter advances here, so a failed apply cannot
        make a later op reuse this record's sequence number."""
        import json

        if self._store is not None:
            self._check_not_wedged()
            payload = json.dumps(
                {"op": op, "row": list(row)}, separators=(",", ":")
            ).encode()
            try:
                self._store.append(self._row_tx + 1, payload)
            except OSError:
                # partial record bytes may be in the file: refuse all
                # further writes; the reopen path repairs the torn tail
                self._wedged = True
                raise
            self._row_tx += 1

    def _after_row_op(self) -> None:
        if self._store is None:
            self._row_tx += 1
        elif (
            self._snapshot_every is not None
            and self._row_tx % self._snapshot_every == 0
        ):
            self.snapshot()

    def snapshot(self) -> None:
        """Persist the row multiset and compact the row log."""
        from repro.errors import PersistenceError

        if self._store is None:
            raise PersistenceError(
                "this checker is not durable (pass durable=<data dir>)"
            )
        self._check_not_wedged()
        payload = {
            "format": 1,
            "tx": self._row_tx,
            "rows": sorted(
                ([list(row), count] for row, count in self._rows.items()),
                key=str,
            ),
            "rows_fingerprint": self._rows_fingerprint(self._rows),
            "tracked": len(self._fds),
            "violated": len(self.violated_fds()),
        }
        self._store.snapshot(payload)

    def _recover(self) -> None:
        """Rebuild rows from snapshot + log tail, re-derive the density."""
        import json

        from repro.errors import CorruptSnapshotError, CorruptWalError

        recovered = self._store.recover()
        meta = self._store.meta
        if meta.get("kind") != "fd-checker":
            raise CorruptSnapshotError(
                f"{self._store.path}: data dir belongs to "
                f"{meta.get('kind')!r}, not a streaming FD checker"
            )
        if meta["n"] != self._ground.size:
            raise CorruptSnapshotError(
                f"{self._store.path}: recorded |schema|={meta['n']} != "
                f"ground set size {self._ground.size}"
            )
        snapshot = recovered.snapshot
        if snapshot is not None:
            for row, count in snapshot["rows"]:
                for _ in range(count):
                    self._apply_insert(tuple(row))
            self._row_tx = snapshot["tx"]
            if self._rows_fingerprint(self._rows) != snapshot["rows_fingerprint"]:
                raise CorruptSnapshotError(
                    f"{self._store.path}: recovered rows do not match the "
                    "snapshot's fingerprint"
                )
            if (
                len(self._fds) == snapshot.get("tracked")
                and len(self.violated_fds()) != snapshot["violated"]
            ):
                raise CorruptSnapshotError(
                    f"{self._store.path}: recovered violation count "
                    f"{len(self.violated_fds())} != snapshot count "
                    f"{snapshot['violated']} for the same FD set"
                )
        for seq, payload in recovered.tail:
            try:
                record = json.loads(payload)
                op, row = record["op"], tuple(record["row"])
            except (ValueError, KeyError, TypeError) as err:
                raise CorruptWalError(
                    f"{self._store.path}: row record {seq} is not a "
                    f"JSON row op ({err})"
                ) from err
            if op == "+":
                self._apply_insert(row)
            elif op == "-":
                self._apply_delete(row)
            else:
                raise CorruptWalError(
                    f"{self._store.path}: unknown row op {op!r} in "
                    f"record {seq}"
                )
            self._row_tx = seq

    def close(self) -> None:
        """Flush and close the durable store and the session."""
        if self._store is not None:
            self._store.close()
        self._session.close()

    def __enter__(self) -> "StreamingFDChecker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _apply_insert(self, row: Tuple):
        row = self._check_row(row)
        report = self._session.apply(self._pair_deltas(row, +1))
        self._rows[row] += 1
        return report

    def _apply_delete(self, row: Tuple):
        row = self._check_row(row)
        if self._rows[row] <= 0:
            raise ValueError(f"row {row!r} not present")
        self._rows[row] -= 1
        if self._rows[row] == 0:
            del self._rows[row]
        return self._session.apply(self._pair_deltas(row, -1))

    def insert(self, row):
        """Insert one tuple; returns the transaction's
        :class:`repro.engine.StreamReport` (constraints are the FDs'
        differential translations; map back with :meth:`fd_of`).
        Durable checkers log the row op before applying it."""
        row = self._check_row(row)
        self._log_row("+", row)
        report = self._apply_logged(self._apply_insert, row)
        self._after_row_op()
        return report

    def delete(self, row):
        """Delete one copy of ``row`` (must be present)."""
        row = self._check_row(row)
        if self._rows[row] <= 0:
            raise ValueError(f"row {row!r} not present")
        self._log_row("-", row)
        report = self._apply_logged(self._apply_delete, row)
        self._after_row_op()
        return report

    def _apply_logged(self, apply, row):
        if self._store is None:
            return apply(row)
        try:
            return apply(row)
        except BaseException:
            # the log has the row op but the state does not: wedge the
            # checker so no later op or snapshot persists the divergence
            self._wedged = True
            raise

    def fd_of(self, constraint: DifferentialConstraint) -> FunctionalDependency:
        """The FD behind a reported differential constraint."""
        return self._by_constraint[constraint]

    def violated_fds(self) -> Tuple[FunctionalDependency, ...]:
        """The FDs currently violated by the streamed relation."""
        return tuple(
            self._by_constraint[c]
            for c in self._session.violated_constraints()
        )

    def to_relation(self) -> Relation:
        """Materialize the current rows as a :class:`Relation` -- the
        oracle the tests re-check against.  :class:`Relation` has set
        semantics, so duplicate streamed rows collapse (harmless for FD
        satisfaction: identical tuples agree everywhere)."""
        return Relation(self._ground, list(self._rows))

    def __repr__(self) -> str:
        return (
            f"StreamingFDChecker({len(self)} rows, {len(self._fds)} FDs, "
            f"{len(self.violated_fds())} violated)"
        )


def closure(
    ground: GroundSet, attrs_mask: int, fds: Iterable[FunctionalDependency]
) -> int:
    """The attribute-set closure ``X+`` under ``fds``."""
    pairs = [(fd.lhs, fd.rhs) for fd in fds]
    return fd_closure(ground.universe_mask, attrs_mask, pairs)


def implies_fd_classic(
    fds: Iterable[FunctionalDependency], target: FunctionalDependency
) -> bool:
    """``F |= X -> Y`` iff ``Y subseteq X+`` (the textbook P-time test)."""
    return sb.is_subset(
        target.rhs, closure(target.ground, target.lhs, list(fds))
    )


def is_superkey(
    ground: GroundSet, attrs_mask: int, fds: Iterable[FunctionalDependency]
) -> bool:
    """Whether ``attrs`` functionally determine every attribute."""
    return closure(ground, attrs_mask, list(fds)) == ground.universe_mask


def candidate_keys(
    ground: GroundSet, fds: Sequence[FunctionalDependency]
) -> List[int]:
    """All minimal superkeys, by increasing size (exponential search)."""
    keys: List[int] = []
    bits = list(range(ground.size))
    for size in range(ground.size + 1):
        for combo in combinations(bits, size):
            mask = sb.mask_of_bits(combo)
            if any(sb.is_subset(k, mask) for k in keys):
                continue
            if is_superkey(ground, mask, fds):
                keys.append(mask)
    return sorted(keys)


def armstrong_derives(
    fds: Sequence[FunctionalDependency],
    target: FunctionalDependency,
    max_rounds: int = 64,
) -> bool:
    """Derivability in Armstrong's system (saturation to fixpoint).

    Saturates under reflexivity-augmented transitivity in closure form:
    maintains, for each derived left-hand side, the set of attributes
    reachable; sound and complete for FD implication, so this must agree
    with :func:`implies_fd_classic` -- a cross-check used in the tests
    rather than a practical decision procedure.
    """
    ground = target.ground
    # reachable[L] = attributes derivable from L; seed with reflexivity
    reachable = {fd.lhs: fd.lhs | fd.rhs for fd in fds}
    reachable.setdefault(target.lhs, target.lhs)
    for _ in range(max_rounds):
        changed = False
        for lhs in list(reachable):
            current = reachable[lhs] | lhs
            for fd in fds:
                if sb.is_subset(fd.lhs, current) and fd.rhs & ~current:
                    current |= fd.rhs
                    changed = True
            if current != reachable[lhs]:
                reachable[lhs] = current
                changed = True
        if not changed:
            break
    return sb.is_subset(target.rhs, reachable.get(target.lhs, target.lhs))
