"""JSON serialization for ground sets, constraints, theories and proofs.

Stable, versioned, human-auditable representations so theories can be
stored, diffed and exchanged:

* ground sets serialize to their element list (order is significant --
  it fixes bit positions);
* subsets serialize as sorted label lists (not masks), so files survive
  re-ordering-free schema edits and are readable in review;
* proofs serialize as a flat step table (postorder, premise indices),
  and **deserialization re-validates every step** through the standard
  builders -- a loaded proof is a checked proof.

The format deliberately contains no pickled objects; everything is plain
JSON with a ``format`` tag.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core import rules as R
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.proofs import Proof
from repro.errors import InvalidProofError

__all__ = [
    "ground_to_json",
    "ground_from_json",
    "constraint_to_json",
    "constraint_from_json",
    "constraint_set_to_json",
    "constraint_set_from_json",
    "proof_to_json",
    "proof_from_json",
    "dumps",
    "loads",
]

_FORMAT = "repro/differential-constraints@1"


def _subset(ground: GroundSet, mask: int) -> List[str]:
    return sorted(str(label) for label in ground.subset(mask))


def _mask(ground: GroundSet, labels: List[str]) -> int:
    return ground.mask(labels)


def ground_to_json(ground: GroundSet) -> Dict[str, Any]:
    return {"elements": [str(e) for e in ground.elements]}


def ground_from_json(data: Dict[str, Any]) -> GroundSet:
    return GroundSet(data["elements"])


def constraint_to_json(c: DifferentialConstraint) -> Dict[str, Any]:
    ground = c.ground
    return {
        "lhs": _subset(ground, c.lhs),
        "family": [_subset(ground, m) for m in c.family.members],
    }


def constraint_from_json(
    ground: GroundSet, data: Dict[str, Any]
) -> DifferentialConstraint:
    lhs = _mask(ground, data["lhs"])
    family = SetFamily(ground, (_mask(ground, m) for m in data["family"]))
    return DifferentialConstraint(ground, lhs, family)


def constraint_set_to_json(cset: ConstraintSet) -> Dict[str, Any]:
    return {
        "format": _FORMAT,
        "ground": ground_to_json(cset.ground),
        "constraints": [constraint_to_json(c) for c in cset],
    }


def constraint_set_from_json(data: Dict[str, Any]) -> ConstraintSet:
    if data.get("format") != _FORMAT:
        raise ValueError(f"unknown format tag {data.get('format')!r}")
    ground = ground_from_json(data["ground"])
    constraints = [
        constraint_from_json(ground, c) for c in data["constraints"]
    ]
    return ConstraintSet(ground, constraints)


def proof_to_json(proof: Proof) -> Dict[str, Any]:
    """Flatten the proof DAG into a postorder step table."""
    ground = proof.conclusion.ground
    numbers: Dict[int, int] = {}
    steps: List[Dict[str, Any]] = []
    for node in proof.iter_nodes():
        numbers[id(node)] = len(numbers)
        params: List[Any] = []
        for p in node.params:
            if isinstance(p, SetFamily):
                params.append(
                    {"family": [_subset(ground, m) for m in p.members]}
                )
            else:
                params.append({"subset": _subset(ground, p)})
        steps.append(
            {
                "rule": node.rule,
                "conclusion": constraint_to_json(node.conclusion),
                "premises": [numbers[id(p)] for p in node.premises],
                "params": params,
            }
        )
    return {
        "format": _FORMAT,
        "ground": ground_to_json(ground),
        "steps": steps,
    }


def proof_from_json(data: Dict[str, Any]) -> Proof:
    """Rebuild (and thereby re-validate) a proof from its step table."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"unknown format tag {data.get('format')!r}")
    ground = ground_from_json(data["ground"])
    built: List[Proof] = []
    for index, step in enumerate(data["steps"]):
        rule = step["rule"]
        if rule not in R.ALL_RULES:
            raise InvalidProofError(f"unknown rule {rule!r} at step {index}")
        conclusion = constraint_from_json(ground, step["conclusion"])
        premises = []
        for p in step["premises"]:
            if not 0 <= p < index:
                raise InvalidProofError(
                    f"step {index} references future/invalid step {p}"
                )
            premises.append(built[p])
        params: List[Any] = []
        for raw in step["params"]:
            if "family" in raw:
                params.append(
                    SetFamily(
                        ground, (_mask(ground, m) for m in raw["family"])
                    )
                )
            else:
                params.append(_mask(ground, raw["subset"]))
        # the Proof constructor re-validates the step against its schema
        built.append(Proof(conclusion, rule, tuple(premises), tuple(params)))
    if not built:
        raise InvalidProofError("empty proof")
    return built[-1]


def dumps(obj, indent: int = 2) -> str:
    """Serialize a ConstraintSet or Proof to a JSON string."""
    if isinstance(obj, ConstraintSet):
        return json.dumps(constraint_set_to_json(obj), indent=indent)
    if isinstance(obj, Proof):
        return json.dumps(proof_to_json(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str):
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    if "steps" in data:
        return proof_from_json(data)
    if "constraints" in data:
        return constraint_set_from_json(data)
    raise ValueError("unrecognized repro JSON document")
