"""Propositional formula AST (Section 5 substrate).

A tiny, explicit formula language over hashable variable names:
:class:`Var`, :class:`Not`, :class:`And`, :class:`Or`, :class:`Implies`
and the constants :data:`TRUE` / :data:`FALSE`.  Formulas are immutable
and hashable, evaluate against ``{name: bool}`` assignments, and support
the operator sugar ``&``, ``|``, ``~`` and ``>>`` (implication) so the
paper's formulas read naturally::

    >>> a, b = Var("A"), Var("B")
    >>> (a >> b).evaluate({"A": True, "B": False})
    False

Helpers :func:`conj` and :func:`disj` build n-ary conjunctions and
disjunctions with the logical conventions for empty operand lists
(``conj([]) == TRUE``, ``disj([]) == FALSE``) -- exactly the conventions
Definition 5.2's implication constraints rely on when a constraint's
family (or a family member) is empty.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Mapping, Tuple

__all__ = [
    "Formula",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Const",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
]


class Formula:
    """Base class for propositional formulas."""

    __slots__ = ()

    # -- operator sugar -------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    # -- interface -------------------------------------------------------
    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Truth value under a total assignment of the formula's variables."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[Hashable]:
        """The set of variable names occurring in the formula."""
        raise NotImplementedError

    def to_nnf(self, negate: bool = False) -> "Formula":
        """Negation normal form (negations pushed onto variables)."""
        raise NotImplementedError


class Const(Formula):
    """A propositional constant (use the :data:`TRUE`/:data:`FALSE`
    singletons rather than constructing new ones)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("formulas are immutable")

    def evaluate(self, assignment):
        return self.value

    def variables(self):
        return frozenset()

    def to_nnf(self, negate=False):
        return Const(self.value != negate)

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return "TRUE" if self.value else "FALSE"


TRUE = Const(True)
FALSE = Const(False)


class Var(Formula):
    """A propositional variable."""

    __slots__ = ("name",)

    def __init__(self, name: Hashable):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("formulas are immutable")

    def evaluate(self, assignment):
        return bool(assignment[self.name])

    def variables(self):
        return frozenset((self.name,))

    def to_nnf(self, negate=False):
        return Not(self) if negate else self

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return str(self.name)


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, *a):
        raise AttributeError("formulas are immutable")

    def evaluate(self, assignment):
        return not self.operand.evaluate(assignment)

    def variables(self):
        return self.operand.variables()

    def to_nnf(self, negate=False):
        return self.operand.to_nnf(not negate)

    def __eq__(self, other):
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self):
        return hash(("not", self.operand))

    def __repr__(self):
        return f"~{self.operand!r}"


class _Nary(Formula):
    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Iterable[Formula]):
        object.__setattr__(self, "operands", tuple(operands))

    def __setattr__(self, *a):
        raise AttributeError("formulas are immutable")

    def variables(self):
        out: FrozenSet[Hashable] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def __eq__(self, other):
        return type(other) is type(self) and self.operands == other.operands

    def __hash__(self):
        return hash((type(self).__name__, self.operands))

    def __repr__(self):
        if not self.operands:
            return "TRUE" if isinstance(self, And) else "FALSE"
        inner = f" {self._symbol} ".join(repr(op) for op in self.operands)
        return f"({inner})"


class And(_Nary):
    """N-ary conjunction; the empty conjunction is true."""

    __slots__ = ()
    _symbol = "&"

    def evaluate(self, assignment):
        return all(op.evaluate(assignment) for op in self.operands)

    def to_nnf(self, negate=False):
        parts = tuple(op.to_nnf(negate) for op in self.operands)
        return Or(parts) if negate else And(parts)


class Or(_Nary):
    """N-ary disjunction; the empty disjunction is false."""

    __slots__ = ()
    _symbol = "|"

    def evaluate(self, assignment):
        return any(op.evaluate(assignment) for op in self.operands)

    def to_nnf(self, negate=False):
        parts = tuple(op.to_nnf(negate) for op in self.operands)
        return And(parts) if negate else Or(parts)


class Implies(Formula):
    """Material implication ``antecedent => consequent``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def __setattr__(self, *a):
        raise AttributeError("formulas are immutable")

    def evaluate(self, assignment):
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(
            assignment
        )

    def variables(self):
        return self.antecedent.variables() | self.consequent.variables()

    def to_nnf(self, negate=False):
        rewritten = Or((Not(self.antecedent), self.consequent))
        return rewritten.to_nnf(negate)

    def __eq__(self, other):
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self):
        return hash(("implies", self.antecedent, self.consequent))

    def __repr__(self):
        return f"({self.antecedent!r} => {self.consequent!r})"


def conj(operands: Iterable[Formula]) -> Formula:
    """N-ary conjunction with ``conj([]) == TRUE``."""
    ops = tuple(operands)
    if not ops:
        return TRUE
    if len(ops) == 1:
        return ops[0]
    return And(ops)


def disj(operands: Iterable[Formula]) -> Formula:
    """N-ary disjunction with ``disj([]) == FALSE``."""
    ops = tuple(operands)
    if not ops:
        return FALSE
    if len(ops) == 1:
        return ops[0]
    return Or(ops)
