"""A DPLL satisfiability solver, written from scratch.

The implication problem for differential constraints is coNP-complete
(Proposition 5.5); deciding an instance means refuting the existence of a
model of ``prop(C) and not prop(target)``.  This module provides the
propositional engine: clauses are lists of nonzero integers (positive =
variable, negative = negation), and :func:`solve` returns a satisfying
assignment as a ``dict`` or ``None``.

The solver is a classic iterative DPLL with:

* unit propagation (queue-based, with clause watching kept simple:
  clauses are rescanned lazily -- adequate for the instance sizes the
  reproduction meets),
* pure-literal elimination at the root,
* most-frequent-literal branching.

It is deliberately dependency-free and small enough to audit; the test
suite cross-validates it against brute-force enumeration on random
formulas up to 12 variables.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["solve", "is_satisfiable", "enumerate_models", "check_model"]

Clause = Sequence[int]
Assignment = Dict[int, bool]


def check_model(clauses: Iterable[Clause], model: Assignment) -> bool:
    """Whether ``model`` satisfies every clause (unassigned vars fail)."""
    for clause in clauses:
        if not any(
            model.get(abs(lit), None) == (lit > 0) for lit in clause
        ):
            return False
    return True


def _simplify(
    clauses: List[List[int]], assignment: Assignment
) -> Optional[List[List[int]]]:
    """Apply ``assignment``; return simplified clauses or ``None`` on conflict."""
    out: List[List[int]] = []
    for clause in clauses:
        satisfied = False
        reduced: List[int] = []
        for lit in clause:
            val = assignment.get(abs(lit))
            if val is None:
                reduced.append(lit)
            elif val == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        if not reduced:
            return None
        out.append(reduced)
    return out


def _unit_propagate(
    clauses: List[List[int]], assignment: Assignment
) -> Optional[List[List[int]]]:
    """Exhaust unit clauses; return simplified clauses or ``None`` on conflict."""
    while True:
        units = [c[0] for c in clauses if len(c) == 1]
        if not units:
            return clauses
        step: Assignment = {}
        for lit in units:
            var, val = abs(lit), lit > 0
            if step.get(var, val) != val or assignment.get(var, val) != val:
                return None
            step[var] = val
        assignment.update(step)
        clauses = _simplify(clauses, step)
        if clauses is None:
            return None


def _pure_literals(clauses: List[List[int]]) -> Assignment:
    polarity: Dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            sign = 1 if lit > 0 else -1
            polarity[var] = 0 if polarity.get(var, sign) != sign else sign
    return {var: sign > 0 for var, sign in polarity.items() if sign != 0}


def _choose_literal(clauses: List[List[int]]) -> int:
    counts: Counter = Counter()
    for clause in clauses:
        for lit in clause:
            counts[lit] += 1
    return counts.most_common(1)[0][0]


def solve(
    clauses: Iterable[Clause], n_vars: Optional[int] = None
) -> Optional[Assignment]:
    """Return a satisfying assignment, or ``None`` if unsatisfiable.

    Variables absent from every clause are left out of the returned
    assignment (callers treat them as "don't care"); pass ``n_vars`` only
    to document intent -- it does not change the result.
    """
    # dedupe literals per clause, drop tautological clauses (p or not p)
    working = [list(dict.fromkeys(c)) for c in clauses]
    if any(not c for c in working):
        return None  # an (initially) empty clause is unsatisfiable outright
    working = [c for c in working if not any(-lit in c for lit in c)]
    assignment: Assignment = {}

    pure = _pure_literals(working)
    if pure:
        assignment.update(pure)
        simplified = _simplify(working, pure)
        if simplified is None:
            return None
        working = simplified

    # iterative DPLL with an explicit trail
    frames: List[Tuple[List[List[int]], Assignment, Optional[int]]] = [
        (working, dict(assignment), None)
    ]
    while frames:
        clauses_now, assign_now, forced = frames.pop()
        if forced is not None:
            step = {abs(forced): forced > 0}
            assign_now = dict(assign_now)
            assign_now.update(step)
            simplified = _simplify(clauses_now, step)
            if simplified is None:
                continue
            clauses_now = simplified
        clauses_now = _unit_propagate(list(clauses_now), assign_now)
        if clauses_now is None:
            continue
        if not clauses_now:
            return assign_now
        branch = _choose_literal(clauses_now)
        frames.append((clauses_now, assign_now, -branch))
        frames.append((clauses_now, assign_now, branch))
    return None


def is_satisfiable(clauses: Iterable[Clause]) -> bool:
    """Whether the clause set has a model."""
    return solve(clauses) is not None


def enumerate_models(
    clauses: Iterable[Clause], variables: Sequence[int]
) -> List[Assignment]:
    """All total models over ``variables`` (brute force; testing aid)."""
    base = [list(c) for c in clauses]
    models: List[Assignment] = []
    n = len(variables)
    for bits in range(1 << n):
        model = {
            var: bool(bits >> i & 1) for i, var in enumerate(variables)
        }
        if check_model(base, model):
            models.append(model)
    return models
