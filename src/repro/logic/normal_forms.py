"""CNF conversion for the formula AST, feeding the DPLL solver.

Two routes are provided:

* :func:`to_cnf_clauses` -- Tseitin-style structural encoding.  Each
  non-literal subformula receives a fresh selector variable; the result
  is equisatisfiable with the input and linear in its size.  This is the
  scalable route used when a :class:`~repro.logic.formula.Formula` must
  be handed to :mod:`repro.logic.sat`.

* :func:`to_dnf_terms` / :func:`to_cnf_clauses_distributive` -- textbook
  distributive expansions, exponential but exact (logically equivalent,
  same variable set), used by the minset machinery and the tests.

Clause representation matches :mod:`repro.logic.sat`: lists of signed
integers against a :class:`VariableMap` from formula variable names.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Implies,
    Not,
    Or,
    Var,
)

__all__ = [
    "VariableMap",
    "to_cnf_clauses",
    "to_dnf_terms",
    "to_cnf_clauses_distributive",
]

#: A DNF term: (positive variable names, negated variable names).
Term = Tuple[FrozenSet[Hashable], FrozenSet[Hashable]]


class VariableMap:
    """Bijection between formula variable names and DIMACS-style ints."""

    def __init__(self):
        self._by_name: Dict[Hashable, int] = {}
        self._by_index: List[Hashable] = []

    def index_of(self, name: Hashable) -> int:
        """The positive integer for ``name`` (allocated on first use)."""
        if name not in self._by_name:
            self._by_name[name] = len(self._by_index) + 1
            self._by_index.append(name)
        return self._by_name[name]

    def fresh(self) -> int:
        """A fresh auxiliary variable (no name)."""
        self._by_index.append(None)
        return len(self._by_index)

    def name_of(self, index: int) -> Hashable:
        return self._by_index[index - 1]

    @property
    def count(self) -> int:
        return len(self._by_index)


def to_cnf_clauses(
    formula: Formula, varmap: VariableMap
) -> List[List[int]]:
    """Equisatisfiable CNF clauses via Tseitin encoding.

    The returned clause set is satisfiable iff ``formula`` is; models
    restricted to named variables are models of ``formula``.
    """
    clauses: List[List[int]] = []
    root = _tseitin(formula.to_nnf(), varmap, clauses)
    clauses.append([root])
    return clauses


def _tseitin(
    formula: Formula, varmap: VariableMap, clauses: List[List[int]]
) -> int:
    """Return a literal equisatisfiably representing ``formula`` (NNF input)."""
    if isinstance(formula, Var):
        return varmap.index_of(formula.name)
    if isinstance(formula, Not):
        operand = formula.operand
        if not isinstance(operand, Var):
            raise ValueError("input must be in negation normal form")
        return -varmap.index_of(operand.name)
    if isinstance(formula, Const):
        aux = varmap.fresh()
        if formula.value:
            clauses.append([aux])
        else:
            clauses.append([-aux])
        return aux
    if isinstance(formula, And):
        lits = [_tseitin(op, varmap, clauses) for op in formula.operands]
        aux = varmap.fresh()
        for lit in lits:  # aux -> lit
            clauses.append([-aux, lit])
        return aux
    if isinstance(formula, Or):
        lits = [_tseitin(op, varmap, clauses) for op in formula.operands]
        aux = varmap.fresh()
        clauses.append([-aux] + lits)  # aux -> OR lits
        return aux
    if isinstance(formula, Implies):
        return _tseitin(formula.to_nnf(), varmap, clauses)
    raise TypeError(f"unknown formula node {formula!r}")


def to_dnf_terms(formula: Formula) -> List[Term]:
    """Distributive DNF expansion (exponential; exact equivalence).

    Contradictory terms (a variable both positive and negative) are
    dropped; the empty term list denotes FALSE and the list containing
    the empty term denotes TRUE.
    """
    nnf = formula.to_nnf()
    raw = _dnf(nnf)
    out = []
    for pos, neg in raw:
        if pos & neg:
            continue
        out.append((frozenset(pos), frozenset(neg)))
    return out


def _dnf(formula: Formula) -> List[Tuple[Set[Hashable], Set[Hashable]]]:
    if isinstance(formula, Var):
        return [({formula.name}, set())]
    if isinstance(formula, Not):
        return [(set(), {formula.operand.name})]
    if isinstance(formula, Const):
        return [(set(), set())] if formula.value else []
    if isinstance(formula, Or):
        out = []
        for op in formula.operands:
            out.extend(_dnf(op))
        return out
    if isinstance(formula, And):
        acc: List[Tuple[Set[Hashable], Set[Hashable]]] = [(set(), set())]
        for op in formula.operands:
            branch = _dnf(op)
            acc = [
                (p1 | p2, n1 | n2)
                for (p1, n1) in acc
                for (p2, n2) in branch
            ]
        return acc
    raise TypeError(f"formula not in NNF: {formula!r}")


def to_cnf_clauses_distributive(
    formula: Formula, varmap: VariableMap
) -> List[List[int]]:
    """Exact CNF by expanding the *negation's* DNF (De Morgan).

    Each DNF term of ``not formula`` becomes one clause of ``formula``.
    Exponential; used to cross-check the Tseitin route in tests.
    """
    clauses = []
    for pos, neg in to_dnf_terms(Not(formula)):
        clause = [-varmap.index_of(v) for v in sorted(pos, key=str)]
        clause += [varmap.index_of(v) for v in sorted(neg, key=str)]
        clauses.append(clause)
    return clauses
