"""Propositional-logic substrate (Section 5 of the paper).

Formula AST, normal forms, a from-scratch DPLL solver, minterms/minsets
(Definition 5.1), implication constraints ``X =>prop Y`` (Definition 5.2)
and the DNF-tautology reduction behind the coNP-completeness result
(Proposition 5.5).
"""

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
)
from repro.logic.normal_forms import (
    VariableMap,
    to_cnf_clauses,
    to_cnf_clauses_distributive,
    to_dnf_terms,
)
from repro.logic.sat import check_model, enumerate_models, is_satisfiable, solve
from repro.logic.minterms import (
    assignment_of_mask,
    equivalent,
    implies_by_minsets,
    minset,
    minterm,
    negminset,
)
from repro.logic.implication_constraint import (
    implies_prop,
    negminset_of_constraint,
    to_formula,
)
from repro.logic.tautology import (
    DnfTerm,
    dnf_evaluate,
    dnf_to_constraint_set,
    everything_constraint,
    is_tautology_bruteforce,
    is_tautology_via_differential,
    term_satisfied,
)

__all__ = [
    "FALSE",
    "TRUE",
    "And",
    "Const",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "Var",
    "conj",
    "disj",
    "VariableMap",
    "to_cnf_clauses",
    "to_cnf_clauses_distributive",
    "to_dnf_terms",
    "check_model",
    "enumerate_models",
    "is_satisfiable",
    "solve",
    "assignment_of_mask",
    "equivalent",
    "implies_by_minsets",
    "minset",
    "minterm",
    "negminset",
    "implies_prop",
    "negminset_of_constraint",
    "to_formula",
    "DnfTerm",
    "dnf_evaluate",
    "dnf_to_constraint_set",
    "everything_constraint",
    "is_tautology_bruteforce",
    "is_tautology_via_differential",
    "term_satisfied",
]
