"""Implication constraints ``X =>prop Y`` (Definition 5.2, Prop 5.3-5.4).

An implication constraint is the propositional formula::

    (AND of X)  =>  (OR over Y in Y of (AND of Y))

built over the same ``(X, Y)`` data as a differential constraint.
Proposition 5.3 states ``negminset(X =>prop Y) = L(X, Y)`` and
Proposition 5.4 transfers the implication problems; both directions are
implemented here and verified by the tests (and experiment E6) through
*independent* code paths:

* :func:`implies_prop` with ``method="minset"`` evaluates truth tables
  and checks the negminset containment -- no lattice code involved;
* ``method="sat"`` hands a Tseitin encoding of
  ``prop(C) and not prop(target)`` to the DPLL solver.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Union

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.logic.formula import Formula, Implies, Not, Var, conj, disj
from repro.logic.minterms import implies_by_minsets, negminset
from repro.logic.normal_forms import VariableMap, to_cnf_clauses
from repro.logic.sat import solve

__all__ = [
    "to_formula",
    "negminset_of_constraint",
    "implies_prop",
]


def to_formula(constraint: DifferentialConstraint) -> Formula:
    """The implication-constraint formula of ``X -> Y`` (Definition 5.2).

    Empty family: the consequent is FALSE (empty disjunction); a family
    member that is the empty set contributes TRUE (empty conjunction),
    making the whole formula valid -- matching the triviality of the
    differential constraint.
    """
    ground = constraint.ground
    antecedent = conj(
        Var(ground.elements[bit]) for bit in sb.iter_bits(constraint.lhs)
    )
    consequent = disj(
        conj(Var(ground.elements[bit]) for bit in sb.iter_bits(member))
        for member in constraint.family
    )
    return Implies(antecedent, consequent)


def negminset_of_constraint(constraint: DifferentialConstraint) -> Set[int]:
    """``negminset(X =>prop Y)`` by truth-table evaluation.

    Proposition 5.3 promises this equals ``L(X, Y)``; the test suite
    asserts the equality against the lattice module.
    """
    return negminset(to_formula(constraint), constraint.ground)


def implies_prop(
    constraints: Union[ConstraintSet, Iterable[DifferentialConstraint]],
    target: DifferentialConstraint,
    method: str = "minset",
) -> bool:
    """Propositional implication ``Cprop |= X =>prop Y`` (Prop 5.4).

    ``method="minset"`` uses the negminset-containment criterion (truth
    tables, exponential, lattice-free); ``method="sat"`` refutes with the
    DPLL solver over a Tseitin encoding of the formula ASTs.
    """
    cset = (
        constraints
        if isinstance(constraints, ConstraintSet)
        else ConstraintSet(target.ground, constraints)
    )
    if method == "minset":
        return implies_by_minsets(
            [to_formula(c) for c in cset], to_formula(target), target.ground
        )
    if method == "sat":
        varmap = VariableMap()
        # pin ground variables to indices 1..n first
        for label in target.ground.elements:
            varmap.index_of(label)
        clauses: List[List[int]] = []
        for c in cset:
            clauses.extend(to_cnf_clauses(to_formula(c), varmap))
        clauses.extend(to_cnf_clauses(Not(to_formula(target)), varmap))
        return solve(clauses, varmap.count) is None
    raise ValueError(f"unknown method {method!r}")
