"""Minterms, minsets and negminsets (Definition 5.1).

For a set ``S`` of propositional variables and ``X subseteq S`` the
*minterm* ``X-bar`` is the complete conjunction true exactly on the
assignment "the variables of ``X`` and nothing else".  Identifying
assignments over ``S`` with subsets of ``S`` (a variable is in the subset
iff true), the *minset* of a formula is simply its set of satisfying
assignments encoded as subset masks of a
:class:`~repro.core.ground.GroundSet`, and ``negminset(phi) =
minset(not phi)`` is the complement.

The module also implements the "well-known" propositional fact the paper
leans on right before Proposition 5.4::

    Phi |= phi    iff    negminset(phi) subseteq union of
                         negminset(phi') over phi' in Phi

whose resemblance to Theorem 3.5 is the bridge between the two worlds.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.logic.formula import And, Formula, Not, Var, conj

__all__ = [
    "assignment_of_mask",
    "minterm",
    "minset",
    "negminset",
    "equivalent",
    "implies_by_minsets",
]


def assignment_of_mask(ground: GroundSet, mask: int) -> dict:
    """The total assignment over ``ground`` encoded by ``mask``."""
    return {
        label: bool(mask >> bit & 1)
        for bit, label in enumerate(ground.elements)
    }


def minterm(ground: GroundSet, mask: int) -> Formula:
    """The minterm ``X-bar`` of the subset ``mask`` (Definition 5.1)."""
    literals: List[Formula] = []
    for bit, label in enumerate(ground.elements):
        v = Var(label)
        literals.append(v if mask >> bit & 1 else Not(v))
    return conj(literals)


def minset(formula: Formula, ground: GroundSet) -> Set[int]:
    """``minset(phi) = {X | X-bar |= phi}`` as a set of masks.

    Evaluates ``phi`` on all ``2^|S|`` assignments; variables of the
    formula must all belong to the ground set.
    """
    extra = formula.variables() - set(ground.elements)
    if extra:
        raise ValueError(f"formula uses variables outside S: {sorted(map(str, extra))}")
    out = set()
    for mask in ground.all_masks():
        if formula.evaluate(assignment_of_mask(ground, mask)):
            out.add(mask)
    return out


def negminset(formula: Formula, ground: GroundSet) -> Set[int]:
    """``negminset(phi) = minset(not phi)``."""
    return minset(Not(formula), ground)


def equivalent(a: Formula, b: Formula, ground: GroundSet) -> bool:
    """Logical equivalence over ``ground`` (equal minsets)."""
    return minset(a, ground) == minset(b, ground)


def implies_by_minsets(
    premises: Iterable[Formula], conclusion: Formula, ground: GroundSet
) -> bool:
    """``Phi |= phi`` decided by the negminset-containment criterion."""
    covered: Set[int] = set()
    for premise in premises:
        covered |= negminset(premise, ground)
    return negminset(conclusion, ground) <= covered
