"""DNF tautology and the Proposition 5.5 reduction.

Proposition 5.5 proves coNP-hardness of differential-constraint
implication by reducing DNF tautology: a DNF ``phi = OR_psi (AND P_psi
and AND not Q_psi)`` is a tautology iff ``C_phi |= (/) -> {}`` where::

    C_phi = { P_psi -> {{q} | q in Q_psi}  |  psi a term of phi }

(``not phi`` is the conjunction of the corresponding implication
constraints, and it is a contradiction iff the constraint set forces
*every* density to vanish, i.e. implies the everything-constraint
``(/) -> {}`` whose lattice decomposition is all of ``2^S``.)

The module implements DNF formulas as ``(P_mask, Q_mask)`` term lists
over a :class:`~repro.core.ground.GroundSet` of propositional variables,
a brute-force tautology oracle, and the reduction in both directions.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import decide

__all__ = [
    "DnfTerm",
    "term_satisfied",
    "dnf_evaluate",
    "is_tautology_bruteforce",
    "dnf_to_constraint_set",
    "everything_constraint",
    "is_tautology_via_differential",
]

#: One DNF term ``AND P and AND not Q`` as ``(P_mask, Q_mask)``.
DnfTerm = Tuple[int, int]


def term_satisfied(term: DnfTerm, mask: int) -> bool:
    """Whether assignment ``mask`` satisfies the term."""
    pos, neg = term
    return sb.is_subset(pos, mask) and not (neg & mask)


def dnf_evaluate(terms: Sequence[DnfTerm], mask: int) -> bool:
    """Truth of the DNF under assignment ``mask``."""
    return any(term_satisfied(t, mask) for t in terms)


def is_tautology_bruteforce(terms: Sequence[DnfTerm], ground: GroundSet) -> bool:
    """Tautology by exhaustive evaluation (the oracle side of E5)."""
    return all(dnf_evaluate(terms, mask) for mask in ground.all_masks())


def dnf_to_constraint_set(
    terms: Iterable[DnfTerm], ground: GroundSet
) -> ConstraintSet:
    """``C_phi``: one constraint ``P_psi -> {{q} | q in Q_psi}`` per term."""
    constraints: List[DifferentialConstraint] = []
    for pos, neg in terms:
        family = SetFamily.singletons_of(ground, neg)
        constraints.append(DifferentialConstraint(ground, pos, family))
    return ConstraintSet(ground, constraints)


def everything_constraint(ground: GroundSet) -> DifferentialConstraint:
    """``(/) -> {}`` -- the constraint with ``L = 2^S`` (only the zero
    function satisfies it)."""
    return DifferentialConstraint(ground, 0, SetFamily(ground))


def is_tautology_via_differential(
    terms: Iterable[DnfTerm], ground: GroundSet, method: str = "auto"
) -> bool:
    """Decide DNF tautology through the Prop 5.5 reduction.

    ``phi`` is a tautology iff ``C_phi |= (/) -> {}``; any implication
    decider can sit underneath.
    """
    cset = dnf_to_constraint_set(terms, ground)
    return decide(cset, everything_constraint(ground), method=method)
