"""Theorem 8.1 -- the grand equivalence -- as an executable experiment."""

from repro.equivalence.theorem81 import (
    STATEMENT_NAMES,
    Theorem81Report,
    evaluate_theorem81,
)

__all__ = ["STATEMENT_NAMES", "Theorem81Report", "evaluate_theorem81"]
