"""Theorem 8.1 as an executable object.

The paper's closing theorem asserts the equivalence of nine statements
about a constraint set ``C`` and a target ``X -> Y``.  This module
evaluates **all nine through independent code paths** and reports the
agreement vector -- the reproduction's experiment E6:

=====================  ==================================================
``semantic_F``         counterexample scan over the principal-ideal
                       functions ``f^U`` (density-semantics satisfaction)
``semantic_positive``  the same scan with *differential*-semantics
                       satisfaction (valid on ``positive(S)``, where the
                       two semantics coincide)
``semantic_support``   scan over one-basket support functions (sparse
                       density path through basket machinery)
``semantic_simpson``   scan over two-tuple probabilistic relations with
                       pairwise-density satisfaction
``prop``               minset containment over the Definition 5.2
                       formulas (truth tables; no lattice code)
``disj``               scan over one-basket lists with *cover*-based
                       disjunctive satisfaction
``boolean``            scan over two-tuple relations with pair-based
                       boolean-dependency satisfaction
``derivable``          the constructive Theorem 4.8 engine, with the
                       resulting Figure-1 proof independently re-checked
``lattice``            the Theorem 3.5 containment ``L(C) >= L(X,Y)``
=====================  ==================================================

One documented edge: the two *relational* statements have no "zero"
model.  Relations are nonempty, so every reflexive pair ``(t, t)``
violates an empty-family boolean dependency, and ``d_simpson(S) =
sum p^2 > 0`` keeps every Simpson function from satisfying an
empty-family constraint.  ``F(S)`` contains the zero function and
``support(S)`` the empty basket list, so when ``C`` contains an
empty-family constraint the ``boolean`` and ``semantic_simpson``
statements hold vacuously while the other seven can fail -- consistent
with Corollary 7.4 (the two relational statements stay equivalent to each
other), but a genuine boundary of the printed Theorem 8.1.  The report
flags the situation (``relational_vacuous``) and
:meth:`Theorem81Report.consistent_with_paper` accepts exactly that
divergence pattern; EXPERIMENTS.md discusses the finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.constraint import DENSITY, DIFFERENTIAL, DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.counterexample import sparse_principal_ideal_function
from repro.core.derivation import derive
from repro.core.implication import implies_lattice
from repro.core.proofs import check_proof
from repro.errors import NotImpliedError
from repro.fis.baskets import BasketDatabase
from repro.fis.disjunctive import (
    DisjunctiveConstraint,
    semantic_implies_over_single_basket_lists,
)
from repro.logic.implication_constraint import implies_prop
from repro.relational.boolean_dependency import (
    BooleanDependency,
    semantic_implies_over_two_tuple_relations,
)
from repro.relational.probability import Distribution
from repro.relational.relation import two_tuple_relation
from repro.relational.simpson import simpson_satisfies

__all__ = ["Theorem81Report", "evaluate_theorem81", "STATEMENT_NAMES"]

STATEMENT_NAMES: Tuple[str, ...] = (
    "semantic_F",
    "semantic_positive",
    "semantic_support",
    "semantic_simpson",
    "prop",
    "disj",
    "boolean",
    "derivable",
    "lattice",
)


#: The two statements whose model classes contain no "zero" object.
RELATIONAL_STATEMENTS = ("semantic_simpson", "boolean")


@dataclass(frozen=True)
class Theorem81Report:
    """Agreement vector for one ``(C, X -> Y)`` instance."""

    statements: Dict[str, bool]
    relational_vacuous: bool

    def value(self) -> bool:
        """The common truth value (meaningful when all statements agree)."""
        return self.statements["lattice"]

    def all_agree(self) -> bool:
        """Strict nine-way agreement."""
        values = set(self.statements.values())
        return len(values) == 1

    def consistent_with_paper(self) -> bool:
        """Agreement modulo the documented relational vacuity edge.

        Either all nine statements agree, or ``C`` contains an
        empty-family constraint (making it unsatisfiable over nonempty
        relations and over ``simpson(S)``), the ``boolean`` and
        ``semantic_simpson`` statements are vacuously true, and the
        remaining seven agree.
        """
        if self.all_agree():
            return True
        others = {
            name: val
            for name, val in self.statements.items()
            if name not in RELATIONAL_STATEMENTS
        }
        return (
            self.relational_vacuous
            and all(self.statements[name] for name in RELATIONAL_STATEMENTS)
            and len(set(others.values())) == 1
        )

    def disagreeing(self) -> Dict[str, bool]:
        """Statements differing from the lattice decision (diagnostics)."""
        reference = self.statements["lattice"]
        return {
            name: val
            for name, val in self.statements.items()
            if val != reference
        }


def _semantic_over_ideals(
    cset: ConstraintSet, target: DifferentialConstraint, semantics: str
) -> bool:
    ground = target.ground
    for u in ground.all_masks():
        f = sparse_principal_ideal_function(ground, u)
        if semantics == DIFFERENTIAL:
            f = f.to_dense()
        sat_c = all(c.satisfied_by(f, semantics=semantics) for c in cset)
        if sat_c and not target.satisfied_by(f, semantics=semantics):
            return False
    return True


def _semantic_over_support(
    cset: ConstraintSet, target: DifferentialConstraint
) -> bool:
    ground = target.ground
    for u in ground.all_masks():
        f = BasketDatabase(ground, [u]).support_function()
        if cset.satisfied_by(f) and not target.satisfied_by(f):
            return False
    return True


def _semantic_over_simpson(
    cset: ConstraintSet, target: DifferentialConstraint
) -> bool:
    ground = target.ground
    for u in ground.all_masks():
        dist = Distribution.uniform(two_tuple_relation(ground, u))
        sat_c = all(simpson_satisfies(dist, c) for c in cset)
        if sat_c and not simpson_satisfies(dist, target):
            return False
    return True


def _derivable(cset: ConstraintSet, target: DifferentialConstraint) -> bool:
    try:
        proof = derive(cset, target, allow_derived=False, check=False)
    except NotImpliedError:
        return False
    check_proof(proof, cset.constraints, allow_derived=False)
    return proof.conclusion == target


def evaluate_theorem81(
    cset: ConstraintSet, target: DifferentialConstraint
) -> Theorem81Report:
    """Evaluate all nine Theorem 8.1 statements on ``(C, target)``."""
    cset.ground.check_same(target.ground)
    statements: Dict[str, bool] = {
        "semantic_F": _semantic_over_ideals(cset, target, DENSITY),
        "semantic_positive": _semantic_over_ideals(cset, target, DIFFERENTIAL),
        "semantic_support": _semantic_over_support(cset, target),
        "semantic_simpson": _semantic_over_simpson(cset, target),
        "prop": implies_prop(cset, target, method="minset"),
        "disj": semantic_implies_over_single_basket_lists(
            [DisjunctiveConstraint.from_differential(c) for c in cset],
            DisjunctiveConstraint.from_differential(target),
        ),
        "boolean": semantic_implies_over_two_tuple_relations(
            [BooleanDependency.from_differential(c) for c in cset],
            BooleanDependency.from_differential(target),
        ),
        "derivable": _derivable(cset, target),
        "lattice": implies_lattice(cset, target),
    }
    relational_vacuous = any(len(c.family) == 0 for c in cset)
    return Theorem81Report(statements, relational_vacuous)
