"""Bitmask algebra for subsets of a finite ground set.

Subsets of the ground set ``S`` are represented internally as Python
integers used as bitmasks: bit ``i`` is set exactly when the ``i``-th
element of the ground set belongs to the subset.  All functions in this
module operate on raw masks and are independent of any particular
:class:`~repro.core.ground.GroundSet`; the ground set object provides the
label <-> bit codec on top of these primitives.

The module implements the handful of combinatorial loops the whole paper
rests on: enumeration of subsets/supersets, interval enumeration
``[X, Z] = {U | X subseteq U subseteq Z}`` (Section 2.2 of the paper), and
the alternating Moebius sign ``(-1)^|Z|`` from Definition 2.1.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "popcount",
    "is_subset",
    "is_proper_subset",
    "intersects",
    "mobius_sign",
    "iter_bits",
    "iter_singletons",
    "iter_subsets",
    "iter_proper_subsets",
    "iter_supersets",
    "iter_interval",
    "lowest_bit",
    "without_lowest_bit",
    "mask_of_bits",
]


def popcount(mask: int) -> int:
    """Return ``|mask|``, the number of elements of the subset."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """Return ``True`` iff ``a`` is a (not necessarily proper) subset of ``b``."""
    return a & ~b == 0


def is_proper_subset(a: int, b: int) -> bool:
    """Return ``True`` iff ``a`` is a proper subset of ``b``."""
    return a != b and a & ~b == 0


def intersects(a: int, b: int) -> bool:
    """Return ``True`` iff the subsets ``a`` and ``b`` share an element."""
    return a & b != 0


def mobius_sign(mask: int) -> int:
    """Return ``(-1)^|mask|``, the sign used in Definition 2.1 and eq. (4)."""
    return -1 if mask.bit_count() & 1 else 1


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the bit *positions* of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_singletons(mask: int) -> Iterator[int]:
    """Yield the singleton sub-masks (one bit each) of ``mask``.

    This realizes the paper's overline notation ``U-bar = {{u} | u in U}``
    at the mask level.
    """
    while mask:
        low = mask & -mask
        yield low
        mask ^= low


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask``, including ``0`` and ``mask`` itself.

    Uses the classic descending ``sub = (sub - 1) & mask`` walk; subsets are
    produced in decreasing numeric order starting from ``mask``.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_proper_subsets(mask: int) -> Iterator[int]:
    """Yield every proper subset of ``mask`` (``mask`` itself is skipped)."""
    if mask == 0:
        return
    sub = (mask - 1) & mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_supersets(mask: int, universe: int) -> Iterator[int]:
    """Yield every ``U`` with ``mask subseteq U subseteq universe``.

    Equivalent to :func:`iter_interval` with the interval ``[mask, universe]``
    but kept as the common-case name used throughout the lattice code.
    """
    if mask & ~universe:
        return
    free = universe & ~mask
    sub = free
    while True:
        yield mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & free


def iter_interval(lo: int, hi: int) -> Iterator[int]:
    """Yield the interval ``[lo, hi] = {U | lo subseteq U subseteq hi}``.

    The interval is empty when ``lo`` is not a subset of ``hi`` (this is the
    situation in Definition 2.6 when the lower bound meets the complement of
    a witness set); in that case nothing is yielded.
    """
    yield from iter_supersets(lo, hi)


def lowest_bit(mask: int) -> int:
    """Return the lowest set bit of ``mask`` as a singleton mask.

    Raises :class:`ValueError` on the empty mask, which has no elements.
    """
    if mask == 0:
        raise ValueError("the empty mask has no lowest bit")
    return mask & -mask


def without_lowest_bit(mask: int) -> int:
    """Return ``mask`` with its lowest set bit removed."""
    if mask == 0:
        raise ValueError("the empty mask has no lowest bit")
    return mask & (mask - 1)


def mask_of_bits(bits) -> int:
    """Build a mask from an iterable of bit positions."""
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask
