"""Lattice decompositions ``L(X, Y)`` (Definition 2.6, Propositions 2.8-2.9).

Definition 2.6 builds ``L(X, Y)`` as the union of intervals
``[X, S - W]`` over the witness sets ``W in W(Y)`` (the printed paper
drops the complement bar on ``W``; Example 2.7 -- where
``L(A, {B, CD}) = {A, AC, AD}`` over ``S = ABCD`` -- fixes the intended
reading).  The proof of Proposition 2.9 supplies the closed form used as
the primary implementation here::

    U in L(X, Y)   iff   X subseteq U subseteq S  and  no member of Y is
                         a subset of U

Both forms are implemented; the test suite checks them equal on random
instances.  The closed form gives an ``O(|Y|)`` membership test, which is
what makes the Theorem 3.5 implication decider practical: containment
``L(X,Y) subseteq L(C)`` is checked by enumerating ``L(X,Y)`` and testing
each element against every constraint of ``C`` in constant-ish time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.core import subsets as sb
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.witness import iter_witnesses

__all__ = [
    "in_lattice",
    "iter_lattice",
    "lattice",
    "lattice_size",
    "iter_lattice_by_witnesses",
    "lattice_bitset",
    "proposition_2_8_split",
]


def in_lattice(lhs_mask: int, family: SetFamily, u_mask: int) -> bool:
    """Closed-form membership test for ``U in L(X, Y)``."""
    return sb.is_subset(lhs_mask, u_mask) and not family.contains_subset_of(u_mask)


def iter_lattice(lhs_mask: int, family: SetFamily, ground: GroundSet) -> Iterator[int]:
    """Yield ``L(X, Y)`` via the closed form (supersets of ``X`` containing
    no member of ``Y``)."""
    for u in ground.iter_supersets(lhs_mask):
        if not family.contains_subset_of(u):
            yield u


def lattice(lhs_mask: int, family: SetFamily, ground: GroundSet) -> List[int]:
    """``L(X, Y)`` as a sorted list of masks."""
    return sorted(iter_lattice(lhs_mask, family, ground))


def lattice_size(lhs_mask: int, family: SetFamily, ground: GroundSet) -> int:
    """``|L(X, Y)|``."""
    return sum(1 for _ in iter_lattice(lhs_mask, family, ground))


def iter_lattice_by_witnesses(
    lhs_mask: int, family: SetFamily, ground: GroundSet
) -> Iterator[int]:
    """Yield ``L(X, Y)`` literally as Definition 2.6's union of intervals.

    ``L(X, Y) = union over W in W(Y) of [X, S - W]``; intervals overlap
    (Example 2.7 highlights this), so results are deduplicated.  Kept as
    an independent code path for the tests; the closed form above is the
    efficient route.
    """
    seen: Set[int] = set()
    for w in iter_witnesses(family):
        hi = ground.complement(w)
        for u in sb.iter_interval(lhs_mask, hi):
            if u not in seen:
                seen.add(u)
                yield u


def lattice_bitset(
    lhs_mask: int, family: SetFamily, ground: GroundSet
) -> np.ndarray:
    """``L(X, Y)`` as a boolean numpy table over all ``2^|S|`` masks.

    Computed by the batched engine: a vectorized superset indicator
    minus the family's upward-closed *blocked* table, ``O(n * 2^n)``
    bit operations instead of ``2^n`` interpreted membership tests.
    """
    from repro.engine import batch

    return batch.lattice_table(ground.size, lhs_mask, family.members)


def proposition_2_8_split(
    lhs_mask: int, family: SetFamily, z_mask: int, ground: GroundSet
) -> Tuple[List[int], List[int], List[int]]:
    """Return the three lattices of Proposition 2.8.

    ``L(X, Y) = L(X, Y union {Z}) union L(X union Z, Y)`` -- the identity
    behind the soundness of the Addition, Augmentation and Elimination
    rules.  Returns ``(L(X,Y), L(X, Y+{Z}), L(X+Z, Y))`` for the caller
    (typically a test or a bench) to verify or exploit.
    """
    left = lattice(lhs_mask, family, ground)
    with_z = lattice(lhs_mask, family.add(z_mask), ground)
    lifted = lattice(lhs_mask | z_mask, family, ground)
    return left, with_z, lifted
