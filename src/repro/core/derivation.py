"""Constructive completeness: build explicit derivations (Theorem 4.8).

Theorem 4.8 proves that whenever ``C |= X -> Y`` there is a derivation
``C |- X -> Y`` in the Figure-1 system.  The proof is constructive, and
this module turns it into an algorithm.  :func:`derive` produces a
checkable :class:`~repro.core.proofs.Proof` in four stages mirroring
Propositions 4.6/4.7:

1. **Atoms from C** -- every ``U in L(X, Y)`` lies in ``L(c')`` for some
   ``c' in C`` (that is what Theorem 3.5's containment gives us).  Derive
   ``atom(U)`` from ``c'``: project each family member onto the witness
   ``W' = (union Y') - U``, separate the projected members into
   singletons, augment the left-hand side up to ``U``, and add the
   remaining complement singletons (Prop 4.7, first direction).

2. **Witness constraints from atoms** -- for each witness ``W in W(Y)``
   derive ``X -> W-tilde`` by the elimination cascade of Prop 4.7's
   second direction: starting from the atoms ``atom(U)`` for
   ``U in [X, S - W]``, repeatedly eliminate one free element ``v`` from
   the right-hand sides, halving the table each round until only
   ``X -> W-tilde`` remains.  (If ``X`` meets ``W`` the constraint is
   trivial and Triviality closes it immediately.)

3. **Reassembly** -- combine the witness constraints into ``X -> Y`` by
   the structural induction of Prop 4.6: split any member with two or
   more elements into a singleton and the rest, recurse, and merge the
   two sub-derivations with the Union rule.  (Sub-families are memoized;
   the recursion's leaves are all-singleton families, whose unique
   witness is their union -- a witness of the original ``Y``.)

4. Optionally :meth:`~repro.core.proofs.Proof.expand` the Figure-2 macro
   steps (projection, separation, union) into Figure-1 primitives and
   re-check the whole proof with the independent checker.

The constructed derivations can be exponential in ``|S|`` -- unavoidable
for a coNP-complete problem -- but are exact, machine-checked witnesses
of the completeness theorem on every instance the tests and benches throw
at them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import find_uncovered_engine, find_uncovered_sat
from repro.core.proofs import (
    Proof,
    addition,
    augmentation,
    axiom,
    check_proof,
    elimination,
    projection,
    separation,
    triviality,
    union_rule,
)
from repro.core.witness import iter_witnesses
from repro.errors import NotImpliedError

__all__ = ["derive", "derivation_size"]

Constraints = Union[ConstraintSet, Iterable[DifferentialConstraint]]


def derive(
    constraints: Constraints,
    target: DifferentialConstraint,
    allow_derived: bool = True,
    check: bool = True,
) -> Proof:
    """Derive ``target`` from ``constraints`` in the Figure-1 system.

    Parameters
    ----------
    allow_derived:
        When ``True`` (default) the returned proof may use Figure-2 macro
        steps; when ``False`` it is fully expanded to Figure-1 primitives.
    check:
        Re-validate the final proof with the independent checker.

    Raises
    ------
    NotImpliedError
        If ``constraints`` do not imply ``target`` (with the uncovered
        lattice element as the certificate).
    """
    cset = (
        constraints
        if isinstance(constraints, ConstraintSet)
        else ConstraintSet(target.ground, constraints)
    )
    cset.ground.check_same(target.ground)
    ground = target.ground

    if target.is_trivial:
        proof = triviality(target)
    elif target in cset:
        proof = axiom(target)
    else:
        if ground.is_dense_capable():
            uncovered = find_uncovered_engine(cset, target)
        else:
            uncovered = find_uncovered_sat(cset, target)
        if uncovered is not None:
            raise NotImpliedError(
                f"{target!r} is not implied: "
                f"{ground.format_mask(uncovered)} in L(target) - L(C)",
                uncovered,
            )
        proof = _subsumption_fast_path(cset, target)
        if proof is None:
            proof = _derive_nontrivial(cset, target)

    if not allow_derived:
        proof = proof.expand()
    if check:
        check_proof(proof, cset.constraints, allow_derived=allow_derived)
    return proof


def derivation_size(constraints: Constraints, target: DifferentialConstraint) -> int:
    """Number of primitive steps in the expanded derivation of ``target``."""
    return derive(constraints, target, allow_derived=False, check=False).size()


# ----------------------------------------------------------------------
# fast path: syntactic subsumption by a single premise
# ----------------------------------------------------------------------
def _subsumption_fast_path(
    cset: ConstraintSet, target: DifferentialConstraint
) -> "Proof | None":
    """A short derivation when some ``c' in C`` subsumes the target.

    If ``X' subseteq X`` and ``Y' subseteq Y`` then ``X -> Y`` follows
    from ``X' -> Y'`` by one Augmentation and a few Additions -- a
    constant-factor proof instead of the exponential Theorem 4.8
    construction.  Returns ``None`` when no premise applies.
    """
    target_members = set(target.family.members)
    for c in cset:
        if not sb.is_subset(c.lhs, target.lhs):
            continue
        if not set(c.family.members) <= target_members:
            continue
        proof = axiom(c)
        if c.lhs != target.lhs:
            proof = augmentation(proof, target.lhs)
        for member in target.family.members:
            if member not in set(proof.conclusion.family.members):
                proof = addition(proof, member)
        return proof
    return None


# ----------------------------------------------------------------------
# stage 1: atom(U) from a covering constraint of C (Prop 4.7, direction 1)
# ----------------------------------------------------------------------
def _derive_atom_from(source: Proof, u_mask: int) -> Proof:
    """Derive ``atom(U)`` from a proof of a constraint whose lattice
    decomposition contains ``U``."""
    c = source.conclusion
    ground = c.ground
    witness = c.family.union_support() & ~u_mask

    proof = source
    # project every member Y onto Y intersect W' (nonempty: U covers no member)
    for member in c.family.members:
        projected = member & witness
        if projected != member:
            proof = projection(proof, member, projected)
    # separate multi-element members into singletons
    while True:
        fat = next(
            (m for m in proof.conclusion.family.members if sb.popcount(m) > 1),
            None,
        )
        if fat is None:
            break
        first = sb.lowest_bit(fat)
        proof = separation(proof, fat, first, fat & ~first)
    # augment the left-hand side up to U
    if proof.conclusion.lhs != u_mask:
        proof = augmentation(proof, u_mask)
    # add the remaining complement singletons
    rest = ground.universe_mask & ~u_mask & ~witness
    for bit in sb.iter_singletons(rest):
        proof = addition(proof, bit)
    return proof


# ----------------------------------------------------------------------
# stage 2: X -> W-tilde by the elimination cascade (Prop 4.7, direction 2)
# ----------------------------------------------------------------------
def _witness_constraint_proof(
    ground: GroundSet, lhs: int, witness: int, atom_proofs: Dict[int, Proof]
) -> Proof:
    """Derive ``lhs -> W-tilde`` from the atoms of ``[lhs, S - W]``."""
    family = SetFamily.singletons_of(ground, witness)
    if lhs & witness:
        return triviality(DifferentialConstraint(ground, lhs, family))

    free = ground.universe_mask & ~(lhs | witness)
    table: Dict[int, Proof] = {
        t: atom_proofs[lhs | t] for t in sb.iter_subsets(free)
    }
    remaining = free
    for bit in sb.iter_singletons(free):
        remaining &= ~bit
        table = {
            t: elimination(table[t], table[t | bit], bit)
            for t in sb.iter_subsets(remaining)
        }
    return table[0]


# ----------------------------------------------------------------------
# stage 3: reassemble X -> Y with the Union rule (Prop 4.6)
# ----------------------------------------------------------------------
def _assemble(
    ground: GroundSet,
    lhs: int,
    family: SetFamily,
    witness_proofs: Dict[int, Proof],
    memo: Dict[SetFamily, Proof],
) -> Proof:
    if family in memo:
        return memo[family]

    if family.is_trivial_for(lhs):
        proof = triviality(DifferentialConstraint(ground, lhs, family))
    else:
        fat = next((m for m in family.members if sb.popcount(m) > 1), None)
        if fat is None:
            # all singletons (or empty): the unique witness is the union
            proof = witness_proofs[family.union_support()]
        else:
            head = sb.lowest_bit(fat)
            tail = fat & ~head
            base = family.remove(fat)
            left = _assemble(ground, lhs, base.add(head), witness_proofs, memo)
            right = _assemble(ground, lhs, base.add(tail), witness_proofs, memo)
            proof = union_rule(left, right, head, tail, base)

    memo[family] = proof
    return proof


def _derive_nontrivial(
    cset: ConstraintSet, target: DifferentialConstraint
) -> Proof:
    ground = target.ground
    axiom_proofs = {c: axiom(c) for c in cset}

    atom_proofs: Dict[int, Proof] = {}
    for u in target.iter_lattice():
        covering = next(c for c in cset if c.lattice_contains(u))
        atom_proofs[u] = _derive_atom_from(axiom_proofs[covering], u)

    witness_proofs: Dict[int, Proof] = {}
    for w in iter_witnesses(target.family):
        witness_proofs[w] = _witness_constraint_proof(
            ground, target.lhs, w, atom_proofs
        )

    return _assemble(ground, target.lhs, target.family, witness_proofs, {})
