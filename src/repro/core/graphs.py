"""Graph views of the paper's objects (networkx integration).

Three converters for exploration, visualization and downstream graph
algorithms:

* :func:`lattice_hasse_graph` -- the lattice decomposition ``L(X, Y)``
  as the Hasse diagram of its induced subset order (Section 2.2's
  union-of-intervals is generally *not* a sublattice; the Hasse view
  makes its shape inspectable);
* :func:`proof_graph` -- a derivation DAG with rule/conclusion node
  attributes (premise edges point premise -> consequence, so topological
  order = a valid reading order of the proof);
* :func:`implication_graph` -- the pairwise implication preorder between
  individual constraints (``c -> c'`` when ``{c} |= c'``), whose
  condensation exposes equivalence classes of constraints.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import implies_lattice
from repro.core.lattice import iter_lattice
from repro.core.proofs import Proof

__all__ = [
    "lattice_hasse_graph",
    "proof_graph",
    "implication_graph",
]


def lattice_hasse_graph(
    lhs_mask: int, family: SetFamily, ground: GroundSet
) -> "nx.DiGraph":
    """The Hasse diagram of ``L(X, Y)`` under set inclusion.

    Nodes are the member masks (with a ``label`` attribute in the paper's
    shorthand); edges are covering pairs *within the decomposition*:
    ``u -> v`` when ``u`` is a proper subset of ``v`` and no member of
    ``L(X, Y)`` sits strictly between.
    """
    members = sorted(iter_lattice(lhs_mask, family, ground))
    member_set = set(members)
    graph = nx.DiGraph()
    for u in members:
        graph.add_node(u, label=ground.format_mask(u), size=sb.popcount(u))
    for u in members:
        for v in members:
            if u == v or not sb.is_proper_subset(u, v):
                continue
            covered = any(
                w != u and w != v
                and sb.is_proper_subset(u, w)
                and sb.is_proper_subset(w, v)
                for w in member_set
            )
            if not covered:
                graph.add_edge(u, v)
    return graph


def proof_graph(proof: Proof) -> "nx.DiGraph":
    """The derivation DAG of ``proof``.

    Node keys are step numbers in postorder (matching
    :meth:`Proof.format`); attributes carry the rule name and the
    conclusion's repr.  Edges run premise -> consequence.
    """
    graph = nx.DiGraph()
    numbers = {}
    for node in proof.iter_nodes():
        numbers[id(node)] = len(numbers) + 1
        graph.add_node(
            numbers[id(node)],
            rule=node.rule,
            conclusion=repr(node.conclusion),
        )
    for node in proof.iter_nodes():
        for premise in node.premises:
            graph.add_edge(numbers[id(premise)], numbers[id(node)])
    return graph


def implication_graph(
    constraints: Sequence[DifferentialConstraint],
) -> "nx.DiGraph":
    """The single-premise implication preorder over ``constraints``.

    ``c -> c'`` (for distinct list positions) when ``{c} |= c'``.  Nodes
    are list indices with a ``constraint`` attribute; strongly connected
    components of the result are classes of pairwise-equivalent
    constraints (equal lattice decompositions).
    """
    graph = nx.DiGraph()
    for i, c in enumerate(constraints):
        graph.add_node(i, constraint=repr(c))
    for i, c in enumerate(constraints):
        for j, other in enumerate(constraints):
            if i == j:
                continue
            if implies_lattice([c], other):
                graph.add_edge(i, j)
    return graph
