"""The finite ground set ``S`` and its label <-> bitmask codec.

Throughout the paper every object -- set functions ``f : 2^S -> R``,
differential constraints ``X -> Y``, basket databases, relation schemas --
lives over one finite ground set ``S``.  :class:`GroundSet` fixes an order
on the elements of ``S`` and translates between user-facing labels
(arbitrary hashable values, typically one-character strings such as
``"A"``) and the internal integer bitmasks manipulated by
:mod:`repro.core.subsets`.

The paper writes subsets in the compressed form ``A1A2...An`` for
``{A1, ..., An}`` (Section 2); :meth:`GroundSet.parse` accepts the same
shorthand whenever every label is a one-character string, which keeps
tests and examples visually close to the paper's worked examples.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple

from repro.errors import GroundSetMismatchError, UnknownElementError
from repro.core import subsets as sb

__all__ = ["GroundSet"]

#: Largest ground-set size for which dense ``2^n`` tables are constructed.
MAX_DENSE_SIZE = 22


class GroundSet:
    """An ordered finite ground set ``S``.

    Parameters
    ----------
    elements:
        The elements of ``S`` in the order that fixes their bit positions.
        Elements must be hashable and pairwise distinct.

    Examples
    --------
    >>> S = GroundSet("ABCD")
    >>> S.mask({"A", "C"})
    5
    >>> sorted(S.subset(5))
    ['A', 'C']
    >>> S.format_mask(5)
    'AC'
    """

    __slots__ = ("_elements", "_index", "_universe")

    def __init__(self, elements: Iterable[Hashable]):
        elems: Tuple[Hashable, ...] = tuple(elements)
        index = {label: bit for bit, label in enumerate(elems)}
        if len(index) != len(elems):
            raise ValueError("ground set elements must be pairwise distinct")
        self._elements = elems
        self._index = index
        self._universe = (1 << len(elems)) - 1

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def elements(self) -> Tuple[Hashable, ...]:
        """The elements of ``S`` in bit order."""
        return self._elements

    @property
    def universe_mask(self) -> int:
        """The mask of ``S`` itself (all bits set)."""
        return self._universe

    @property
    def size(self) -> int:
        """``|S|``."""
        return len(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._elements)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GroundSet) and self._elements == other._elements

    def __hash__(self) -> int:
        return hash(self._elements)

    def __repr__(self) -> str:
        return f"GroundSet({list(self._elements)!r})"

    # ------------------------------------------------------------------
    # label <-> mask codec
    # ------------------------------------------------------------------
    def bit_of(self, label: Hashable) -> int:
        """Return the bit position of ``label``."""
        try:
            return self._index[label]
        except KeyError:
            raise UnknownElementError(label) from None

    def singleton_mask(self, label: Hashable) -> int:
        """Return the one-bit mask ``{label}``."""
        return 1 << self.bit_of(label)

    def mask(self, labels: Iterable[Hashable]) -> int:
        """Return the mask of the subset containing exactly ``labels``."""
        mask = 0
        for label in labels:
            mask |= 1 << self.bit_of(label)
        return mask

    def parse(self, text) -> int:
        """Parse a subset written in the paper's shorthand.

        Accepts an iterable of labels, or -- when every element of the
        ground set is a one-character string -- a plain string such as
        ``"ACD"`` denoting ``{A, C, D}``.  The empty set may be written
        ``""``, ``"0"`` or the unicode empty-set sign.
        """
        if isinstance(text, int):
            raise TypeError("parse() expects labels, not a raw mask")
        if isinstance(text, str):
            stripped = text.strip()
            if stripped in ("", "0", "∅"):
                return 0
            if all(ch in self._index for ch in stripped):
                return self.mask(stripped)
            if stripped in self._index:
                return self.singleton_mask(stripped)
            raise UnknownElementError(text)
        return self.mask(text)

    def subset(self, mask: int) -> FrozenSet[Hashable]:
        """Return the subset of labels encoded by ``mask``."""
        self._check_mask(mask)
        return frozenset(self._elements[bit] for bit in sb.iter_bits(mask))

    def complement(self, mask: int) -> int:
        """Return ``S - mask``."""
        self._check_mask(mask)
        return self._universe & ~mask

    def format_mask(self, mask: int) -> str:
        """Render ``mask`` in the paper's shorthand (``'AC'``, ``'(/)'``)."""
        self._check_mask(mask)
        if mask == 0:
            return "(/)"
        return "".join(str(self._elements[bit]) for bit in sb.iter_bits(mask))

    def format_family(self, masks: Sequence[int]) -> str:
        """Render a set of subsets, e.g. ``'{B, CD}'``."""
        inner = ", ".join(self.format_mask(m) for m in masks)
        return "{" + inner + "}"

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def all_masks(self) -> range:
        """Iterate over all ``2^|S|`` subset masks in numeric order."""
        return range(self._universe + 1)

    def iter_supersets(self, mask: int) -> Iterator[int]:
        """Iterate over all supersets of ``mask`` within ``S``."""
        self._check_mask(mask)
        return sb.iter_supersets(mask, self._universe)

    def singletons(self) -> Iterator[int]:
        """Iterate over the one-bit masks of ``S`` in bit order."""
        return sb.iter_singletons(self._universe)

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------
    def _check_mask(self, mask: int) -> None:
        if mask < 0 or mask & ~self._universe:
            raise UnknownElementError(
                f"mask {mask:#x} uses bits outside the ground set of size {self.size}"
            )

    def check_same(self, other: "GroundSet") -> None:
        """Raise :class:`GroundSetMismatchError` unless ``other`` equals ``self``."""
        if self != other:
            raise GroundSetMismatchError(
                f"objects over different ground sets: {self!r} vs {other!r}"
            )

    def is_dense_capable(self) -> bool:
        """Whether dense ``2^|S|`` tables are permitted for this ground set."""
        return self.size <= MAX_DENSE_SIZE
