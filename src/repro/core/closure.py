"""The implied-constraint closure ``C*`` as a queryable oracle.

``C*`` (Definition 3.3) contains doubly-exponentially many constraints,
so it is never materialized; by Theorem 3.5 it is fully determined by the
set ``L(C)``, and :class:`ImpliedConstraintOracle` answers membership,
enumerates the *atomic* closure (``atom(U) in C*`` iff ``U in L(C)``,
Remark 4.5), and produces the canonical atomic representation -- the
constraint set ``{atom(U) | U in L(C)}``, which is equivalent to ``C``
and unique for the equivalence class of ``C``.

The oracle also enumerates implied constraints over bounded shapes
(bounded family size over a candidate member pool), which is what the
tests use to compare ``C*`` computed through three independent routes
(lattice, inference rules, SAT) on small ground sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Sequence

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.decomposition import atom
from repro.core.family import SetFamily
from repro.core.implication import decide

__all__ = ["ImpliedConstraintOracle", "atomic_representation"]


def atomic_representation(cset: ConstraintSet) -> ConstraintSet:
    """``{atom(U) | U in L(C)}`` -- the canonical equivalent of ``C``.

    Two constraint sets are equivalent iff their atomic representations
    are identical (both equal ``L``), which the tests exploit.
    """
    ground = cset.ground
    constraints = [atom(ground, u) for u in cset.iter_lattice()]
    return ConstraintSet(ground, constraints)


class ImpliedConstraintOracle:
    """Query interface over ``C*`` without materializing it."""

    def __init__(self, cset: ConstraintSet, method: str = "lattice"):
        self._cset = cset
        self._method = method

    @property
    def constraint_set(self) -> ConstraintSet:
        return self._cset

    def __contains__(self, c: DifferentialConstraint) -> bool:
        """Membership ``c in C*``."""
        return decide(self._cset, c, method=self._method)

    def implies(self, c: DifferentialConstraint) -> bool:
        return decide(self._cset, c, method=self._method)

    def atomic_closure(self) -> List[int]:
        """The masks ``U`` with ``atom(U) in C*`` -- exactly ``L(C)``."""
        return list(self._cset.iter_lattice())

    def iter_implied(
        self,
        lhs_candidates: Sequence[int],
        member_pool: Sequence[int],
        max_family_size: int,
        include_trivial: bool = False,
    ) -> Iterator[DifferentialConstraint]:
        """Enumerate implied constraints of bounded shape.

        Yields every implied ``X -> Y`` with ``X`` among
        ``lhs_candidates`` and ``Y`` a subset of ``member_pool`` of size
        at most ``max_family_size``.  Exhaustive over the requested shape
        -- intended for small ground sets (tests, closure-comparison
        experiments).
        """
        ground = self._cset.ground
        for lhs in lhs_candidates:
            for k in range(max_family_size + 1):
                for members in combinations(member_pool, k):
                    c = DifferentialConstraint(
                        ground, lhs, SetFamily(ground, members)
                    )
                    if not include_trivial and c.is_trivial:
                        continue
                    if self.implies(c):
                        yield c
