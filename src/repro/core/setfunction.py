"""Set functions ``f : 2^S -> R`` -- the class ``F(S)`` of the paper.

Two concrete representations are provided:

:class:`SetFunction`
    A *dense* table of ``2^|S|`` values (numpy float64, or exact Python
    numbers when ``exact=True``).  Supports the full transform machinery
    of :mod:`repro.core.transforms`; this is the workhorse for ground sets
    up to ~20 elements.

:class:`SparseDensityFunction`
    A function specified by its finitely many *nonzero density values*
    (Remark 2.3).  Function values are recovered on demand through
    equation (5) as ``f(X) = sum of d(U) over stored U superseteq X``.
    Support functions of basket databases are exactly of this form -- the
    density of ``s_B`` is the basket multiset count ``d^B`` (Section 6.1)
    -- which makes constraint checking scale with the number of *distinct
    baskets* instead of ``2^|S|``.

Both classes implement the small protocol consumed by the constraint
machinery: ``ground``, ``value(mask)``, ``density_value(mask)`` and
``density_items()`` (iterating the nonzero density entries).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Tuple, Union

import numpy as np

from repro.core import subsets as sb
from repro.core import transforms
from repro.core.ground import GroundSet
from repro.engine.backends import EXACT, FLOAT, Backend
from repro.errors import GroundSetMismatchError

__all__ = ["SetFunction", "SparseDensityFunction", "DEFAULT_TOLERANCE"]

#: Absolute tolerance used when deciding ``d_f(U) == 0`` on float tables.
DEFAULT_TOLERANCE = 1e-9

Number = Union[int, float]



def _require_dense(ground: GroundSet) -> None:
    """Refuse to build 2^|S| tables past the dense-capability limit."""
    if not ground.is_dense_capable():
        raise ValueError(
            f"|S| = {ground.size} exceeds the dense-table limit; use "
            "SparseDensityFunction (or basket-level machinery) instead"
        )


class SetFunction:
    """A dense element of ``F(S)``.

    Parameters
    ----------
    ground:
        The ground set ``S``.
    values:
        A sequence of ``2^|S|`` values indexed by subset mask.
    exact:
        When ``True`` the values are kept as exact Python numbers in a
        list and all transforms run in exact arithmetic; when ``False``
        (default) the values live in a ``numpy.float64`` array.
    """

    __slots__ = ("_ground", "_values", "_exact", "_density_cache")

    def __init__(self, ground: GroundSet, values, exact: bool = False):
        _require_dense(ground)
        size = transforms.table_size_for(ground.size)
        if len(values) != size:
            raise ValueError(
                f"expected {size} values for |S|={ground.size}, got {len(values)}"
            )
        self._ground = ground
        self._exact = exact
        self._values = self.backend.copy(values)
        self._density_cache = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, ground: GroundSet, exact: bool = False) -> "SetFunction":
        """The identically-zero function."""
        _require_dense(ground)
        size = transforms.table_size_for(ground.size)
        backend = EXACT if exact else FLOAT
        return cls(ground, backend.zeros(size), exact=exact)

    @classmethod
    def constant(cls, ground: GroundSet, c: Number, exact: bool = False) -> "SetFunction":
        """The function with ``f(X) = c`` for every ``X``."""
        _require_dense(ground)
        size = transforms.table_size_for(ground.size)
        backend = EXACT if exact else FLOAT
        return cls(ground, backend.full(size, c), exact=exact)

    @classmethod
    def from_dict(
        cls,
        ground: GroundSet,
        mapping: Mapping,
        default: Number = 0,
        exact: bool = False,
    ) -> "SetFunction":
        """Build from a mapping of subsets to values.

        Keys may be masks (ints) or anything :meth:`GroundSet.parse`
        accepts (label iterables, shorthand strings).  Missing subsets get
        ``default`` -- this mirrors the paper's Example 3.2 style
        ``f((/)) = f(C) = 2 and f = 1 elsewhere``.
        """
        _require_dense(ground)
        size = transforms.table_size_for(ground.size)
        values = [default] * size
        for key, val in mapping.items():
            mask = key if isinstance(key, int) else ground.parse(key)
            ground._check_mask(mask)
            values[mask] = val
        return cls(ground, values, exact=exact)

    @classmethod
    def from_callable(
        cls, ground: GroundSet, fn: Callable[[int], Number], exact: bool = False
    ) -> "SetFunction":
        """Build by evaluating ``fn`` on every subset mask."""
        _require_dense(ground)
        values = [fn(mask) for mask in ground.all_masks()]
        return cls(ground, values, exact=exact)

    @classmethod
    def from_density(
        cls,
        ground: GroundSet,
        density: Mapping,
        exact: bool = False,
    ) -> "SetFunction":
        """Build the unique ``f`` whose density is ``density`` (eq. (5)).

        ``density`` maps subsets (masks or parseable labels) to their
        density values; unspecified subsets have density ``0``.
        """
        _require_dense(ground)
        size = transforms.table_size_for(ground.size)
        table = [0] * size
        for key, val in density.items():
            mask = key if isinstance(key, int) else ground.parse(key)
            ground._check_mask(mask)
            table[mask] = table[mask] + val
        if not exact:
            table = np.asarray(table, dtype=np.float64)
        transforms.superset_zeta_inplace(table)
        return cls(ground, table, exact=exact)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def exact(self) -> bool:
        return self._exact

    @property
    def backend(self) -> Backend:
        """The :mod:`repro.engine` backend owning this function's tables."""
        return EXACT if self._exact else FLOAT

    def value(self, mask: int) -> Number:
        """``f(X)`` for the subset with bitmask ``mask``."""
        self._ground._check_mask(mask)
        v = self._values[mask]
        return v if self._exact else float(v)

    def __call__(self, subset) -> Number:
        """``f(X)`` with ``X`` given as labels or shorthand string."""
        return self.value(self._ground.parse(subset))

    def table(self):
        """The raw value table (a copy)."""
        if self._exact:
            return list(self._values)
        return self._values.copy()

    # ------------------------------------------------------------------
    # density (Moebius inverse)
    # ------------------------------------------------------------------
    def density(self) -> "SetFunction":
        """The density function ``d_f`` (Remark 2.3, equation (4))."""
        if self._density_cache is None:
            table = transforms.density_table(self._values)
            self._density_cache = SetFunction(self._ground, table, exact=self._exact)
        return self._density_cache

    def density_value(self, mask: int) -> Number:
        """``d_f(X)``."""
        return self.density().value(mask)

    def density_items(self) -> Iterator[Tuple[int, Number]]:
        """Iterate ``(mask, d_f(mask))`` over subsets with nonzero density."""
        dens = self.density()
        for mask in self._ground.all_masks():
            v = dens.value(mask)
            if v != 0:
                yield mask, v

    def is_nonnegative_density(self, tol: float = DEFAULT_TOLERANCE) -> bool:
        """Whether ``d_f >= 0`` everywhere, i.e. ``f`` is in ``positive(S)``.

        By Proposition 2.9 a function has all differentials nonnegative
        (the paper's definition of *frequency function*, Section 6) if and
        only if its density is nonnegative.
        """
        dens = self.density()
        # exact functions keep the historic strict ``>= 0`` check
        return self.backend.all_nonnegative(dens._values, 0 if self._exact else tol)

    def apply_density_delta(self, mask: int, delta: Number) -> "SetFunction":
        """In place: add ``delta`` to the density at ``mask``.

        The streaming hook (equation (5) is linear in the density): the
        value table gets ``delta`` added at every subset position of
        ``mask`` -- ``O(2^|mask|)`` scalar / one vectorized masked add --
        instead of being rebuilt by an ``O(n * 2^n)`` transform.  The
        cached density (if materialized) is patched point-wise.
        """
        from repro.engine.incremental import add_on_subsets

        self._ground._check_mask(mask)
        add_on_subsets(self._values, mask, delta, self.backend)
        if self._density_cache is not None:
            cached = self._density_cache
            cached._values[mask] = cached._values[mask] + delta
            cached._density_cache = None
        return self

    def differential(self, family) -> "SetFunction":
        """``D_f^Y`` as a whole function, via the batched engine pass."""
        from repro.core.differential import differential_function

        return differential_function(self, family)

    # ------------------------------------------------------------------
    # arithmetic / comparison
    # ------------------------------------------------------------------
    def _binary(self, other: "SetFunction", op) -> "SetFunction":
        if not isinstance(other, SetFunction):
            return NotImplemented
        if self._ground != other._ground:
            raise GroundSetMismatchError("set functions over different ground sets")
        if self._exact and other._exact:
            vals = [op(a, b) for a, b in zip(self._values, other._values)]
            return SetFunction(self._ground, vals, exact=True)
        a = np.asarray(self._values, dtype=np.float64)
        b = np.asarray(other._values, dtype=np.float64)
        return SetFunction(self._ground, op(a, b))

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b)

    def __mul__(self, scalar: Number) -> "SetFunction":
        if self._exact:
            return SetFunction(
                self._ground, [v * scalar for v in self._values], exact=True
            )
        return SetFunction(self._ground, np.asarray(self._values) * float(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "SetFunction":
        return self * -1

    def allclose(self, other: "SetFunction", tol: float = DEFAULT_TOLERANCE) -> bool:
        """Whether two functions agree up to absolute tolerance ``tol``."""
        if self._ground != other._ground:
            return False
        a = np.asarray(self._values, dtype=np.float64)
        b = np.asarray(other._values, dtype=np.float64)
        return bool(np.allclose(a, b, atol=tol, rtol=0.0))

    def __repr__(self) -> str:
        n = self._ground.size
        kind = "exact" if self._exact else "float"
        return f"SetFunction(|S|={n}, {kind})"


class SparseDensityFunction:
    """An element of ``F(S)`` given by its nonzero density entries.

    This is the scalable representation for support functions: the density
    of ``s_B`` is the basket multiset count ``d^B`` (Section 6.1), so a
    database with ``m`` distinct baskets is represented by ``m`` entries
    regardless of ``|S|``.
    """

    __slots__ = ("_ground", "_density")

    def __init__(self, ground: GroundSet, density: Mapping[int, Number]):
        clean: Dict[int, Number] = {}
        for mask, val in density.items():
            ground._check_mask(mask)
            if val != 0:
                clean[mask] = clean.get(mask, 0) + val
        self._ground = ground
        self._density = {m: v for m, v in clean.items() if v != 0}

    @property
    def ground(self) -> GroundSet:
        return self._ground

    def value(self, mask: int) -> Number:
        """``f(X) = sum_{U superseteq X} d(U)`` over the stored entries."""
        self._ground._check_mask(mask)
        return sum(v for u, v in self._density.items() if sb.is_subset(mask, u))

    def __call__(self, subset) -> Number:
        return self.value(self._ground.parse(subset))

    def density_value(self, mask: int) -> Number:
        self._ground._check_mask(mask)
        return self._density.get(mask, 0)

    def density_items(self) -> Iterator[Tuple[int, Number]]:
        """Iterate the nonzero ``(mask, density)`` pairs."""
        return iter(sorted(self._density.items()))

    def is_nonnegative_density(self, tol: float = DEFAULT_TOLERANCE) -> bool:
        return all(v >= -tol for v in self._density.values())

    def apply_density_delta(self, mask: int, delta: Number) -> "SparseDensityFunction":
        """In place: add ``delta`` to the density at ``mask`` (streaming
        hook; entries hitting exactly zero are dropped)."""
        self._ground._check_mask(mask)
        value = self._density.get(mask, 0) + delta
        if value == 0:
            self._density.pop(mask, None)
        else:
            self._density[mask] = value
        return self

    def support_size(self) -> int:
        """Number of nonzero density entries."""
        return len(self._density)

    def to_dense(self, exact: bool = True) -> SetFunction:
        """Materialize as a dense :class:`SetFunction` (small ``|S|`` only)."""
        return SetFunction.from_density(self._ground, dict(self._density), exact=exact)

    def differential(self, family) -> SetFunction:
        """``D_f^Y`` as a dense function, via the batched density-sum pass."""
        from repro.core.differential import differential_function

        return differential_function(self, family)

    def __repr__(self) -> str:
        return (
            f"SparseDensityFunction(|S|={self._ground.size}, "
            f"nnz={len(self._density)})"
        )
