"""Witness and atomic decompositions of a constraint (Definition 4.4).

``decomp(X -> Y)`` rewrites a constraint as the set of its witness-set
projections ``{X -> W-tilde | W in W(Y)}`` (``W-tilde`` = the family of
singletons of ``W``); ``atoms(X -> Y)`` rewrites it as the set of atomic
constraints ``{atom(U) | U in L(X, Y)}`` with
``atom(U) = U -> {{z} | z in S - U}``.

Remark 4.5 and Propositions 4.6-4.7 establish that either decomposition
is equivalent to the original constraint both semantically (equal
``L``-closures) and proof-theoretically (equal derivational closures);
both facts are exercised heavily by the completeness engine in
:mod:`repro.core.derivation` and by the tests.
"""

from __future__ import annotations

from typing import List

from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.witness import iter_witnesses

__all__ = ["atom", "decomp", "atoms"]


def atom(ground: GroundSet, u_mask: int) -> DifferentialConstraint:
    """``atom(U) = U -> {{z} | z in S - U}`` (Section 4.2)."""
    return DifferentialConstraint.atom(ground, u_mask)


def decomp(constraint: DifferentialConstraint) -> List[DifferentialConstraint]:
    """``decomp(X -> Y) = {X -> W-tilde | W in W(Y)}``.

    Trivial constraints decompose into trivial constraints: a member
    ``Y0 subseteq X`` forces every witness to intersect ``X``, so each
    ``X -> W-tilde`` contains a singleton inside ``X`` (and when
    ``Y0 = emptyset`` there are no witnesses at all).  The paper's
    Prop 4.6 proof handles this case via the Triviality rule.
    """
    ground = constraint.ground
    out = []
    for w in iter_witnesses(constraint.family):
        family = SetFamily.singletons_of(ground, w)
        out.append(DifferentialConstraint(ground, constraint.lhs, family))
    return out


def atoms(constraint: DifferentialConstraint) -> List[DifferentialConstraint]:
    """``atoms(X -> Y) = {atom(U) | U in L(X, Y)}``.

    Empty exactly when the constraint is trivial (Definition 3.1 makes
    ``L`` empty then).
    """
    ground = constraint.ground
    return [atom(ground, u) for u in sorted(constraint.iter_lattice())]
