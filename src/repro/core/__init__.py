"""Core of the reproduction: the paper's primary contribution.

Differentials and density functions (Section 2.1), witness sets and
lattice decompositions (Section 2.2), differential constraints and their
implication problem (Section 3), and the sound and complete inference
system with constructive completeness (Section 4).
"""

from repro.core.ground import GroundSet
from repro.core.family import SetFamily
from repro.core.setfunction import (
    DEFAULT_TOLERANCE,
    SetFunction,
    SparseDensityFunction,
)
from repro.core.constraint import DENSITY, DIFFERENTIAL, DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.differential import (
    density_family_for,
    density_value_by_definition,
    differential_apply_delta,
    differential_function,
    differential_function_by_definition,
    differential_value,
    differential_via_density,
)
from repro.core.witness import (
    count_witnesses,
    is_witness,
    iter_witnesses,
    minimal_witnesses,
    witnesses,
)
from repro.core.lattice import (
    in_lattice,
    iter_lattice,
    iter_lattice_by_witnesses,
    lattice,
    lattice_bitset,
    lattice_size,
    proposition_2_8_split,
)
from repro.core.implication import (
    decide,
    fd_closure,
    find_uncovered,
    find_uncovered_engine,
    find_uncovered_sat,
    implies_bitset,
    implies_engine,
    implies_fd,
    implies_lattice,
    implies_sat,
    in_fd_fragment,
)
from repro.core.counterexample import (
    principal_ideal_function,
    refute,
    semantic_implies_over_ideals,
    sparse_principal_ideal_function,
)
from repro.core.decomposition import atom, atoms, decomp
from repro.core.proofs import Proof, check_proof
from repro.core.derivation import derivation_size, derive
from repro.core.closure import ImpliedConstraintOracle, atomic_representation
from repro.core.armstrong import armstrong_database, armstrong_function

__all__ = [
    "GroundSet",
    "SetFamily",
    "SetFunction",
    "SparseDensityFunction",
    "DEFAULT_TOLERANCE",
    "DENSITY",
    "DIFFERENTIAL",
    "DifferentialConstraint",
    "ConstraintSet",
    "density_family_for",
    "density_value_by_definition",
    "differential_function",
    "differential_function_by_definition",
    "differential_value",
    "differential_apply_delta",
    "differential_via_density",
    "count_witnesses",
    "is_witness",
    "iter_witnesses",
    "minimal_witnesses",
    "witnesses",
    "in_lattice",
    "iter_lattice",
    "iter_lattice_by_witnesses",
    "lattice",
    "lattice_bitset",
    "lattice_size",
    "proposition_2_8_split",
    "decide",
    "fd_closure",
    "find_uncovered",
    "find_uncovered_engine",
    "find_uncovered_sat",
    "implies_bitset",
    "implies_engine",
    "implies_fd",
    "implies_lattice",
    "implies_sat",
    "in_fd_fragment",
    "principal_ideal_function",
    "refute",
    "semantic_implies_over_ideals",
    "sparse_principal_ideal_function",
    "atom",
    "atoms",
    "decomp",
    "Proof",
    "check_proof",
    "derivation_size",
    "derive",
    "ImpliedConstraintOracle",
    "atomic_representation",
    "armstrong_database",
    "armstrong_function",
]
