"""Differential constraints ``X -> Y`` (Definition 3.1).

A differential constraint pairs a subset ``X`` of the ground set with a
family ``Y`` of subsets.  Under the paper's *density-based* semantics a
function ``f`` satisfies ``X -> Y`` iff ``d_f(U) = 0`` for every ``U`` in
the lattice decomposition ``L(X, Y)``.

Remark 3.6's earlier *differential-based* semantics -- ``f`` satisfies
``X -> Y`` iff ``D_f^Y(X) = 0`` -- is strictly weaker (satisfaction under
density implies satisfaction under differential but not conversely; the
remark's one-element counterexample is reproduced in the tests) and is
available through ``semantics="differential"``.  The two coincide on
functions with nonnegative (or nonpositive) density, which is why the FIS
results of Section 6 can use either.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from repro.core import subsets as sb
from repro.core.differential import differential_value
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.lattice import in_lattice, iter_lattice
from repro.core.setfunction import (
    DEFAULT_TOLERANCE,
    SetFunction,
    SparseDensityFunction,
)
from repro.errors import InvalidConstraintError

__all__ = ["DifferentialConstraint", "DENSITY", "DIFFERENTIAL"]

AnySetFunction = Union[SetFunction, SparseDensityFunction]

#: Semantics selectors for :meth:`DifferentialConstraint.satisfied_by`.
DENSITY = "density"
DIFFERENTIAL = "differential"


class DifferentialConstraint:
    """A differential constraint ``X -> Y`` over a ground set ``S``.

    Instances are immutable, hashable and compare by exact
    ``(ground, lhs, family)`` identity -- the equality the proof checker
    relies on when validating rule applications.
    """

    __slots__ = ("_ground", "_lhs", "_family", "_lattice_cache")

    def __init__(self, ground: GroundSet, lhs_mask: int, family: SetFamily):
        ground._check_mask(lhs_mask)
        ground.check_same(family.ground)
        self._ground = ground
        self._lhs = lhs_mask
        self._family = family
        self._lattice_cache: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, ground: GroundSet, lhs, *members) -> "DifferentialConstraint":
        """Build from labels in the paper's shorthand.

        >>> S = GroundSet("ABCD")
        >>> DifferentialConstraint.of(S, "A", "B", "CD")
        A -> {B, CD}
        """
        return cls(ground, ground.parse(lhs), SetFamily.of(ground, *members))

    @classmethod
    def parse(cls, ground: GroundSet, text: str) -> "DifferentialConstraint":
        """Parse ``"A -> B, CD"`` style notation.

        The right-hand side is a comma-separated list of subsets in the
        paper's shorthand; an empty right-hand side (``"A ->"``) denotes
        the empty family, and ``"(/)"`` denotes the empty-set member.
        """
        if "->" not in text:
            raise InvalidConstraintError(f"missing '->' in {text!r}")
        lhs_text, rhs_text = text.split("->", 1)
        lhs = ground.parse(lhs_text.strip())
        rhs_text = rhs_text.strip()
        if rhs_text in ("", "{}"):
            family = SetFamily(ground)
        else:
            rhs_text = rhs_text.strip("{}")
            parts = [p.strip() for p in rhs_text.split(",")]
            family = SetFamily(ground, (ground.parse(p) for p in parts if p != ""))
        return cls(ground, lhs, family)

    @classmethod
    def atom(cls, ground: GroundSet, u_mask: int) -> "DifferentialConstraint":
        """The atomic constraint ``atom(U) = U -> {{z} | z in S - U}``
        (Section 4.2)."""
        complement = ground.complement(u_mask)
        return cls(ground, u_mask, SetFamily.singletons_of(ground, complement))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def lhs(self) -> int:
        """The left-hand side ``X`` as a mask."""
        return self._lhs

    @property
    def family(self) -> SetFamily:
        """The right-hand side family ``Y``."""
        return self._family

    @property
    def is_trivial(self) -> bool:
        """Triviality per Definition 3.1: some ``Y in Y`` with
        ``Y subseteq X`` (equivalently ``L(X, Y)`` is empty)."""
        return self._family.is_trivial_for(self._lhs)

    def is_atomic(self) -> bool:
        """Whether this constraint is ``atom(U)`` for some ``U``."""
        complement = self._ground.complement(self._lhs)
        expected = SetFamily.singletons_of(self._ground, complement)
        return self._family == expected

    def has_singleton_family(self) -> bool:
        """Whether the family has exactly one member -- the fragment
        equivalent to functional dependencies (paper's conclusion)."""
        return len(self._family) == 1

    # ------------------------------------------------------------------
    # lattice decomposition
    # ------------------------------------------------------------------
    def iter_lattice(self) -> Iterator[int]:
        """Iterate ``L(X, Y)``."""
        return iter_lattice(self._lhs, self._family, self._ground)

    def lattice_set(self) -> frozenset:
        """``L(X, Y)`` as a cached frozenset of masks."""
        if self._lattice_cache is None:
            self._lattice_cache = frozenset(self.iter_lattice())
        return self._lattice_cache

    def lattice_contains(self, u_mask: int) -> bool:
        """Membership ``U in L(X, Y)`` in ``O(|Y|)``."""
        return in_lattice(self._lhs, self._family, u_mask)

    def delta_affects(self, u_mask: int) -> bool:
        """Whether a density delta at ``u_mask`` can change satisfaction.

        Under density semantics satisfaction reads ``d_f`` only on
        ``L(X, Y)``, so a streaming delta is relevant exactly when its
        mask lies in the lattice decomposition -- the ``O(|Y|)`` test
        the incremental engine fires per tracked constraint per delta.
        """
        return self.lattice_contains(u_mask)

    # ------------------------------------------------------------------
    # satisfaction
    # ------------------------------------------------------------------
    def satisfied_by(
        self,
        f: AnySetFunction,
        semantics: str = DENSITY,
        tol: float = DEFAULT_TOLERANCE,
    ) -> bool:
        """Whether ``f`` satisfies this constraint.

        ``semantics="density"`` (Definition 3.1, the paper's default):
        ``d_f`` vanishes on all of ``L(X, Y)``.  Dense functions are
        checked by the batched engine -- one vectorized sweep of the
        density table against the cached ``L(X, Y)`` bitset.  Sparse
        functions iterate their *nonzero density entries* and test
        lattice membership, costing ``O(nnz * |Y|)``.

        ``semantics="differential"`` (Remark 3.6): ``D_f^Y(X) = 0``.
        """
        self._ground.check_same(f.ground)
        if semantics == DIFFERENTIAL:
            return abs(differential_value(f, self._family, self._lhs)) <= tol
        if semantics != DENSITY:
            raise ValueError(f"unknown semantics {semantics!r}")
        if isinstance(f, SetFunction):
            from repro.engine import batch, shared_cache

            blocked = shared_cache().blocked_table(
                self._ground, self._family.members
            )
            lattice_tbl = batch.superset_indicator(
                self._ground.size, self._lhs
            ) & ~blocked
            density = f.density()._values
            return not f.backend.any_nonzero_where(density, lattice_tbl, tol)
        for mask, value in f.density_items():
            if abs(value) > tol and self.lattice_contains(mask):
                return False
        return True

    # ------------------------------------------------------------------
    # value protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DifferentialConstraint)
            and self._ground == other._ground
            and self._lhs == other._lhs
            and self._family == other._family
        )

    def __hash__(self) -> int:
        return hash((self._ground, self._lhs, self._family))

    def __repr__(self) -> str:
        lhs = self._ground.format_mask(self._lhs)
        rhs = self._ground.format_family(self._family.members)
        return f"{lhs} -> {rhs}"
