"""Sets of differential constraints and their joint lattice ``L(C)``.

For a set ``C`` of constraints the paper writes ``L(C)`` for the union of
the individual lattice decompositions; Theorem 3.5 reduces implication to
the containment ``L(C) superseteq L(X, Y)``.  :class:`ConstraintSet`
provides an ``O(|C| * |Y_i|)`` membership test into ``L(C)`` (no table
needed), an optional dense cached bitset for repeated queries on small
ground sets, satisfaction checking of set functions, and cover
minimization (removal of constraints already implied by the rest).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.constraint import DENSITY, DifferentialConstraint
from repro.core.ground import GroundSet
from repro.core.setfunction import (
    DEFAULT_TOLERANCE,
    SetFunction,
    SparseDensityFunction,
)

__all__ = ["ConstraintSet"]

AnySetFunction = Union[SetFunction, SparseDensityFunction]


class ConstraintSet:
    """An immutable collection of differential constraints over one ground set."""

    __slots__ = ("_ground", "_constraints", "_bitset_cache", "_all_singleton")

    def __init__(
        self, ground: GroundSet, constraints: Iterable[DifferentialConstraint] = ()
    ):
        seen = []
        dedupe = set()
        for c in constraints:
            ground.check_same(c.ground)
            if c not in dedupe:
                dedupe.add(c)
                seen.append(c)
        self._ground = ground
        self._constraints: Tuple[DifferentialConstraint, ...] = tuple(seen)
        self._bitset_cache: Optional[np.ndarray] = None
        self._all_singleton: Optional[bool] = None

    def all_singleton_families(self) -> bool:
        """Whether every member constraint has a one-member family (the
        P-time FD fragment) -- cached: the set is immutable, and the
        auto implication decider asks per query."""
        if self._all_singleton is None:
            self._all_singleton = all(
                c.has_singleton_family() for c in self._constraints
            )
        return self._all_singleton

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, ground: GroundSet, *specs) -> "ConstraintSet":
        """Build from ``"A -> B, CD"`` strings and/or constraint objects.

        >>> S = GroundSet("ABC")
        >>> ConstraintSet.of(S, "A -> B", "B -> C")
        ConstraintSet[A -> {B}, B -> {C}]
        """
        constraints = []
        for spec in specs:
            if isinstance(spec, DifferentialConstraint):
                constraints.append(spec)
            else:
                constraints.append(DifferentialConstraint.parse(ground, spec))
        return cls(ground, constraints)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def constraints(self) -> Tuple[DifferentialConstraint, ...]:
        return self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[DifferentialConstraint]:
        return iter(self._constraints)

    def __contains__(self, c: DifferentialConstraint) -> bool:
        return c in set(self._constraints)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstraintSet)
            and self._ground == other._ground
            and set(self._constraints) == set(other._constraints)
        )

    def __hash__(self) -> int:
        return hash((self._ground, frozenset(self._constraints)))

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self._constraints)
        return f"ConstraintSet[{inner}]"

    def parse(self, text) -> DifferentialConstraint:
        """Parse a constraint in arrow syntax against this set's ground
        set (already-constructed constraints pass through).  The text
        codec behind ``C.implies("A -> B")`` and the wire protocol's
        request bodies."""
        if isinstance(text, DifferentialConstraint):
            return text
        return DifferentialConstraint.parse(self._ground, text)

    def add(self, c: DifferentialConstraint) -> "ConstraintSet":
        """A new set with ``c`` included."""
        return ConstraintSet(self._ground, self._constraints + (c,))

    def remove(self, c: DifferentialConstraint) -> "ConstraintSet":
        """A new set with ``c`` excluded."""
        return ConstraintSet(
            self._ground, (x for x in self._constraints if x != c)
        )

    # ------------------------------------------------------------------
    # the joint lattice L(C)
    # ------------------------------------------------------------------
    def lattice_contains(self, u_mask: int) -> bool:
        """Membership ``U in L(C)`` without materializing ``L(C)``."""
        return any(c.lattice_contains(u_mask) for c in self._constraints)

    def delta_affects(self, u_mask: int) -> bool:
        """Whether a density delta at ``u_mask`` can change the
        satisfaction of *some* member constraint (streaming hook)."""
        return self.lattice_contains(u_mask)

    def stream_session(self, density=None, config=None, **kwargs):
        """A :class:`repro.engine.StreamSession` monitoring this set.

        ``density`` optionally seeds the instance (``{mask: value}``);
        ``config`` is the :class:`repro.engine.EngineConfig` the planner
        resolves the session from (the pre-planner ``backend=`` /
        ``shards=`` / ``workers=`` / ``durable=`` kwargs still pass
        through -- the session shims them with a deprecation warning).
        Remaining keyword arguments pass through to the session.
        """
        from repro.engine.stream import StreamSession

        return StreamSession(
            self._ground,
            constraints=self._constraints,
            density=density,
            config=config,
            _depth=1,
            **kwargs,
        )

    def server(self, instance=None, **kwargs):
        """A :class:`repro.engine.ConstraintServer` fronting this set.

        The async microbatching queue coalesces concurrent implication
        queries against ``C`` (and ``check`` queries against an optional
        live ``instance``) and memoizes answers in a fingerprint-keyed
        LRU; see ``repro serve`` for the CLI surface.
        """
        from repro.engine.server import ConstraintServer

        return ConstraintServer(self, instance=instance, **kwargs)

    def iter_lattice(self) -> Iterator[int]:
        """Iterate ``L(C)`` (each mask once, ascending).

        Reads off the engine's cached boolean table rather than running
        ``2^|S|`` interpreted membership tests.
        """
        for u in np.flatnonzero(self.lattice_bitset()):
            yield int(u)

    def lattice_bitset(self) -> np.ndarray:
        """``L(C)`` as a cached boolean table over all masks.

        Useful when many implication queries are asked against the same
        ``C``.  Built by the memoizing engine decider, so equal
        constraint sets constructed independently (e.g. per CLI
        invocation) share one table via the fingerprint cache.  The
        returned array is **read-only** (it is the shared cache entry);
        copy it before mutating.
        """
        if self._bitset_cache is None:
            from repro.engine import shared_cache

            self._bitset_cache = shared_cache().joint_lattice_table(self)
        return self._bitset_cache

    # ------------------------------------------------------------------
    # satisfaction and implication
    # ------------------------------------------------------------------
    def satisfied_by(
        self,
        f: AnySetFunction,
        semantics: str = DENSITY,
        tol: float = DEFAULT_TOLERANCE,
    ) -> bool:
        """Whether ``f`` satisfies every constraint in the set."""
        return all(c.satisfied_by(f, semantics=semantics, tol=tol) for c in self)

    def implies(self, target, method: str = "auto", context=None) -> bool:
        """Whether ``C |= target`` (Theorem 3.5 and friends).

        Delegates to :func:`repro.core.implication.decide`; ``target`` may
        be a constraint object or a parseable string.  ``context`` is an
        optional :class:`repro.engine.EvalContext` for the engine decider.
        """
        from repro.core.implication import decide

        if not isinstance(target, DifferentialConstraint):
            target = DifferentialConstraint.parse(self._ground, target)
        return decide(self, target, method=method, context=context)

    # ------------------------------------------------------------------
    # covers
    # ------------------------------------------------------------------
    def is_redundant(self, c: DifferentialConstraint) -> bool:
        """Whether ``c`` is already implied by the other constraints."""
        from repro.core.implication import decide

        return decide(self.remove(c), c, method="auto")

    def minimal_cover(self) -> "ConstraintSet":
        """A subset of ``C`` with the same ``L`` (greedy redundancy removal).

        The result depends on removal order (minimal covers are not
        unique); constraints are considered in reverse insertion order so
        earlier, presumably more fundamental, constraints are preferred.
        """
        kept = list(self._constraints)
        for c in list(reversed(kept)):
            trial = ConstraintSet(self._ground, (x for x in kept if x != c))
            if trial.implies(c, method="auto"):
                kept = list(trial.constraints)
        return ConstraintSet(self._ground, kept)

    def equivalent_to(self, other: "ConstraintSet") -> bool:
        """Whether ``L(C) == L(C')`` -- i.e. the sets imply each other."""
        self._ground.check_same(other._ground)
        return all(self.implies(c, method="auto") for c in other) and all(
            other.implies(c, method="auto") for c in self
        )
