"""Superset zeta and Moebius transforms (Remark 2.3, equations (4)-(5)).

The paper's Remark 2.3 states the bijection between a set function ``f``
and its *density* ``d_f`` (the Moebius inverse of ``f`` over the superset
order)::

    d(X) = sum_{X subseteq U subseteq S} (-1)^{|U| - |X|} f(U)      (4)
    f(X) = sum_{X subseteq U subseteq S} d(U)                       (5)

Equation (5) is the *superset zeta transform* and equation (4) the
*superset Moebius transform*.  Both run as the standard in-place
butterfly over bit positions in ``O(n * 2^n)`` arithmetic operations --
exponentially faster than the naive ``O(4^n)`` double loop, which is
retained (:func:`naive_density_table`, :func:`naive_zeta_table`) as an
oracle for the test suite.

The butterflies themselves live in :mod:`repro.engine.backends`, where
each storage mode is a first-class backend:

* ``numpy.ndarray`` of floats -- vectorized butterflies
  (:class:`~repro.engine.backends.FloatBackend`, the fast path);
* plain Python ``list`` of exact numbers (``int``, ``Fraction``) --
  pure-Python butterflies preserving exactness
  (:class:`~repro.engine.backends.ExactBackend`), used when constraints
  must be checked without floating-point tolerance.

The functions here dispatch on the table's type, so existing callers are
unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.core import subsets as sb
from repro.engine.backends import backend_for_table, n_bits_for

__all__ = [
    "superset_zeta_inplace",
    "superset_mobius_inplace",
    "subset_zeta_inplace",
    "subset_mobius_inplace",
    "density_table",
    "function_table_from_density",
    "naive_density_table",
    "naive_zeta_table",
    "table_size_for",
]

Table = Union[np.ndarray, List]


def table_size_for(n_elements: int) -> int:
    """Number of entries in a dense table over a ground set of size ``n``."""
    return 1 << n_elements


def superset_zeta_inplace(values: Table) -> None:
    """In-place superset zeta transform: ``values[X] <- sum_{U >= X} values[U]``.

    Implements equation (5): applied to a density table it yields the
    function table.
    """
    backend_for_table(values).superset_zeta_inplace(values)


def superset_mobius_inplace(values: Table) -> None:
    """In-place superset Moebius transform (the inverse of the zeta).

    Implements equation (4): applied to a function table it yields the
    density table ``d_f``.
    """
    backend_for_table(values).superset_mobius_inplace(values)


def subset_zeta_inplace(values: Table) -> None:
    """In-place subset zeta transform: ``values[X] <- sum_{U <= X} values[U]``.

    The *downward* analogue of equation (5); applied to a Dempster-Shafer
    mass table it yields the belief function (Section 8's pointer to the
    Dempster-Shafer theory, made executable in :mod:`repro.measures`).
    """
    backend_for_table(values).subset_zeta_inplace(values)


def subset_mobius_inplace(values: Table) -> None:
    """In-place subset Moebius transform (inverse of the subset zeta);
    recovers a mass table from a belief table."""
    backend_for_table(values).subset_mobius_inplace(values)


def density_table(values: Sequence) -> Table:
    """Return a fresh density table ``d_f`` for the function table ``values``."""
    out = _copy(values)
    superset_mobius_inplace(out)
    return out


def function_table_from_density(density: Sequence) -> Table:
    """Return the function table whose density is ``density`` (equation (5))."""
    out = _copy(density)
    superset_zeta_inplace(out)
    return out


def naive_density_table(values: Sequence) -> list:
    """Oracle implementation of equation (4) by direct double summation.

    ``O(4^n)`` -- used only to validate :func:`density_table` in tests.
    """
    size = len(values)
    n_bits_for(size)
    universe = size - 1
    out = []
    for x in range(size):
        acc = values[x] - values[x]  # zero of the value type
        for u in sb.iter_supersets(x, universe):
            sign = 1 if (sb.popcount(u) - sb.popcount(x)) % 2 == 0 else -1
            acc = acc + sign * values[u]
        out.append(acc)
    return out


def naive_zeta_table(density: Sequence) -> list:
    """Oracle implementation of equation (5) by direct summation."""
    size = len(density)
    n_bits_for(size)
    universe = size - 1
    out = []
    for x in range(size):
        acc = density[x] - density[x]
        for u in sb.iter_supersets(x, universe):
            acc = acc + density[u]
        out.append(acc)
    return out


def _copy(values: Sequence) -> Table:
    if isinstance(values, np.ndarray):
        return values.astype(np.float64, copy=True)
    return list(values)
