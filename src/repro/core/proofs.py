"""Proof objects: explicit derivations in the Figure 1/2 inference system.

A :class:`Proof` is an immutable DAG node -- a conclusion, the rule that
produced it, the premise sub-proofs, and the rule parameters.  Builders
(:func:`axiom`, :func:`triviality`, :func:`augmentation`, ...) construct
nodes and *validate them on construction* against the exact rule schemas
of :mod:`repro.core.rules`, so an engine using the builders cannot emit a
malformed derivation.  :func:`check_proof` re-validates a whole proof
independently (the belt to the builders' suspenders), optionally
rejecting Figure-2 macro steps; :meth:`Proof.expand` rewrites a proof
into Figure-1 primitives only.

``Proof.format()`` renders derivations in the linear numbered style of
the paper's Example 4.3::

    (1) C -> {D}                      given
    (2) A -> {BC, CD}                 given
    (3) A -> {BC, C}                  projection on (2)
    ...
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core import rules as R
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.errors import InvalidProofError

__all__ = [
    "Proof",
    "axiom",
    "triviality",
    "augmentation",
    "addition",
    "elimination",
    "projection",
    "separation",
    "union_rule",
    "transitivity",
    "chain",
    "absorption",
    "check_proof",
]


class Proof:
    """One node of a derivation DAG.

    Sub-proofs may be shared between nodes; size accounting and
    formatting deduplicate shared nodes so a proof reads like the paper's
    numbered derivations.
    """

    __slots__ = ("_conclusion", "_rule", "_premises", "_params")

    def __init__(
        self,
        conclusion: DifferentialConstraint,
        rule: str,
        premises: Tuple["Proof", ...] = (),
        params: Tuple = (),
    ):
        R.validate_step(
            conclusion, rule, [p.conclusion for p in premises], params, None
        )
        self._conclusion = conclusion
        self._rule = rule
        self._premises = premises
        self._params = params

    # ------------------------------------------------------------------
    @property
    def conclusion(self) -> DifferentialConstraint:
        return self._conclusion

    @property
    def rule(self) -> str:
        return self._rule

    @property
    def premises(self) -> Tuple["Proof", ...]:
        return self._premises

    @property
    def params(self) -> Tuple:
        return self._params

    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator["Proof"]:
        """Postorder iteration over distinct DAG nodes (shared nodes once)."""
        seen: Set[int] = set()
        stack: List[Tuple["Proof", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in seen:
                continue
            if expanded:
                seen.add(id(node))
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node._premises):
                    if id(child) not in seen:
                        stack.append((child, False))

    def size(self) -> int:
        """Number of distinct derivation steps."""
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Longest premise chain (iterative, memoized by node identity)."""
        memo: Dict[int, int] = {}
        for node in self.iter_nodes():
            if node._premises:
                memo[id(node)] = 1 + max(memo[id(p)] for p in node._premises)
            else:
                memo[id(node)] = 1
        return memo[id(self)]

    def uses_only_primitives(self) -> bool:
        """Whether every step is an axiom or a Figure-1 rule."""
        allowed = R.PRIMITIVE_RULES | {R.AXIOM}
        return all(node._rule in allowed for node in self.iter_nodes())

    def rule_counts(self) -> Dict[str, int]:
        """Histogram of rule names over distinct steps."""
        counts: Dict[str, int] = {}
        for node in self.iter_nodes():
            counts[node._rule] = counts.get(node._rule, 0) + 1
        return counts

    def expand(self) -> "Proof":
        """An equivalent proof using Figure-1 primitives only."""
        from repro.core.derived_rules import expand_proof

        return expand_proof(self)

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Numbered linear rendering in the style of Example 4.3."""
        numbers: Dict[int, int] = {}
        lines: List[str] = []
        for node in self.iter_nodes():
            numbers[id(node)] = len(numbers) + 1
            if node._rule == R.AXIOM:
                justification = "given"
            elif node._premises:
                refs = ", ".join(
                    f"({numbers[id(p)]})" for p in node._premises
                )
                justification = f"{node._rule} on {refs}"
            else:
                justification = node._rule
            lines.append(
                f"({numbers[id(node)]}) {node._conclusion!r}".ljust(48)
                + justification
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Proof({self._conclusion!r} by {self._rule}, "
            f"{self.size()} steps)"
        )


# ----------------------------------------------------------------------
# builders (validate on construction)
# ----------------------------------------------------------------------
def axiom(c: DifferentialConstraint) -> Proof:
    """A leaf citing ``c`` as a hypothesis."""
    return Proof(c, R.AXIOM)


def triviality(c: DifferentialConstraint) -> Proof:
    """A leaf justified by the Triviality rule; ``c`` must be trivial."""
    return Proof(c, R.TRIVIALITY)


def augmentation(p: Proof, z: int) -> Proof:
    """``X -> Y  =>  X union Z -> Y``."""
    c = p.conclusion
    concl = DifferentialConstraint(c.ground, c.lhs | z, c.family)
    return Proof(concl, R.AUGMENTATION, (p,), (z,))


def addition(p: Proof, z: int) -> Proof:
    """``X -> Y  =>  X -> Y union {Z}``."""
    c = p.conclusion
    concl = DifferentialConstraint(c.ground, c.lhs, c.family.add(z))
    return Proof(concl, R.ADDITION, (p,), (z,))


def elimination(p1: Proof, p2: Proof, z: int) -> Proof:
    """``X -> Y union {Z},  X union Z -> Y  =>  X -> Y``."""
    base = p2.conclusion.family
    lhs = p1.conclusion.lhs
    concl = DifferentialConstraint(p1.conclusion.ground, lhs, base)
    return Proof(concl, R.ELIMINATION, (p1, p2), (z,))


def projection(p: Proof, old: int, new: int) -> Proof:
    """Figure 2: shrink the member ``old`` to its subset ``new``."""
    c = p.conclusion
    concl = DifferentialConstraint(c.ground, c.lhs, c.family.replace(old, new))
    return Proof(concl, R.PROJECTION, (p,), (old, new))


def separation(p: Proof, old: int, part1: int, part2: int) -> Proof:
    """Figure 2: split the member ``old = part1 union part2`` in two."""
    c = p.conclusion
    fam = c.family.remove(old).add(part1).add(part2)
    concl = DifferentialConstraint(c.ground, c.lhs, fam)
    return Proof(concl, R.SEPARATION, (p,), (old, part1, part2))


def union_rule(p1: Proof, p2: Proof, m1: int, m2: int, base: SetFamily) -> Proof:
    """Figure 2: merge members ``m1`` and ``m2`` over the shared ``base``."""
    c1 = p1.conclusion
    concl = DifferentialConstraint(c1.ground, c1.lhs, base.add(m1 | m2))
    return Proof(concl, R.UNION, (p1, p2), (m1, m2, base))


def transitivity(p1: Proof, p2: Proof, y: int, z: int, base: SetFamily) -> Proof:
    """Figure 2: ``X -> Y+{Y}``, ``Y -> Y+{Z}``  =>  ``X -> Y+{Z}``."""
    c1 = p1.conclusion
    concl = DifferentialConstraint(c1.ground, c1.lhs, base.add(z))
    return Proof(concl, R.TRANSITIVITY, (p1, p2), (y, z, base))


def chain(p1: Proof, p2: Proof, y: int, z: int, base: SetFamily) -> Proof:
    """Figure 2: ``X -> Y+{Y}``, ``X union Y -> Y+{Z}``  =>
    ``X -> Y+{Y union Z}``."""
    c1 = p1.conclusion
    concl = DifferentialConstraint(c1.ground, c1.lhs, base.add(y | z))
    return Proof(concl, R.CHAIN, (p1, p2), (y, z, base))


def absorption(p: Proof, old: int, new: int) -> Proof:
    """Grow member ``old`` to ``new subseteq old union X`` (our lemma)."""
    c = p.conclusion
    concl = DifferentialConstraint(c.ground, c.lhs, c.family.replace(old, new))
    return Proof(concl, R.ABSORPTION, (p,), (old, new))


# ----------------------------------------------------------------------
# independent checker
# ----------------------------------------------------------------------
def check_proof(
    proof: Proof,
    hypotheses: Sequence[DifferentialConstraint] = (),
    allow_derived: bool = True,
) -> None:
    """Re-validate every step of ``proof``.

    Raises :class:`InvalidProofError` if any step fails its rule schema,
    if an axiom is not among ``hypotheses``, or (with
    ``allow_derived=False``) if a Figure-2 macro step appears.
    """
    hypothesis_set = set(hypotheses)
    for node in proof.iter_nodes():
        if not allow_derived and node.rule in R.DERIVED_RULES:
            raise InvalidProofError(
                f"derived rule {node.rule!r} not allowed in primitive-only mode"
            )
        R.validate_step(
            node.conclusion,
            node.rule,
            [p.conclusion for p in node.premises],
            node.params,
            hypothesis_set,
        )
