"""The ``Y``-differential operator ``D_f^Y`` (Definition 2.1).

For a set ``Y`` of subsets of ``S`` and ``f in F(S)``::

    D_f^Y(X) = sum_{Z subseteq Y} (-1)^{|Z|} f(X union (union of Z))

where ``Z`` ranges over sub-*families* of ``Y`` (so the sign counts chosen
members, not chosen elements).  The module provides the direct
inclusion-exclusion evaluation and the density-sum form of
Proposition 2.9::

    D_f^Y(X) = sum_{U in L(X, Y)} d_f(U)

whose agreement is a key correctness property verified by the test suite.

It also exposes the *density-as-differential* identity of Definition 2.1:
``d_f(X) = D_f^{Ybar}(X)`` where ``Ybar`` is the family of singletons of
the complement ``S - X`` (the paper's Example 2.2 fixes the intended
reading: ``d_f(A) = D_f^{{B},{C},{D}}(A)`` over ``S = {A,B,C,D}``).
"""

from __future__ import annotations

from typing import Union

from repro.core import subsets as sb
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.setfunction import SetFunction, SparseDensityFunction

__all__ = [
    "differential_value",
    "differential_function",
    "differential_function_by_definition",
    "differential_apply_delta",
    "differential_via_density",
    "density_family_for",
    "density_value_by_definition",
]

AnySetFunction = Union[SetFunction, SparseDensityFunction]


def differential_value(f: AnySetFunction, family: SetFamily, x_mask: int):
    """Evaluate ``D_f^Y(X)`` directly from Definition 2.1.

    Runs in ``O(2^|Y|)`` evaluations of ``f`` where ``|Y|`` is the number
    of *members* of the family.
    """
    f.ground.check_same(family.ground)
    members = family.members
    k = len(members)
    total = 0
    for choice in range(1 << k):
        union = x_mask
        for i in range(k):
            if choice >> i & 1:
                union |= members[i]
        term = f.value(union)
        if choice.bit_count() & 1:
            total = total - term
        else:
            total = total + term
    return total


def differential_function(
    f: AnySetFunction, family: SetFamily, context=None
) -> SetFunction:
    """The differential ``D_f^Y`` as a (dense) element of ``F(S)``.

    Evaluated by the batched engine: one masked superset-zeta pass over
    the density table gives ``D_f^Y(X)`` for every ``X`` in
    ``O(n * 2^n)`` (Proposition 2.9), instead of the scalar
    ``O(2^|Y|)``-per-``X`` inclusion-exclusion of Definition 2.1.  For
    :class:`SparseDensityFunction` inputs the density table is scattered
    straight from the nonzero entries -- the density-sum path.
    """
    from repro.engine import batch, default_context

    ground = f.ground
    context = context or default_context()
    backend = context.backend_for(f)
    table = batch.batched_differential(f, family, backend)
    return SetFunction(ground, table, exact=backend.exact)


def differential_function_by_definition(
    f: AnySetFunction, family: SetFamily
) -> SetFunction:
    """``D_f^Y`` through the scalar Definition 2.1 loop.

    ``O(4^n * 2^|Y|)`` in the dense case -- kept as the oracle the test
    suite compares the batched engine against.
    """
    ground = f.ground
    exact = getattr(f, "exact", True)
    values = [differential_value(f, family, x) for x in ground.all_masks()]
    return SetFunction(ground, values, exact=bool(exact))


def differential_apply_delta(table, family: SetFamily, mask: int, delta):
    """Maintain a differential table ``D_f^Y`` under one density delta.

    Proposition 2.9 makes the differential linear in the density, so a
    delta at ``mask`` adds ``delta`` at every subset position -- unless
    some member of ``Y`` is contained in ``mask``, in which case ``mask``
    is outside every ``L(X, Y)`` and the table is untouched.  ``O(2^n)``
    (vectorized) per delta instead of the ``O(n * 2^n)`` rebuild of
    :func:`differential_function`; the incremental engine applies the
    same rule to its live tables.
    """
    from repro.engine.incremental import add_on_subsets

    if not family.contains_subset_of(mask):
        add_on_subsets(table, mask, delta)
    return table


def differential_via_density(f: AnySetFunction, family: SetFamily, x_mask: int):
    """Evaluate ``D_f^Y(X)`` through Proposition 2.9.

    Sums the density of ``f`` over the lattice decomposition ``L(X, Y)``.
    For :class:`SparseDensityFunction` this touches only the nonzero
    density entries, giving the scalable evaluation path.
    """
    from repro.core.lattice import in_lattice, iter_lattice

    f.ground.check_same(family.ground)
    if isinstance(f, SparseDensityFunction):
        return sum(
            v for mask, v in f.density_items() if in_lattice(x_mask, family, mask)
        )
    total = 0
    for u in iter_lattice(x_mask, family, f.ground):
        total = total + f.density_value(u)
    return total


def density_family_for(ground: GroundSet, x_mask: int) -> SetFamily:
    """The family ``{{y} | y in S - X}`` used in Definition 2.1's density.

    (The printed paper drops the complement bar in the definition; the
    worked Example 2.2 -- ``d_f(A) = D_f^{B,C,D}(A)`` over ``S = ABCD`` --
    shows the family ranges over the complement of ``X``.)
    """
    return SetFamily.singletons_of(ground, ground.complement(x_mask))


def density_value_by_definition(f: AnySetFunction, x_mask: int):
    """``d_f(X)`` computed as the differential of Definition 2.1.

    Equivalent to the Moebius transform value (Remark 2.3); kept as an
    independent code path for the test suite.
    """
    family = density_family_for(f.ground, x_mask)
    return differential_value(f, family, x_mask)
