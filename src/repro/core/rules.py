"""Rule schemas of Figures 1 and 2, with exact step validators.

Figure 1 (the primitive, sound and complete system):

========================  =====================================================
Triviality                ``Y in Y, Y subseteq X  =>  X -> Y``
Augmentation              ``X -> Y  =>  X union Z -> Y``
Addition                  ``X -> Y  =>  X -> Y union {Z}``
Elimination               ``X -> Y union {Z},  X union Z -> Y  =>  X -> Y``
========================  =====================================================

Figure 2 (derivable rules; :mod:`repro.core.derived_rules` provides the
machine-checked expansions into Figure-1 steps):

========================  =====================================================
Projection                ``X -> Y union {Y union Z}  =>  X -> Y union {Y}``
Separation                ``X -> Y union {Y union Z}  =>  X -> Y union {Y} union {Z}``
Union                     ``X -> Y+{Y}, X -> Y+{Z}  =>  X -> Y+{Y union Z}``
Transitivity              ``X -> Y+{Y}, Y -> Y+{Z}  =>  X -> Y+{Z}``
Chain                     ``X -> Y+{Y}, X union Y -> Y+{Z}  =>  X -> Y+{Y union Z}``
Absorption (ours)         ``X -> Y+{M}  =>  X -> Y+{M'}``  for ``M subseteq M'
                          subseteq M union X`` -- a lemma used by the Figure-2
                          expansions, itself expanded into Figure-1 steps
========================  =====================================================

Each validator receives the step's conclusion, the premises' conclusions
and the rule parameters, and raises :class:`InvalidProofError` unless the
step is an exact instance of the schema.  Families are sets, so
degenerate applications (adding an already-present member, replacing a
member by itself) validate naturally.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.errors import InvalidProofError

__all__ = [
    "AXIOM",
    "TRIVIALITY",
    "AUGMENTATION",
    "ADDITION",
    "ELIMINATION",
    "PROJECTION",
    "SEPARATION",
    "UNION",
    "TRANSITIVITY",
    "CHAIN",
    "ABSORPTION",
    "PRIMITIVE_RULES",
    "DERIVED_RULES",
    "ALL_RULES",
    "validate_step",
]

AXIOM = "axiom"
TRIVIALITY = "triviality"
AUGMENTATION = "augmentation"
ADDITION = "addition"
ELIMINATION = "elimination"
PROJECTION = "projection"
SEPARATION = "separation"
UNION = "union"
TRANSITIVITY = "transitivity"
CHAIN = "chain"
ABSORPTION = "absorption"

PRIMITIVE_RULES = frozenset({TRIVIALITY, AUGMENTATION, ADDITION, ELIMINATION})
DERIVED_RULES = frozenset(
    {PROJECTION, SEPARATION, UNION, TRANSITIVITY, CHAIN, ABSORPTION}
)
ALL_RULES = PRIMITIVE_RULES | DERIVED_RULES | {AXIOM}


def _fail(rule: str, why: str) -> None:
    raise InvalidProofError(f"invalid {rule} step: {why}")


def _need_premises(rule: str, premises: Sequence, count: int) -> None:
    if len(premises) != count:
        _fail(rule, f"expected {count} premise(s), got {len(premises)}")


def _need_params(rule: str, params: Tuple, count: int) -> None:
    if len(params) != count:
        _fail(rule, f"expected {count} parameter(s), got {len(params)}")


def validate_step(
    conclusion: DifferentialConstraint,
    rule: str,
    premises: Sequence[DifferentialConstraint],
    params: Tuple,
    hypotheses: Optional[Set[DifferentialConstraint]] = None,
) -> None:
    """Validate one inference step; raise :class:`InvalidProofError` if bad.

    ``hypotheses`` is consulted only for ``axiom`` steps; passing ``None``
    accepts any axiom (used when a proof is checked for shape only).
    """
    ground = conclusion.ground
    for p in premises:
        if p.ground != ground:
            _fail(rule, "premise over a different ground set")

    if rule == AXIOM:
        _need_premises(rule, premises, 0)
        if hypotheses is not None and conclusion not in hypotheses:
            _fail(rule, f"{conclusion!r} is not a hypothesis")
        return

    if rule == TRIVIALITY:
        _need_premises(rule, premises, 0)
        if not conclusion.is_trivial:
            _fail(rule, f"{conclusion!r} is not trivial")
        return

    if rule == AUGMENTATION:
        _need_premises(rule, premises, 1)
        _need_params(rule, params, 1)
        (z,) = params
        p = premises[0]
        expected = DifferentialConstraint(ground, p.lhs | z, p.family)
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == ADDITION:
        _need_premises(rule, premises, 1)
        _need_params(rule, params, 1)
        (z,) = params
        p = premises[0]
        expected = DifferentialConstraint(ground, p.lhs, p.family.add(z))
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == ELIMINATION:
        _need_premises(rule, premises, 2)
        _need_params(rule, params, 1)
        (z,) = params
        p1, p2 = premises
        want_p1 = DifferentialConstraint(
            ground, conclusion.lhs, conclusion.family.add(z)
        )
        want_p2 = DifferentialConstraint(
            ground, conclusion.lhs | z, conclusion.family
        )
        if p1 != want_p1:
            _fail(rule, f"first premise should be {want_p1!r}, got {p1!r}")
        if p2 != want_p2:
            _fail(rule, f"second premise should be {want_p2!r}, got {p2!r}")
        return

    if rule == PROJECTION:
        _need_premises(rule, premises, 1)
        _need_params(rule, params, 2)
        old, new = params
        p = premises[0]
        if not sb.is_subset(new, old):
            _fail(rule, "projected member must be a subset of the original")
        if old not in p.family.members:
            _fail(rule, "original member absent from the premise family")
        expected = DifferentialConstraint(
            ground, p.lhs, p.family.replace(old, new)
        )
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == SEPARATION:
        _need_premises(rule, premises, 1)
        _need_params(rule, params, 3)
        old, part1, part2 = params
        p = premises[0]
        if part1 | part2 != old:
            _fail(rule, "the two parts must union to the separated member")
        if old not in p.family.members:
            _fail(rule, "separated member absent from the premise family")
        expected = DifferentialConstraint(
            ground, p.lhs, p.family.remove(old).add(part1).add(part2)
        )
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == UNION:
        _need_premises(rule, premises, 2)
        _need_params(rule, params, 3)
        m1, m2, base = params
        if not isinstance(base, SetFamily):
            _fail(rule, "third parameter must be the shared base family")
        p1, p2 = premises
        want_p1 = DifferentialConstraint(ground, conclusion.lhs, base.add(m1))
        want_p2 = DifferentialConstraint(ground, conclusion.lhs, base.add(m2))
        expected = DifferentialConstraint(
            ground, conclusion.lhs, base.add(m1 | m2)
        )
        if p1 != want_p1 or p2 != want_p2:
            _fail(rule, f"premises should be {want_p1!r} and {want_p2!r}")
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == TRANSITIVITY:
        _need_premises(rule, premises, 2)
        _need_params(rule, params, 3)
        y, z, base = params
        if not isinstance(base, SetFamily):
            _fail(rule, "third parameter must be the shared base family")
        p1, p2 = premises
        want_p1 = DifferentialConstraint(ground, conclusion.lhs, base.add(y))
        want_p2 = DifferentialConstraint(ground, y, base.add(z))
        expected = DifferentialConstraint(ground, conclusion.lhs, base.add(z))
        if p1 != want_p1 or p2 != want_p2:
            _fail(rule, f"premises should be {want_p1!r} and {want_p2!r}")
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == CHAIN:
        _need_premises(rule, premises, 2)
        _need_params(rule, params, 3)
        y, z, base = params
        if not isinstance(base, SetFamily):
            _fail(rule, "third parameter must be the shared base family")
        p1, p2 = premises
        want_p1 = DifferentialConstraint(ground, conclusion.lhs, base.add(y))
        want_p2 = DifferentialConstraint(
            ground, conclusion.lhs | y, base.add(z)
        )
        expected = DifferentialConstraint(
            ground, conclusion.lhs, base.add(y | z)
        )
        if p1 != want_p1 or p2 != want_p2:
            _fail(rule, f"premises should be {want_p1!r} and {want_p2!r}")
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    if rule == ABSORPTION:
        _need_premises(rule, premises, 1)
        _need_params(rule, params, 2)
        old, new = params
        p = premises[0]
        if not sb.is_subset(old, new):
            _fail(rule, "absorbed member must contain the original")
        if not sb.is_subset(new, old | p.lhs):
            _fail(rule, "absorbed member may only grow by left-hand-side elements")
        if old not in p.family.members:
            _fail(rule, "original member absent from the premise family")
        expected = DifferentialConstraint(
            ground, p.lhs, p.family.replace(old, new)
        )
        if conclusion != expected:
            _fail(rule, f"expected {expected!r}, got {conclusion!r}")
        return

    _fail(rule, "unknown rule name")
