"""Deciding the implication problem ``C |= X -> Y``.

Theorem 3.5 reduces implication over ``F(S)`` to the lattice containment
``L(C) superseteq L(X, Y)``; Proposition 5.4 reduces it to propositional
implication (hence coNP, Prop 5.5); the paper's conclusion notes that the
singleton-right-hand-side fragment coincides with functional-dependency
implication and is decidable in polynomial time.  All three routes are
implemented here:

``method="engine"``
    Both sides of the containment become boolean numpy tables built by
    :mod:`repro.engine`; the tables are memoized across queries keyed by
    constraint fingerprints (the atomic closure ``L(C)`` is computed at
    most once per distinct ``C``, even across equal sets constructed
    independently).  The default for dense-capable ground sets.

``method="lattice"``
    Enumerate ``L(X, Y)`` (supersets of ``X`` containing no member of
    ``Y``) and test each against ``L(C)`` membership.  Exact; cost
    ``O(2^{|S|-|X|} * |C| * |Y|)``.  Kept as the scalar oracle.

``method="bitset"``
    Same containment decided against the cached dense ``L(C)`` table --
    the right choice when many queries hit one ``C``.

``method="sat"``
    Refutation search: ``C |= c`` iff ``prop(C) and not prop(c)`` is
    unsatisfiable (Prop 5.4 + the well-known negminset containment).  Uses
    the in-tree DPLL solver; scales past dense-table ground sets.

``method="fd"``
    The P-time fragment: every constraint has exactly one family member.
    Decided by the classical attribute-closure algorithm.

``method="auto"``
    Delegates to the engine :class:`~repro.engine.plan.Planner` (one
    brain for the whole stack): ``fd`` when the instance is in the
    fragment, otherwise ``engine`` for dense-capable ground sets,
    otherwise ``sat``.  The planner's dense cutoff is the same constant
    the context factory uses, so the auto heuristic and the engine's
    own applicability check can never disagree.

:func:`find_uncovered` exposes the certificate: a set
``U in L(X,Y) - L(C)``, from which Theorem 3.5's counterexample function
``f^U`` is built (see :mod:`repro.core.counterexample`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.errors import NotApplicableError

__all__ = [
    "decide",
    "implies_engine",
    "implies_lattice",
    "implies_bitset",
    "implies_sat",
    "implies_fd",
    "find_uncovered",
    "find_uncovered_engine",
    "find_uncovered_sat",
    "fd_closure",
    "in_fd_fragment",
]

Constraints = Union[ConstraintSet, Iterable[DifferentialConstraint]]

_PLANNER = None


def _auto_planner():
    """The engine planner behind ``method="auto"`` (import deferred like
    the rest of the engine, then cached -- auto dispatch is per query)."""
    global _PLANNER
    if _PLANNER is None:
        from repro.engine.plan import default_planner

        _PLANNER = default_planner()
    return _PLANNER


def _as_constraint_set(
    constraints: Constraints, like: DifferentialConstraint
) -> ConstraintSet:
    if isinstance(constraints, ConstraintSet):
        return constraints
    return ConstraintSet(like.ground, constraints)


def decide(
    constraints: Constraints,
    target: DifferentialConstraint,
    method: str = "auto",
    context=None,
) -> bool:
    """Decide ``C |= target`` with the selected ``method``.

    ``context`` is an optional :class:`repro.engine.EvalContext` whose
    memoization cache the engine decider uses (the process-wide shared
    cache otherwise).
    """
    cset = _as_constraint_set(constraints, target)
    cset.ground.check_same(target.ground)
    if method == "auto":
        method, _why = _auto_planner().decide_method(
            cset.ground.size, fd_fragment=in_fd_fragment(cset, target)
        )
    if method == "engine":
        return implies_engine(cset, target, context=context)
    if method == "lattice":
        return implies_lattice(cset, target)
    if method == "bitset":
        return implies_bitset(cset, target)
    if method == "sat":
        return implies_sat(cset, target)
    if method == "fd":
        return implies_fd(cset, target)
    raise ValueError(f"unknown implication method {method!r}")


# ----------------------------------------------------------------------
# Theorem 3.5 at table speed: the memoizing engine decider
# ----------------------------------------------------------------------
def implies_engine(
    constraints: Constraints,
    target: DifferentialConstraint,
    context=None,
) -> bool:
    """``C |= target`` via cached boolean-table containment."""
    return find_uncovered_engine(constraints, target, context=context) is None


def find_uncovered_engine(
    constraints: Constraints,
    target: DifferentialConstraint,
    context=None,
) -> Optional[int]:
    """Like :func:`find_uncovered`, decided by the batched engine.

    The per-constraint lattice tables and the atomic closure ``L(C)``
    are memoized by structural fingerprint, so repeated queries against
    the same (or an equal) ``C`` skip the lattice sweep entirely.
    """
    from repro.engine import decider

    cset = _as_constraint_set(constraints, target)
    if not cset.ground.is_dense_capable():
        # the dense-limit error and the auto heuristic share one brain:
        # the refusal names the plan the planner would have picked
        suggested, why = _auto_planner().decide_method(
            cset.ground.size,
            fd_fragment=in_fd_fragment(cset, target),
        )
        raise NotApplicableError(
            f"the engine decider builds dense 2^|S| tables; |S| = "
            f"{cset.ground.size} exceeds the dense limit -- the planner "
            f"suggests method={suggested!r} ({why})"
        )
    cache = context.cache if context is not None else None
    return decider.find_uncovered_batched(cset, target, cache)


# ----------------------------------------------------------------------
# Theorem 3.5: lattice containment
# ----------------------------------------------------------------------
def implies_lattice(constraints: Constraints, target: DifferentialConstraint) -> bool:
    """``C |= target`` iff ``L(target) subseteq L(C)`` (Theorem 3.5)."""
    cset = _as_constraint_set(constraints, target)
    return find_uncovered(cset, target) is None


def find_uncovered(
    constraints: Constraints, target: DifferentialConstraint
) -> Optional[int]:
    """Return some ``U in L(target) - L(C)``, or ``None`` if none exists.

    ``None`` certifies implication; a mask certifies non-implication via
    the Theorem 3.5 counterexample ``f^U``.
    """
    cset = _as_constraint_set(constraints, target)
    for u in target.iter_lattice():
        if not cset.lattice_contains(u):
            return u
    return None


def implies_bitset(constraints: Constraints, target: DifferentialConstraint) -> bool:
    """Containment against the cached dense ``L(C)`` table."""
    cset = _as_constraint_set(constraints, target)
    table = cset.lattice_bitset()
    return all(table[u] for u in target.iter_lattice())


# ----------------------------------------------------------------------
# Proposition 5.4: propositional refutation (DPLL)
# ----------------------------------------------------------------------
def _encode_refutation(
    cset: ConstraintSet, target: DifferentialConstraint
) -> Tuple[List[List[int]], int]:
    """CNF clauses satisfiable iff ``C`` does **not** imply ``target``.

    Ground element ``i`` becomes propositional variable ``i + 1``; each
    family member of each constraint in ``C`` gets a fresh auxiliary
    selector variable (one-sided Tseitin: ``z_j -> AND Y_j`` suffices for
    satisfiability).  A model restricted to the ground variables is a set
    ``U in L(target) - L(C)``.
    """
    n = cset.ground.size
    clauses: List[List[int]] = []
    next_var = n + 1

    # not prop(target): AND X  and  for each member Y: OR_{y in Y} not y
    for bit in sb.iter_bits(target.lhs):
        clauses.append([bit + 1])
    for member in target.family:
        clauses.append([-(bit + 1) for bit in sb.iter_bits(member)])

    # prop(c') for each constraint in C
    for c in cset:
        main = [-(bit + 1) for bit in sb.iter_bits(c.lhs)]
        for member in c.family:
            z = next_var
            next_var += 1
            main.append(z)
            for bit in sb.iter_bits(member):
                clauses.append([-z, bit + 1])
        clauses.append(main)
    return clauses, next_var - 1


def implies_sat(constraints: Constraints, target: DifferentialConstraint) -> bool:
    """``C |= target`` decided by DPLL refutation (Prop 5.4)."""
    return find_uncovered_sat(constraints, target) is None


def find_uncovered_sat(
    constraints: Constraints, target: DifferentialConstraint
) -> Optional[int]:
    """Like :func:`find_uncovered` but the search is done by the SAT solver."""
    from repro.logic.sat import solve

    cset = _as_constraint_set(constraints, target)
    clauses, n_vars = _encode_refutation(cset, target)
    model = solve(clauses, n_vars)
    if model is None:
        return None
    mask = 0
    for bit in range(cset.ground.size):
        if model.get(bit + 1, False):
            mask |= 1 << bit
    return mask


# ----------------------------------------------------------------------
# The P-time functional-dependency fragment (paper's conclusion)
# ----------------------------------------------------------------------
def in_fd_fragment(
    constraints: Constraints, target: DifferentialConstraint
) -> bool:
    """Whether premises and conclusion all have exactly one family member.

    The set side is cached on the (immutable) :class:`ConstraintSet`,
    so the per-query auto dispatch costs two attribute checks once a
    set has been asked before.
    """
    cset = _as_constraint_set(constraints, target)
    return target.has_singleton_family() and cset.all_singleton_families()


def fd_closure(ground_size_mask: int, start: int, fds: List[Tuple[int, int]]) -> int:
    """Attribute-set closure of ``start`` under FDs ``(lhs, rhs)``.

    The textbook fixpoint; each pass applies every FD whose left side is
    contained in the running closure.
    """
    closure = start
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fds:
            if sb.is_subset(lhs, closure) and rhs & ~closure:
                closure |= rhs
                changed = True
    return closure


def implies_fd(constraints: Constraints, target: DifferentialConstraint) -> bool:
    """Decide the singleton-family fragment via attribute closure.

    ``{X_i -> {Y_i}} |= X -> {Y}`` iff ``Y`` is contained in the closure
    of ``X`` under the corresponding functional dependencies; the paper's
    conclusion (and Demetrovics-Libkin-Muchnik) justify the equivalence,
    which the test suite re-verifies against the lattice decider.
    """
    cset = _as_constraint_set(constraints, target)
    if not in_fd_fragment(cset, target):
        raise NotApplicableError(
            "the FD decider requires every family to have exactly one member"
        )
    fds = [(c.lhs, c.family.members[0]) for c in cset]
    closure = fd_closure(cset.ground.universe_mask, target.lhs, fds)
    return sb.is_subset(target.family.members[0], closure)
