"""Counterexample functions for non-implication (proof of Theorem 3.5).

For any ``U subseteq S`` and nonzero real ``c`` the function::

    f^U(W) = c  if W subseteq U,   0 otherwise

has density ``c`` at ``U`` and ``0`` everywhere else -- it is the scaled
indicator of the principal ideal below ``U``.  When
``U in L(X,Y) - L(C)``, ``f^U`` satisfies every constraint of ``C`` and
violates ``X -> Y``, which is exactly how Theorem 3.5's completeness
direction is proved.  For ``c = 1`` the same function is the support
function of the one-basket list ``(U)`` (proof of Proposition 6.4), so
the counterexample simultaneously lives in ``support(S)`` and
``positive(S)`` -- the observation behind the collapse of the implication
problems over all four function classes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.ground import GroundSet
from repro.core.implication import find_uncovered
from repro.core.setfunction import SetFunction, SparseDensityFunction

__all__ = [
    "principal_ideal_function",
    "sparse_principal_ideal_function",
    "refute",
    "semantic_implies_over_ideals",
]


def principal_ideal_function(
    ground: GroundSet, u_mask: int, c: float = 1, exact: bool = True
) -> SetFunction:
    """The dense Theorem 3.5 counterexample ``f^U`` with constant ``c``."""
    if c == 0:
        raise ValueError("the counterexample constant c must be nonzero")
    return SetFunction.from_density(ground, {u_mask: c}, exact=exact)


def sparse_principal_ideal_function(
    ground: GroundSet, u_mask: int, c: float = 1
) -> SparseDensityFunction:
    """The sparse (density = ``c * delta_U``) form of ``f^U``."""
    if c == 0:
        raise ValueError("the counterexample constant c must be nonzero")
    return SparseDensityFunction(ground, {u_mask: c})


def refute(
    constraints: ConstraintSet,
    target: DifferentialConstraint,
    c: float = 1,
    sparse: bool = True,
) -> Optional[Union[SetFunction, SparseDensityFunction]]:
    """A function satisfying ``C`` but violating ``target``, if one exists.

    Returns ``None`` exactly when ``C |= target``.
    """
    u = find_uncovered(constraints, target)
    if u is None:
        return None
    if sparse:
        return sparse_principal_ideal_function(target.ground, u, c)
    return principal_ideal_function(target.ground, u, c)


def semantic_implies_over_ideals(
    constraints: ConstraintSet, target: DifferentialConstraint
) -> bool:
    """Semantic implication decided by scanning *all* principal-ideal functions.

    Checks, for every ``U subseteq S``, whether ``f^U`` satisfies ``C``
    but not ``target``.  By the Theorem 3.5 argument this family of
    functions is refutation-complete, so the scan decides ``C |= target``
    -- through the *satisfaction* code path only, giving the test suite a
    decision procedure independent of the lattice machinery.
    """
    ground = target.ground
    for u in ground.all_masks():
        f = sparse_principal_ideal_function(ground, u)
        if constraints.satisfied_by(f) and not target.satisfied_by(f):
            return False
    return True
