"""Armstrong functions: generic witnesses for constraint sets.

Armstrong relations — single databases satisfying *exactly* the
consequences of a dependency set — are a classical tool in dependency
theory (the paper cites Baixeries–Balcázar's Armstrong work for
degenerate multivalued dependencies).  Differential constraints admit a
particularly clean analogue.  By Theorem 3.5 a function satisfies
``X -> Y`` iff its density vanishes on ``L(X, Y)``, so the function
whose density is::

    d(U) = 1   if U not in L(C),      0 otherwise

satisfies a constraint ``c`` **iff** ``C |= c``:

* if ``C |= c`` then ``L(c) subseteq L(C)`` and the density vanishes
  there;
* if not, any ``U in L(c) - L(C)`` carries density 1 and violates ``c``.

Because the density is a nonnegative integer vector, the Armstrong
function is a *support function*: :func:`armstrong_database` materializes
the single basket list whose satisfied differential (equivalently,
disjunctive -- Prop 6.3) constraints are exactly ``C*``.  The database
has one basket per subset outside ``L(C)`` -- exponential in ``|S|``, as
Armstrong-style witnesses tend to be.
"""

from __future__ import annotations

from typing import Union

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.setfunction import SetFunction, SparseDensityFunction

__all__ = ["armstrong_function", "armstrong_database"]


def armstrong_function(
    cset: ConstraintSet, sparse: bool = True
) -> Union[SetFunction, SparseDensityFunction]:
    """The generic witness of ``C``: satisfies ``c`` iff ``C |= c``.

    Density 1 on every subset outside ``L(C)``, 0 inside.  Always a
    frequency (indeed support) function; note the empty constraint set
    yields density 1 *everywhere* (the fully generic function).
    """
    ground = cset.ground
    density = {
        u: 1 for u in ground.all_masks() if not cset.lattice_contains(u)
    }
    if sparse:
        return SparseDensityFunction(ground, density)
    return SetFunction.from_density(ground, density, exact=True)


def armstrong_database(cset: ConstraintSet):
    """The Armstrong basket list of ``C``.

    One basket per subset outside ``L(C)``; by Proposition 6.3 the
    disjunctive constraints this list satisfies are exactly the
    differential consequences of ``C``.
    """
    from repro.fis.baskets import BasketDatabase

    ground = cset.ground
    baskets = [
        u for u in ground.all_masks() if not cset.lattice_contains(u)
    ]
    return BasketDatabase(ground, baskets)
