"""Families of subsets -- the right-hand sides ``Y`` of differential constraints.

A *family* is a finite set of subsets of the ground set ``S``; in the
paper it is the script-``Y`` appearing in differentials ``D_f^Y`` and in
constraints ``X -> Y``.  :class:`SetFamily` stores the member subsets as a
sorted tuple of bitmasks (set semantics: duplicates collapse), which makes
families hashable, canonically ordered, and cheap to compare -- all three
properties are needed by the proof checker, where rule applications are
validated by exact constraint equality.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Iterator, Tuple

from repro.core.ground import GroundSet
from repro.core import subsets as sb

__all__ = ["SetFamily"]


class SetFamily:
    """An immutable set of subsets of a ground set.

    Parameters
    ----------
    ground:
        The ground set the member subsets live in.
    members:
        Iterable of member subsets given as bitmasks.  Duplicates are
        removed and members are stored sorted by mask value.
    """

    __slots__ = ("_ground", "_members")

    def __init__(self, ground: GroundSet, members: Iterable[int] = ()):
        unique = sorted(set(members))
        for mask in unique:
            ground._check_mask(mask)
        self._ground = ground
        self._members: Tuple[int, ...] = tuple(unique)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, ground: GroundSet, *members) -> "SetFamily":
        """Build a family from labels in the paper's shorthand.

        >>> S = GroundSet("ABCD")
        >>> SetFamily.of(S, "B", "CD")
        SetFamily({B, CD})
        """
        return cls(ground, (ground.parse(member) for member in members))

    @classmethod
    def singletons_of(cls, ground: GroundSet, mask: int) -> "SetFamily":
        """The paper's overline family ``U-bar = {{u} | u in U}``."""
        return cls(ground, sb.iter_singletons(mask))

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def members(self) -> Tuple[int, ...]:
        """The member subsets as sorted masks."""
        return self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    def __contains__(self, mask: int) -> bool:
        return mask in set(self._members)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SetFamily)
            and self._ground == other._ground
            and self._members == other._members
        )

    def __hash__(self) -> int:
        return hash((self._ground, self._members))

    def __repr__(self) -> str:
        return f"SetFamily({self._ground.format_family(self._members)})"

    # ------------------------------------------------------------------
    # set-of-sets operations
    # ------------------------------------------------------------------
    def union_support(self) -> int:
        """``Union of Y``: the union of all member subsets (a mask)."""
        return reduce(lambda a, b: a | b, self._members, 0)

    def add(self, mask: int) -> "SetFamily":
        """The family ``Y union {Z}`` (used by the Addition rule)."""
        return SetFamily(self._ground, self._members + (mask,))

    def remove(self, mask: int) -> "SetFamily":
        """The family ``Y - {Z}``; ``Z`` must be a member."""
        if mask not in self._members:
            raise KeyError(f"{self._ground.format_mask(mask)} is not a member")
        return SetFamily(self._ground, (m for m in self._members if m != mask))

    def replace(self, old: int, new: int) -> "SetFamily":
        """The family ``(Y - {old}) union {new}`` (used by Projection)."""
        return self.remove(old).add(new)

    def union(self, other: "SetFamily") -> "SetFamily":
        """The family ``Y union Y'`` (member-wise set union)."""
        self._ground.check_same(other._ground)
        return SetFamily(self._ground, self._members + other._members)

    def contains_subset_of(self, mask: int) -> bool:
        """Whether some member ``Y`` satisfies ``Y subseteq mask``.

        This is the test at the heart of the closed-form lattice
        decomposition (proof of Proposition 2.9): ``U`` belongs to
        ``L(X, Y)`` iff ``X subseteq U`` and no member of ``Y`` is
        contained in ``U``.
        """
        return any(sb.is_subset(member, mask) for member in self._members)

    def minimal_members(self) -> "SetFamily":
        """The antichain of inclusion-minimal members.

        A member that contains another member is redundant for lattice
        decompositions: if ``m subseteq M`` then ``M subseteq U`` already
        implies ``m subseteq U``, so dropping ``M`` leaves the closed-form
        membership test of ``L(X, Y)`` unchanged.  Tests verify
        ``L(X, Y) == L(X, minimal(Y))``.
        """
        minimal = [
            m
            for m in self._members
            if not any(sb.is_proper_subset(o, m) for o in self._members)
        ]
        return SetFamily(self._ground, minimal)

    def is_trivial_for(self, lhs_mask: int) -> bool:
        """Whether ``lhs -> self`` is a *trivial* constraint (Def 3.1).

        True exactly when some member ``Y`` satisfies ``Y subseteq X``;
        note a family containing the empty set is trivial for every ``X``.
        """
        return self.contains_subset_of(lhs_mask)

    def all_singletons(self) -> bool:
        """Whether every member is a singleton (the FD-like fragment of
        Section 4's atomic constraints and the decomposed constraints)."""
        return all(sb.popcount(m) == 1 for m in self._members)
