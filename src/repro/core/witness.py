"""Witness sets of a family (Definition 2.5).

A *witness set* of a family ``Y`` is a ``W subseteq (union of Y)`` that
intersects every member of ``Y`` -- i.e. a hitting set (transversal) of
the family confined to its union.  Special cases fixed by the definition:

* ``W(emptyset) = {emptyset}`` (the empty family is witnessed by the
  empty set);
* a family containing the empty set has **no** witness sets (nothing
  intersects the empty set), which is exactly how trivial constraints get
  empty lattice decompositions.

Besides brute-force enumeration the module implements Berge's incremental
algorithm for the inclusion-*minimal* witness sets; all witness sets are
the subsets of ``union(Y)`` above some minimal one, which the tests
verify against the brute force.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core import subsets as sb
from repro.core.family import SetFamily

__all__ = [
    "iter_witnesses",
    "witnesses",
    "minimal_witnesses",
    "is_witness",
    "count_witnesses",
]


def is_witness(family: SetFamily, w_mask: int) -> bool:
    """Whether ``w_mask`` is a witness set of ``family`` (Definition 2.5)."""
    union = family.union_support()
    if w_mask & ~union:
        return False
    return all(w_mask & member for member in family)


def iter_witnesses(family: SetFamily) -> Iterator[int]:
    """Yield every witness set of ``family``.

    Enumerates the subsets of ``union(Y)`` and filters by the hitting
    condition; cost ``O(2^{|union Y|} * |Y|)``.
    """
    union = family.union_support()
    members = family.members
    for w in sb.iter_subsets(union):
        if all(w & member for member in members):
            yield w


def witnesses(family: SetFamily) -> List[int]:
    """All witness sets of ``family``, sorted by mask value."""
    return sorted(iter_witnesses(family))


def count_witnesses(family: SetFamily) -> int:
    """``|W(Y)|`` without materializing the collection."""
    return sum(1 for _ in iter_witnesses(family))


def minimal_witnesses(family: SetFamily) -> List[int]:
    """The inclusion-minimal witness sets, via Berge's algorithm.

    Processes members one at a time, maintaining the antichain of minimal
    hitting sets of the prefix; each new member either is already hit or
    forces the addition of one of its elements.
    """
    current: List[int] = [0]
    for member in family.members:
        if member == 0:
            return []
        extended = set()
        for h in current:
            if h & member:
                extended.add(h)
            else:
                for bit in sb.iter_singletons(member):
                    extended.add(h | bit)
        current = _minimize(extended)
    return sorted(current)


def _minimize(masks) -> List[int]:
    """Keep only inclusion-minimal masks."""
    items = sorted(masks, key=sb.popcount)
    kept: List[int] = []
    for m in items:
        if not any(sb.is_subset(k, m) for k in kept):
            kept.append(m)
    return kept
