"""Machine-checked expansions of the Figure-2 rules into Figure-1 steps.

The paper states (Section 4) that chain, projection, transitivity,
separation and union are derivable from triviality, augmentation,
addition and elimination.  This module *constructs* those derivations:
each ``expand_*`` function receives proofs of the derived rule's premises
and returns a proof of its conclusion using only primitive steps.  The
constructions all share one skeleton -- Addition to introduce the new
member, Triviality for the augmented side premise, Elimination to discard
the old member::

    projection  (old -> new subseteq old):
        (a) X -> F + {new}                      addition on the premise
        (b) X+old -> (F - {old}) + {new}        triviality   [new subseteq X+old]
        (c) X -> (F - {old}) + {new}            elimination(a, b) on old

Our auxiliary *absorption* rule (grow a member by elements of the
left-hand side) gets the same treatment and is what makes the union and
chain expansions short.  ``expand_proof`` rewrites an arbitrary proof
bottom-up; the result is checked by the tests with
``check_proof(..., allow_derived=False)`` -- this is the executable
content of the paper's "derivable" claim (experiment E2).
"""

from __future__ import annotations

from typing import Dict

from repro.core import rules as R
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.proofs import (
    Proof,
    addition,
    augmentation,
    elimination,
    triviality,
)
from repro.errors import InvalidProofError

__all__ = [
    "expand_projection",
    "expand_separation",
    "expand_absorption",
    "expand_union",
    "expand_transitivity",
    "expand_chain",
    "expand_proof",
]


def _trivial_side_premise(
    ground, lhs: int, family: SetFamily
) -> Proof:
    """A Triviality leaf for ``lhs -> family`` (caller guarantees triviality)."""
    return triviality(DifferentialConstraint(ground, lhs, family))


def expand_projection(premise: Proof, old: int, new: int) -> Proof:
    """Primitive derivation of Projection (shrink ``old`` to ``new``)."""
    if new == old:
        return premise
    c = premise.conclusion
    target_family = c.family.replace(old, new)
    a = addition(premise, new)
    b = _trivial_side_premise(c.ground, c.lhs | old, target_family)
    return elimination(a, b, old)


def expand_separation(premise: Proof, old: int, part1: int, part2: int) -> Proof:
    """Primitive derivation of Separation (split ``old = part1 | part2``)."""
    c = premise.conclusion
    target_family = c.family.remove(old).add(part1).add(part2)
    if target_family == c.family:
        return premise
    a = addition(addition(premise, part1), part2)
    b = _trivial_side_premise(c.ground, c.lhs | old, target_family)
    return elimination(a, b, old)


def expand_absorption(premise: Proof, old: int, new: int) -> Proof:
    """Primitive derivation of Absorption (grow ``old`` by LHS elements)."""
    if new == old:
        return premise
    c = premise.conclusion
    target_family = c.family.replace(old, new)
    a = addition(premise, new)
    b = _trivial_side_premise(c.ground, c.lhs | old, target_family)
    return elimination(a, b, old)


def expand_union(
    p1: Proof, p2: Proof, m1: int, m2: int, base: SetFamily
) -> Proof:
    """Primitive derivation of Union (merge ``m1`` and ``m2``)."""
    m12 = m1 | m2
    if m12 == m1:
        return p1
    if m12 == m2:
        return p2
    if m1 in base.members:
        # premise1 already concludes X -> base; one Addition reaches the goal
        return addition(p1, m12)
    if m2 in base.members:
        return addition(p2, m12)
    a = addition(p1, m12)
    b = augmentation(p2, m1)
    c = expand_absorption(b, m2, m12)
    return elimination(a, c, m1)


def expand_transitivity(
    p1: Proof, p2: Proof, y: int, z: int, base: SetFamily
) -> Proof:
    """Primitive derivation of Transitivity."""
    x = p1.conclusion.lhs
    t1 = augmentation(p2, x)
    t2 = addition(p1, z)
    return elimination(t2, t1, y)


def expand_chain(
    p1: Proof, p2: Proof, y: int, z: int, base: SetFamily
) -> Proof:
    """Primitive derivation of Chain."""
    yz = y | z
    if yz == y:
        return p1
    a = addition(p1, yz)
    if z in base.members:
        b = addition(p2, yz)
    else:
        b = expand_absorption(p2, z, yz)
    return elimination(a, b, y)


_EXPANDERS = {
    R.PROJECTION: lambda node, prem: expand_projection(prem[0], *node.params),
    R.SEPARATION: lambda node, prem: expand_separation(prem[0], *node.params),
    R.ABSORPTION: lambda node, prem: expand_absorption(prem[0], *node.params),
    R.UNION: lambda node, prem: expand_union(prem[0], prem[1], *node.params),
    R.TRANSITIVITY: lambda node, prem: expand_transitivity(
        prem[0], prem[1], *node.params
    ),
    R.CHAIN: lambda node, prem: expand_chain(prem[0], prem[1], *node.params),
}


def expand_proof(proof: Proof) -> Proof:
    """Rewrite ``proof`` so that every step is an axiom or a Figure-1 rule.

    Shared sub-proofs stay shared (the rewrite memoizes on node identity),
    so expansion preserves the DAG structure.
    """
    memo: Dict[int, Proof] = {}
    for node in proof.iter_nodes():
        new_premises = tuple(memo[id(p)] for p in node.premises)
        if node.rule in _EXPANDERS:
            replacement = _EXPANDERS[node.rule](node, new_premises)
        elif all(m is o for m, o in zip(new_premises, node.premises)):
            replacement = node
        else:
            replacement = Proof(
                node.conclusion, node.rule, new_premises, node.params
            )
        if replacement.conclusion != node.conclusion:
            raise InvalidProofError(
                "expansion changed a conclusion -- internal error"
            )
        memo[id(node)] = replacement
    return memo[id(proof)]
