"""Delta-maintained evaluation state: the incremental engine.

The batched engine (:mod:`repro.engine.batch`) evaluates density,
support and differential tables from scratch in ``O(n * 2^n)`` butterfly
passes.  That is the right cost model for one-shot questions, but a
streaming instance -- a basket database receiving rows, a relation under
tuple inserts -- changes by *one density entry at a time*: inserting a
row with itemset ``U`` adds ``+1`` to ``d_f(U)`` and leaves every other
density untouched.  All maintained tables are linear in the density
(equation (5) and Proposition 2.9)::

    f(X)      = sum_{U superseteq X} d_f(U)
    D_f^Y(X)  = sum_{U in L(X, Y)}   d_f(U)

so a delta of ``delta`` at mask ``U`` updates them by adding ``delta``
to *every subset position of ``U``* -- skipped entirely for a
differential table whose family blocks ``U``.  That is ``O(2^n)``
vectorized work per row (``O(2^|U|)`` scalar work on the exact backend)
instead of an ``O(n * 2^n)`` rebuild per table.

Constraint monitoring is cheaper still.  Under the paper's density
semantics (Definition 3.1) ``f |= X -> Y`` iff ``d_f`` vanishes on
``L(X, Y)``, and a delta at ``U`` changes exactly one density entry --
so a constraint's status can only flip when ``d_f(U)`` crosses zero,
and only for constraints with ``U in L(X, Y)`` (an ``O(|Y|)``
membership test).  :class:`IncrementalEvalContext` keeps, per tracked
constraint, the *count of nonzero density entries inside its lattice*;
each delta adjusts the affected counts and a constraint flips exactly
when its count moves to or from zero.  Detection is therefore
``O(#constraints * |Y|)`` per delta with no table scan at all.

Downstream caches key on *versions*: :attr:`theory_version` bumps only
when some tracked constraint's status actually flips, so fingerprint
-keyed artifacts (the satisfied-set snapshot handed to the implication
decider, discovery covers, ...) are invalidated exactly on status
flips, never on benign deltas.  :attr:`zero_version` bumps when the
zero set ``Z(f)`` changes (some entry crossed zero).

Like the rest of the engine this module is duck-typed over core
objects (a ground set is anything with ``.size``; a constraint anything
with ``.lattice_contains``/``.family.members``) and imports nothing
from :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine import batch
from repro.engine.backends import (
    Backend,
    Table,
    backend_by_name,
    backend_for_table,
    dense_delta,
    iter_subset_masks,
    subset_index_array,
    subset_indicator,
)
from repro.engine.context import EvalContext
from repro.engine.decider import ImplicationCache

__all__ = [
    "DEFAULT_TOLERANCE",
    "IncrementalEvalContext",
    "add_on_subsets",
    "iter_subset_masks",
    "recompute_tables",
]

#: Absolute zero-tolerance for density entries; mirrors
#: ``repro.core.setfunction.DEFAULT_TOLERANCE`` (engine layering keeps
#: this module from importing core, so the constant is restated).
DEFAULT_TOLERANCE = 1e-9

Number = Union[int, float]


def _affects(constraint, mask: int) -> bool:
    """Whether a density delta at ``mask`` can flip ``constraint``.

    Prefers the object's ``delta_affects`` streaming hook (the core
    constraint types provide it; custom monitors may widen or narrow
    it), falling back to plain lattice membership.
    """
    hook = getattr(constraint, "delta_affects", None)
    if hook is not None:
        return hook(mask)
    return constraint.lattice_contains(mask)


# re-exported for compatibility: the subset walk lives with the
# backends now (it is the scalar half of ``add_on_subsets_inplace``)
_subset_indicator = subset_indicator


def add_on_subsets(
    table: Table,
    mask: int,
    delta: Number,
    backend: Optional[Backend] = None,
    where: Optional[np.ndarray] = None,
) -> None:
    """In place: ``table[X] += delta`` for every ``X subseteq mask``.

    The single-delta maintenance primitive: both the support table and
    (unblocked) differential tables are sums of the density over masks
    *above* each position, so one density delta touches exactly the
    subset positions of its mask.  ``where`` may pass a precomputed
    subset indicator (vectorized backends) to share it across several
    tables.  Delegates to
    :meth:`~repro.engine.backends.Backend.add_on_subsets_inplace`.
    """
    if backend is None:
        backend = backend_for_table(table)
    backend.add_on_subsets_inplace(table, mask, delta, where=where)


def recompute_tables(
    n: int,
    density_items: Iterable[Tuple[int, Number]],
    families: Sequence[Sequence[int]],
    backend: Backend,
) -> Tuple[Table, Table, List[Table]]:
    """Full-recompute oracle: ``(density, support, differential per family)``.

    Rebuilds everything from scratch through the batched engine -- the
    baseline the incremental tables must exactly equal (property-tested)
    and the cost the per-delta benchmark compares against.
    """
    density = backend.scatter(1 << n, density_items)
    support = backend.copy(density)
    backend.superset_zeta_inplace(support)
    diffs = []
    for members in families:
        table = backend.copy(density)
        batch.differential_table(table, tuple(members), backend)
        diffs.append(table)
    return density, support, diffs


class IncrementalEvalContext(EvalContext):
    """An :class:`EvalContext` that also owns live, delta-maintained state.

    Parameters
    ----------
    ground:
        The ground set (anything with ``.size``); must be dense-capable
        since ``2^n`` tables are maintained.
    density:
        Optional initial density as a ``{mask: value}`` mapping (for a
        basket database: its multiset counts ``d^B``).
    constraints:
        Differential constraints to monitor; more can be added with
        :meth:`track`.
    backend:
        ``"exact"`` (default -- streaming counts are integers),
        ``"exact-vec"`` (exact on int64/object ndarrays, vectorized
        per-delta updates) or ``"float"``.
    tol:
        Absolute tolerance deciding ``d_f(U) == 0``.

    The context implements the library's set-function protocol
    (``ground`` / ``value`` / ``density_value`` / ``density_items`` /
    ``exact``), so discovery and satisfaction machinery consume it
    directly -- mining over a growing instance reuses this state instead
    of rebuilding a function per snapshot.
    """

    __slots__ = (
        "_ground",
        "_n",
        "_tol",
        "_density",
        "_support",
        "_diffs",
        "_nonzero",
        "_support_nnz",
        "_constraints",
        "_viol_counts",
        "_violated",
        "_theory_version",
        "_zero_version",
        "_zero_cache",
        "_satisfied_cache",
    )

    def __init__(
        self,
        ground,
        density: Optional[Mapping[int, Number]] = None,
        constraints: Iterable = (),
        backend: Union[str, Backend] = "exact",
        tol: float = DEFAULT_TOLERANCE,
        cache: Optional[ImplicationCache] = None,
        private_cache: bool = False,
    ):
        if isinstance(backend, str):
            backend = backend_by_name(backend)
        super().__init__(backend=backend, cache=cache, private_cache=private_cache)
        if not getattr(ground, "is_dense_capable", lambda: True)():
            raise ValueError(
                f"|S| = {ground.size} exceeds the dense-table limit; "
                "incremental contexts maintain 2^n tables"
            )
        self._ground = ground
        self._n = ground.size
        self._tol = tol
        self._density = backend.zeros(1 << self._n)
        self._support: Optional[Table] = None
        self._diffs: Dict[Tuple[int, ...], Table] = {}
        #: masks with ``abs(d_f) > tol`` -- drives constraint statuses
        #: and the zero set (Definition 3.1's tolerance semantics).
        self._nonzero: set = set()
        #: masks with ``d_f != 0`` *exactly* -- drives the set-function
        #: protocol (``value`` / ``density_items``), which must agree
        #: with the live tables even for sub-tolerance residues.
        self._support_nnz: set = set()
        self._constraints: List = []
        self._viol_counts: List[int] = []
        self._violated: set = set()
        self._theory_version = 0
        self._zero_version = 0
        self._zero_cache: Optional[Tuple[int, frozenset]] = None
        self._satisfied_cache: Optional[Tuple[int, Tuple]] = None
        for c in constraints:
            self.track(c)
        if density:
            self.apply_batch(density.items())
            # seeding is not a stream event: downstream caches start fresh
            self._theory_version = 0
            self._zero_version = 0

    # ------------------------------------------------------------------
    # set-function protocol
    # ------------------------------------------------------------------
    @property
    def ground(self):
        """The ground set the tables are indexed by."""
        return self._ground

    @property
    def exact(self) -> bool:
        """Whether the backend keeps exact numbers (no float rounding)."""
        return self.backend.exact

    @property
    def tol(self) -> float:
        """Comparison tolerance (``0.0`` on exact backends)."""
        return self._tol

    def _check_mask(self, mask: int) -> None:
        if mask < 0 or mask >> self._n:
            raise ValueError(
                f"mask {mask:#x} uses bits outside the ground set of size {self._n}"
            )

    def value(self, mask: int) -> Number:
        """``f(X)``: from the live support table when materialized, else
        summed over the nonzero density entries (``O(nnz)``)."""
        self._check_mask(mask)
        if self._support is not None:
            v = self._support[mask]
            return v if self.exact else float(v)
        total = 0
        for u in self._support_nnz:
            if u & mask == mask:
                total = total + self._density[u]
        return total if self.exact else float(total)

    def __call__(self, subset) -> Number:
        return self.value(self._ground.parse(subset))

    def density_value(self, mask: int) -> Number:
        """The maintained density at one subset ``mask``."""
        self._check_mask(mask)
        v = self._density[mask]
        return v if self.exact else float(v)

    def density_items(self) -> Iterator[Tuple[int, Number]]:
        """Iterate the exactly-nonzero ``(mask, density)`` entries.

        Matches :meth:`repro.core.setfunction.SetFunction.density_items`
        (and the live :meth:`density_table`): entries below the
        tolerance but not exactly zero are still yielded, so rebuilding
        from these items reproduces the maintained tables bit for bit.
        """
        for mask in sorted(self._support_nnz):
            yield mask, self.density_value(mask)

    def support_size(self) -> int:
        """Number of nonzero density entries (sparse-function protocol)."""
        return len(self._support_nnz)

    def is_nonnegative_density(self, tol: Optional[float] = None) -> bool:
        """Whether the maintained density is everywhere ``>= -tol``."""
        tol = self._tol if tol is None else tol
        return all(self._density[u] >= -tol for u in self._support_nnz)

    # ------------------------------------------------------------------
    # live tables
    # ------------------------------------------------------------------
    def density_table(self) -> Table:
        """The live density table.  Read-only by convention: mutate only
        through :meth:`apply_delta` / :meth:`apply_batch`."""
        return self._density

    def support_table(self) -> Table:
        """The live support table ``f`` (materialized on first call, then
        maintained under deltas)."""
        if self._support is None:
            self._support = self.backend.copy(self._density)
            self.backend.superset_zeta_inplace(self._support)
        return self._support

    def differential_table(self, family) -> Table:
        """The live differential table ``D_f^Y`` for ``family``.

        Materialized on first call (one batched pass), then maintained:
        a delta at ``U`` is added below ``U`` unless ``Y`` blocks ``U``.
        """
        members = tuple(family.members)
        table = self._diffs.get(members)
        if table is None:
            table = self.backend.copy(self._density)
            batch.differential_table(table, members, self.backend)
            self._diffs[members] = table
        return table

    def _blocked(self, members: Tuple[int, ...]) -> np.ndarray:
        return self.cache.blocked_table(self._ground, members)

    # ------------------------------------------------------------------
    # constraint tracking
    # ------------------------------------------------------------------
    def track(self, constraint) -> None:
        """Monitor ``constraint``; its status is maintained per delta."""
        count = sum(1 for u in self._nonzero if _affects(constraint, u))
        self._constraints.append(constraint)
        self._viol_counts.append(count)
        if count:
            self._violated.add(len(self._constraints) - 1)
        self._theory_version += 1
        self._satisfied_cache = None

    @property
    def constraints(self) -> Tuple:
        """The watched constraints, in registration order."""
        return tuple(self._constraints)

    def is_violated(self, constraint) -> bool:
        """Current status of a tracked constraint."""
        i = self._constraints.index(constraint)
        return i in self._violated

    def violated_constraints(self) -> Tuple:
        """The tracked constraints currently violated, in tracking order."""
        return tuple(
            self._constraints[i] for i in sorted(self._violated)
        )

    def satisfied_constraints(self) -> Tuple:
        """The tracked constraints currently satisfied (cached snapshot).

        The snapshot is rebuilt only when :attr:`theory_version` moved --
        i.e. when some status actually flipped.  Callers that fingerprint
        it (the memoizing implication decider) therefore keep hitting the
        same cache entry across deltas that do not flip anything.
        """
        if (
            self._satisfied_cache is None
            or self._satisfied_cache[0] != self._theory_version
        ):
            snapshot = tuple(
                c
                for i, c in enumerate(self._constraints)
                if i not in self._violated
            )
            self._satisfied_cache = (self._theory_version, snapshot)
        return self._satisfied_cache[1]

    @property
    def theory_version(self) -> int:
        """Bumped exactly when a tracked constraint's status flips."""
        return self._theory_version

    @property
    def zero_version(self) -> int:
        """Bumped exactly when the zero set ``Z(f)`` changes."""
        return self._zero_version

    def zero_set(self, tol: Optional[float] = None) -> frozenset:
        """``Z(f)`` -- cached, invalidated only on zero crossings."""
        if tol is not None and tol != self._tol:
            # a foreign tolerance can resolve residues below self._tol
            # (absent from _nonzero), so scan the full density table
            density = self._density
            return frozenset(
                m
                for m in range(1 << self._n)
                if not abs(density[m]) > tol
            )
        if self._zero_cache is None or self._zero_cache[0] != self._zero_version:
            zeros = frozenset(
                m for m in range(1 << self._n) if m not in self._nonzero
            )
            self._zero_cache = (self._zero_version, zeros)
        return self._zero_cache[1]

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def apply_delta(self, mask: int, delta: Number) -> List[Tuple[object, bool]]:
        """Apply one density delta; returns the status flips it caused.

        Each flip is ``(constraint, now_violated)``.  Cost: ``O(2^n)``
        vectorized (float) or ``O(2^|mask|)`` scalar (exact) for each
        materialized table, plus ``O(|Y|)`` per tracked constraint when
        the entry crosses zero -- no table is ever rebuilt.
        """
        self._check_mask(mask)
        if delta == 0:
            return []
        old = self._density[mask]
        new = old + delta if self.exact else float(old) + float(delta)
        self._density[mask] = new
        self._update_tables(mask, delta)

        if new == 0:
            self._support_nnz.discard(mask)
        else:
            self._support_nnz.add(mask)
        was_nonzero = mask in self._nonzero
        now_nonzero = abs(new) > self._tol
        if was_nonzero == now_nonzero:
            return []
        # the entry crossed zero: Z(f) changed, statuses may flip
        self._zero_version += 1
        if now_nonzero:
            self._nonzero.add(mask)
        else:
            self._nonzero.discard(mask)
        step = 1 if now_nonzero else -1
        flips: List[Tuple[object, bool]] = []
        for i, constraint in enumerate(self._constraints):
            if not _affects(constraint, mask):
                continue
            count = self._viol_counts[i] + step
            self._viol_counts[i] = count
            if step > 0 and count == 1:
                self._violated.add(i)
                flips.append((constraint, True))
            elif step < 0 and count == 0:
                self._violated.discard(i)
                flips.append((constraint, False))
        if flips:
            self._theory_version += 1
        return flips

    def apply_batch(
        self, deltas: Iterable[Tuple[int, Number]]
    ) -> Tuple[Tuple, Tuple]:
        """Apply a batch of ``(mask, delta)`` pairs atomically.

        Returns ``(newly_violated, restored)`` as the *net* status
        changes over the whole batch: a constraint that flips twice
        within the batch is reported in neither tuple.
        """
        before = set(self._violated)
        version_before = self._theory_version
        for mask, delta in deltas:
            self.apply_delta(mask, delta)
        newly = tuple(
            self._constraints[i] for i in sorted(self._violated - before)
        )
        restored = tuple(
            self._constraints[i] for i in sorted(before - self._violated)
        )
        if self._theory_version != version_before:
            # collapse intra-batch churn into one net version step
            self._theory_version = version_before + (
                1 if (newly or restored) else 0
            )
        return newly, restored

    def set_density(self, mask: int, value: Number) -> List[Tuple[object, bool]]:
        """Point update: make ``d_f(mask)`` equal ``value`` (an *update*
        row op, vs the insert/delete deltas)."""
        self._check_mask(mask)
        current = self._density[mask]
        return self.apply_delta(mask, value - current)

    def _update_tables(self, mask: int, delta: Number) -> None:
        """Propagate one density delta into every materialized table."""
        targets: List[Table] = []
        if self._support is not None:
            targets.append(self._support)
        for members, table in self._diffs.items():
            if not self._blocked(members)[mask]:
                targets.append(table)
        if not targets:
            return
        # vectorized backends turn dense deltas into one masked slice
        # add and sparse deltas -- the streaming common case -- into a
        # 2^|mask| gather/scatter; either way the indicator/index array
        # is computed once here and shared across all the tables
        where = None
        if self.backend.vectorized:
            where = (
                subset_indicator(self._n, mask)
                if dense_delta(self._n, mask)
                else subset_index_array(mask)
            )
        for table in targets:
            self.backend.add_on_subsets_inplace(
                table, mask, delta, where=where
            )

    def __repr__(self) -> str:
        return (
            f"IncrementalEvalContext(|S|={self._n}, "
            f"backend={self.backend.name!r}, nnz={len(self._nonzero)}, "
            f"tracked={len(self._constraints)}, "
            f"violated={len(self._violated)})"
        )
