"""Memoized batched implication deciding (Theorem 3.5 at table speed).

Theorem 3.5 reduces ``C |= X -> Y`` to the containment
``L(X, Y) subseteq L(C)``.  The scalar decider walks ``L(X, Y)`` in
python, testing each mask against every constraint of ``C`` -- ``O(2^n)``
interpreter iterations per query.  Here both sides become boolean numpy
tables (:func:`repro.engine.batch.lattice_table`) and containment is one
vectorized ``any(target & ~covered)``.

Workloads like the E1/E5 benchmarks and ``cli implies`` / ``mine`` ask
many queries against the same ``C`` (or against sets sharing most
constraints), so the tables are memoized in an LRU keyed by structural
*fingerprints*:

* per-constraint lattice tables keyed by ``(ground, lhs, members)`` --
  shared between any constraint sets containing an equal constraint;
* joint ``L(C)`` tables (the atomic closure: ``atom(U) in C*`` iff
  ``U in L(C)``, Remark 4.5) keyed by the set fingerprint;
* family *blocked* tables keyed by ``(ground, members)`` -- reused by
  the batched differential evaluation and density-semantics
  satisfaction checks.

Fingerprints hash by value, not identity, so two equal constraint sets
built independently (as the CLI does per invocation) hit the same entry.

Duck-typed over the core objects (needs ``.ground``, ``.lhs``,
``.family.members``); imports nothing from :mod:`repro.core`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.engine import batch

__all__ = [
    "ImplicationCache",
    "shared_cache",
    "constraint_fingerprint",
    "constraint_set_fingerprint",
    "decide_batched",
    "find_uncovered_batched",
]


def constraint_fingerprint(constraint) -> Tuple:
    """Value-identity key for one constraint."""
    return (constraint.ground, constraint.lhs, constraint.family.members)


def constraint_set_fingerprint(cset) -> Tuple:
    """Value-identity key for a constraint set (order-insensitive)."""
    return (
        cset.ground,
        frozenset((c.lhs, c.family.members) for c in cset),
    )


class _Lru:
    """A small LRU dict bounded by entry count *and* total bytes.

    The byte bound matters near the dense limit: one boolean table at
    ``|S| = 22`` is 4 MB, so counting entries alone would let the
    process-wide cache grow into gigabytes on long runs.
    """

    __slots__ = ("_data", "_maxsize", "_max_bytes", "_bytes", "hits", "misses")

    def __init__(self, maxsize: int, max_bytes: int):
        self._data: OrderedDict = OrderedDict()
        self._maxsize = maxsize
        self._max_bytes = max_bytes
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if key in self._data:
            self._bytes -= getattr(self._data[key], "nbytes", 0)
        self._data[key] = value
        self._data.move_to_end(key)
        self._bytes += getattr(value, "nbytes", 0)
        while self._data and (
            len(self._data) > self._maxsize or self._bytes > self._max_bytes
        ):
            _, evicted = self._data.popitem(last=False)
            self._bytes -= getattr(evicted, "nbytes", 0)

    def clear(self) -> None:
        """Drop every memoized answer and reset the hit/miss counters."""
        self._data.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


class ImplicationCache:
    """Fingerprint-keyed store of lattice / blocked / closure tables."""

    #: Per-table-kind byte budget (64 MB each, 192 MB total worst case).
    DEFAULT_MAX_BYTES = 64 << 20

    def __init__(self, maxsize: int = 512, max_bytes: int = DEFAULT_MAX_BYTES):
        self._constraint_tables = _Lru(maxsize, max_bytes)
        self._set_tables = _Lru(maxsize, max_bytes)
        self._blocked_tables = _Lru(maxsize, max_bytes)

    # -- per-family ----------------------------------------------------
    def blocked_table(self, ground, members: Tuple[int, ...]) -> np.ndarray:
        """Memoized ``blocked_table`` for one witness family (by masks)."""
        key = (ground, tuple(members))
        table = self._blocked_tables.get(key)
        if table is None:
            table = batch.blocked_table(ground.size, members)
            table.setflags(write=False)  # shared across callers
            self._blocked_tables.put(key, table)
        return table

    # -- per-constraint ------------------------------------------------
    def lattice_table(self, constraint) -> np.ndarray:
        """Memoized ``L(X, Y)`` indicator for one constraint."""
        key = constraint_fingerprint(constraint)
        table = self._constraint_tables.get(key)
        if table is None:
            ground = constraint.ground
            blocked = self.blocked_table(ground, constraint.family.members)
            table = batch.superset_indicator(ground.size, constraint.lhs)
            table &= ~blocked
            table.setflags(write=False)
            self._constraint_tables.put(key, table)
        return table

    # -- per-set: the atomic closure L(C) ------------------------------
    def joint_lattice_table(self, cset) -> np.ndarray:
        """Memoized ``L(C)`` union indicator for a whole constraint set."""
        key = constraint_set_fingerprint(cset)
        table = self._set_tables.get(key)
        if table is None:
            table = np.zeros(1 << cset.ground.size, dtype=bool)
            for c in cset:
                table |= self.lattice_table(c)
            table.setflags(write=False)
            self._set_tables.put(key, table)
        return table

    # -- bookkeeping ---------------------------------------------------
    def clear(self) -> None:
        """Drop every memoized lattice table."""
        self._constraint_tables.clear()
        self._set_tables.clear()
        self._blocked_tables.clear()

    def stats(self) -> dict:
        """Table counts per memo family, for diagnostics and tests."""
        return {
            "constraint_tables": len(self._constraint_tables),
            "set_tables": len(self._set_tables),
            "blocked_tables": len(self._blocked_tables),
            "hits": (
                self._constraint_tables.hits
                + self._set_tables.hits
                + self._blocked_tables.hits
            ),
            "misses": (
                self._constraint_tables.misses
                + self._set_tables.misses
                + self._blocked_tables.misses
            ),
        }


#: Process-wide cache shared by default; CLI invocations and repeated
#: ``|=`` queries against equal constraint sets all land here.
_SHARED = ImplicationCache()


def shared_cache() -> ImplicationCache:
    """The process-wide cache behind :func:`default_context`."""
    return _SHARED


def decide_batched(
    cset, target, cache: Optional[ImplicationCache] = None
) -> bool:
    """``C |= target`` via vectorized table containment."""
    return find_uncovered_batched(cset, target, cache) is None


def find_uncovered_batched(
    cset, target, cache: Optional[ImplicationCache] = None
) -> Optional[int]:
    """Some ``U in L(target) - L(C)`` as a mask, or ``None``.

    Matches the scalar :func:`repro.core.implication.find_uncovered`,
    whose superset enumeration walks ``L(target)`` in *descending* mask
    order -- so the largest uncovered mask is returned.
    """
    cache = cache or _SHARED
    target_table = cache.lattice_table(target)
    covered = cache.joint_lattice_table(cset)
    uncovered = np.flatnonzero(target_table & ~covered)
    return int(uncovered[-1]) if uncovered.size else None
