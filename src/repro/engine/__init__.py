"""Batched evaluation engine: whole-table differentials, pluggable
exact/float backends, and a memoizing implication decider.

The engine is the performance layer under :mod:`repro.core`.  It
replaces three scalar hot paths with table-at-a-time computation:

* :mod:`repro.engine.backends` -- the storage split as first-class
  :class:`Backend` objects owning the zeta/Moebius butterflies: exact
  (python lists), vectorized exact (int64 ndarrays with
  overflow-checked promotion to object dtype) and float (numpy
  float64);
* :mod:`repro.engine.batch` -- ``D_f^Y(X)`` for *all* ``X`` in one
  ``O(n * 2^n)`` pass (Proposition 2.9 as a masked zeta transform), and
  boolean lattice tables for ``L(X, Y)`` / ``L(C)``;
* :mod:`repro.engine.decider` -- Theorem 3.5 containment decided by
  vectorized table operations, memoized across queries by structural
  fingerprints;
* :mod:`repro.engine.context` -- :class:`EvalContext`, the single
  handle (backend + cache) threaded through the CLI and library;
* :mod:`repro.engine.calibrate` -- the host calibrator: affinity-aware
  :func:`effective_cpus`, micro-benchmarked butterfly/process-pool
  costs persisted as a versioned per-host :class:`HostProfile`, and
  the measured planner thresholds derived from them (opt-in via
  ``REPRO_CALIBRATION``; disabled keeps plans deterministic);
* :mod:`repro.engine.plan` -- the unified planner: :class:`EngineConfig`
  (one configuration object: tier request, backend, shards, workers,
  durability, cache budgets), :class:`Planner` (the explicit cost model
  mapping workload shape and host CPUs to a :class:`Plan`), and
  :func:`build_context`, the single factory every consumer constructs
  evaluation contexts through;
* :mod:`repro.engine.incremental` -- :class:`IncrementalEvalContext`,
  delta-maintained density/support/differential tables (``O(2^n)`` per
  row delta instead of ``O(n * 2^n)`` rebuilds) with per-delta
  constraint-violation detection;
* :mod:`repro.engine.stream` -- :class:`StreamSession`, the
  transactional surface (batch of deltas -> newly violated / restored
  constraints) and the transaction-log format behind ``repro stream``;
* :mod:`repro.engine.shard` -- :class:`ShardedEvalContext`, horizontal
  sharding by density mask: per-shard density/support/differential
  tables with disjoint supports, merged exactly by elementwise sum,
  with a dirty-shard fast path over the incremental engine;
* :mod:`repro.engine.parallel` -- :class:`ParallelExecutor`, persistent
  worker processes pinned per shard (version-keyed table reuse) with a
  single-process inline fallback;
* :mod:`repro.engine.server` -- :class:`ConstraintServer`, the async
  microbatching request queue behind ``repro serve``: coalesces
  concurrent implication/check queries and memoizes answers in a
  fingerprint-keyed LRU;
* :mod:`repro.engine.persist` -- :class:`DurableStore`, durability for
  live instances: a CRC-framed write-ahead log in the ``repro stream``
  transaction format plus versioned snapshots with log compaction and
  loudly-checked crash recovery;
* :mod:`repro.engine.net` -- :class:`ReproService` /
  :class:`ReproClient`, the asyncio HTTP/JSON wire protocol in front of
  the constraint server and a durable stream session (``repro serve
  --port``): microbatching preserved, bounded-queue backpressure,
  graceful drain on SIGTERM;
* :mod:`repro.engine.quota` -- :class:`TenantQuotas`, per-tenant
  token-bucket admission control (quota ``429`` distinct from
  saturation ``503``);
* :mod:`repro.engine.fleet` -- :class:`FleetService` /
  :class:`FleetRouter`, fleet mode (``repro fleet``): consistent-hash
  tenant routing across N supervised ``repro serve`` worker processes
  with restart-on-crash backoff, SIGTERM fan-out drain, and
  :class:`ShippingStore` WAL shipping to a warm standby directory
  (``repro fleet --takeover`` recovers from it).

Layering: engine modules never import :mod:`repro.core`; the scalar
entry points in core remain as thin wrappers over this package, so the
paper-facing API is unchanged.
"""

from repro.engine.backends import (
    EXACT,
    FLOAT,
    VEC_EXACT,
    Backend,
    ExactBackend,
    FloatBackend,
    VecExactBackend,
    VecTable,
    backend_by_name,
    backend_for_table,
)
from repro.engine.batch import (
    batched_differential,
    blocked_table,
    density_table_of,
    differential_table,
    joint_lattice_table,
    lattice_table,
    superset_indicator,
)
from repro.engine.calibrate import (
    HostProfile,
    calibration_mode,
    effective_cpus,
    ensure_profile,
    load_profile,
    measure_profile,
)
from repro.engine.context import EvalContext, default_context
from repro.engine.plan import (
    EngineConfig,
    Plan,
    Planner,
    Workload,
    build_context,
    default_fleet_workers,
    default_planner,
    plan_of_context,
)
from repro.engine.incremental import (
    IncrementalEvalContext,
    add_on_subsets,
    iter_subset_masks,
    recompute_tables,
)
from repro.engine.stream import (
    StreamReport,
    StreamSession,
    parse_transaction_log,
)
from repro.engine.shard import (
    DEFAULT_JOURNAL_BOUND,
    ShardPlan,
    ShardedEvalContext,
    ShardedEvaluation,
    sum_tables,
)
from repro.engine.parallel import (
    EvalRequest,
    ParallelExecutor,
    ShardAnswer,
    ShmTable,
    WorkerCrashError,
    attach_shm_table,
    default_workers,
)
from repro.engine.server import (
    ConstraintServer,
    ServerStats,
    serve_queries,
)
from repro.engine.persist import (
    DurableStore,
    SnapshotStore,
    WriteAheadLog,
    decode_transaction,
    density_fingerprint,
    encode_transaction,
    snapshot_state,
    verify_recovered,
)
from repro.engine.net import (
    ReproClient,
    ReproService,
    ServiceError,
    ServiceHandle,
)
from repro.engine.quota import (
    QuotaPolicy,
    TenantQuotas,
    TokenBucket,
)
from repro.engine.fleet import (
    FleetRouter,
    FleetService,
    FleetSupervisor,
    FleetWorker,
    HashRing,
    ShippingStore,
)
from repro.engine.decider import (
    ImplicationCache,
    constraint_fingerprint,
    constraint_set_fingerprint,
    decide_batched,
    find_uncovered_batched,
    shared_cache,
)

__all__ = [
    "Backend",
    "ExactBackend",
    "VecExactBackend",
    "FloatBackend",
    "VecTable",
    "EXACT",
    "VEC_EXACT",
    "FLOAT",
    "backend_by_name",
    "backend_for_table",
    "batched_differential",
    "blocked_table",
    "density_table_of",
    "differential_table",
    "joint_lattice_table",
    "lattice_table",
    "superset_indicator",
    "HostProfile",
    "calibration_mode",
    "effective_cpus",
    "ensure_profile",
    "load_profile",
    "measure_profile",
    "EvalContext",
    "default_context",
    "EngineConfig",
    "Plan",
    "Planner",
    "Workload",
    "build_context",
    "default_fleet_workers",
    "default_planner",
    "plan_of_context",
    "IncrementalEvalContext",
    "add_on_subsets",
    "iter_subset_masks",
    "recompute_tables",
    "StreamReport",
    "StreamSession",
    "parse_transaction_log",
    "DEFAULT_JOURNAL_BOUND",
    "ShardPlan",
    "ShardedEvalContext",
    "ShardedEvaluation",
    "sum_tables",
    "EvalRequest",
    "ParallelExecutor",
    "ShardAnswer",
    "ShmTable",
    "WorkerCrashError",
    "attach_shm_table",
    "default_workers",
    "ConstraintServer",
    "ServerStats",
    "serve_queries",
    "DurableStore",
    "SnapshotStore",
    "WriteAheadLog",
    "decode_transaction",
    "density_fingerprint",
    "encode_transaction",
    "snapshot_state",
    "verify_recovered",
    "ReproClient",
    "ReproService",
    "ServiceError",
    "ServiceHandle",
    "QuotaPolicy",
    "TenantQuotas",
    "TokenBucket",
    "FleetRouter",
    "FleetService",
    "FleetSupervisor",
    "FleetWorker",
    "HashRing",
    "ShippingStore",
    "ImplicationCache",
    "constraint_fingerprint",
    "constraint_set_fingerprint",
    "decide_batched",
    "find_uncovered_batched",
    "shared_cache",
]
