"""Fleet mode: a routed, supervised multi-worker constraint service.

One :class:`~repro.engine.net.ReproService` process saturates one core
-- the event loop applies deltas and answers checks from the same
thread by design (see :mod:`repro.engine.net`).  Fleet mode is the
scaling rung above it: **N** independent worker processes, each a full
``repro serve`` instance with its own
:class:`~repro.engine.persist.DurableStore` data directory, behind one
front router that speaks the same wire protocol.  The pieces:

:class:`HashRing`
    Consistent hashing of tenant/session ids onto worker indexes
    (stable BLAKE2 positions, ~64 virtual nodes per worker), so a
    tenant's deltas always land on the same worker -- the per-worker
    session *is* the tenant's state -- and adding workers moves only
    ``1/N`` of the keyspace.

:class:`FleetRouter` / :class:`FleetService`
    The asyncio front end.  Requests carry a tenant id
    (``X-Repro-Tenant`` header, or a ``"tenant"`` body field); the
    router admission-tests it against per-tenant token buckets
    (:mod:`repro.engine.quota`), answers ``429 Too Many Requests`` on
    quota refusal -- *distinct* from the workers' saturation ``503`` --
    and otherwise relays the request verbatim to the routed worker.
    ``/healthz`` aggregates worker health (readiness is health-gated:
    200 only when every worker answers), ``/stats`` surfaces per-worker
    routing counts, restarts, and the quota counters.

:class:`FleetWorker` / :class:`FleetSupervisor`
    Process supervision: spawn the worker commands, parse each one's
    ``# listening on HOST:PORT`` line, restart crashed workers with
    capped exponential backoff (a worker that stayed up long enough
    resets its own backoff), and fan SIGTERM out to every worker on
    shutdown so each drains and snapshots its own store.

:class:`ShippingStore`
    WAL shipping: a :class:`~repro.engine.persist.DurableStore` that
    synchronously mirrors every append/snapshot into a *standby*
    directory.  Because :class:`~repro.engine.stream.StreamSession`
    appends to the store **before** acknowledging a commit, an
    acknowledged transaction is on disk in both directories -- so after
    losing the primary, booting from the standby (``repro fleet
    --takeover``) recovers exactly the acknowledged prefix.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`: worker processes parse their own constraint files,
and the router treats payloads as opaque JSON.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import re
import signal
import subprocess
import threading
import time
from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.net import (
    ServiceError,
    ServiceHandle,
    _HttpError,
    _READ_TIMEOUT,
    read_http_request,
    write_http_response,
)
from repro.engine.persist import DurableStore
from repro.engine.quota import QuotaPolicy, TenantQuotas

__all__ = [
    "DEFAULT_TENANT",
    "FleetRouter",
    "FleetService",
    "FleetSupervisor",
    "FleetWorker",
    "HashRing",
    "ShippingStore",
    "worker_dirs",
]

#: Tenant id assumed when a request carries none.
DEFAULT_TENANT = "default"

#: The line every worker prints once bound (also parsed by the CI e2e
#: driver); the supervisor reads the real port from it, so workers can
#: bind port 0 and restarts never fight over a stale port.
LISTENING = re.compile(r"# listening on ([\d.]+):(\d+)")


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring mapping string keys to worker indexes.

    Each worker contributes ``vnodes`` virtual points placed by a
    *stable* hash (BLAKE2b -- never the salted builtin ``hash``), so
    the mapping is identical across processes and restarts.  A key
    routes to the first point clockwise from its own hash.

    Parameters
    ----------
    count:
        Number of workers (>= 1).
    vnodes:
        Virtual nodes per worker; more gives a smoother key split.

    Raises
    ------
    ValueError
        If ``count`` or ``vnodes`` is < 1.
    """

    def __init__(self, count: int, vnodes: int = 64):
        if count < 1:
            raise ValueError(f"ring needs >= 1 worker, got {count}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._count = count
        points: List[Tuple[int, int]] = []
        for index in range(count):
            for v in range(vnodes):
                points.append((self._hash(f"worker-{index}:{v}"), index))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [i for _, i in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    @property
    def count(self) -> int:
        """How many workers the ring spreads keys across."""
        return self._count

    def route(self, key: str) -> int:
        """The worker index owning ``key`` (deterministic, stable)."""
        position = bisect_right(self._points, self._hash(key))
        if position == len(self._points):
            position = 0
        return self._owners[position]

    def __repr__(self) -> str:
        return f"HashRing(count={self._count}, points={len(self._points)})"


# ----------------------------------------------------------------------
# WAL shipping
# ----------------------------------------------------------------------
class ShippingStore(DurableStore):
    """A durable store that ships its WAL to a warm standby directory.

    Every durable write -- meta record, WAL append, snapshot -- is
    applied to the primary directory first and then mirrored
    *synchronously* into the standby.  A mirror failure raises before
    the owning session acknowledges the commit, so the invariant a
    takeover relies on holds by construction: **every acknowledged
    transaction exists in both directories**.

    The standby directory is a plain :class:`DurableStore` layout, so
    taking over is just booting a session on it (``repro fleet
    --takeover`` swaps the data/standby roots); shipping back toward
    the old primary re-seeds it as the new standby during
    :meth:`recover`.

    Parameters
    ----------
    path:
        The primary data directory (same meaning as
        :class:`DurableStore`).
    standby:
        The standby directory receiving the shipped copy.
    fsync / retain:
        Applied to both directories.

    Raises
    ------
    ValueError
        If ``standby`` and ``path`` are the same directory.
    """

    def __init__(
        self, path: str, standby: str, fsync: str = "always", retain: int = 2
    ):
        if os.path.abspath(standby) == os.path.abspath(path):
            raise ValueError(
                f"standby directory must differ from the primary ({path})"
            )
        super().__init__(path, fsync=fsync, retain=retain)
        # the standby is NOT reset here: until the primary proves
        # healthy (recover() below), the standby may be the only good
        # copy left.
        self._standby = DurableStore(standby, fsync=fsync, retain=retain)

    @property
    def standby(self) -> DurableStore:
        """The standby store the WAL is shipped to."""
        return self._standby

    def write_meta(self, meta: dict) -> None:
        """Record identity in the primary, then mirror to the standby.

        Called on first initialization of an empty primary; any stale
        state in the standby belongs to a previous life of the
        directory and is erased before the mirror.
        """
        super().write_meta(meta)
        self._standby.reset()
        self._standby.write_meta(meta)

    def append(self, seq: int, payload: bytes) -> None:
        """Append to the primary WAL, then ship to the standby WAL.

        Raises whatever either append raises; the owning session only
        acknowledges after both landed (write-ahead of the ack).
        """
        super().append(seq, payload)
        self._standby.append(seq, payload)

    def snapshot(self, payload: dict) -> str:
        """Snapshot (and compact) the primary, then the standby."""
        path = super().snapshot(payload)
        self._standby.snapshot(payload)
        return path

    def recover(self):
        """Recover the primary, then re-seed the standby to match.

        The standby is rebuilt from the *recovered* state (reset, meta,
        snapshot, WAL tail) rather than trusted incrementally: after a
        crash the two directories may disagree by a torn tail, and
        after a takeover the old primary may hold arbitrary damage.
        If primary recovery itself fails, the standby is left exactly
        as it was -- it is the copy a takeover will boot from.
        """
        recovered = super().recover()
        self._standby.reset()
        if self.meta is not None:
            self._standby.write_meta(self.meta)
        if recovered.snapshot is not None:
            self._standby.snapshots.write(recovered.snapshot)
        self._standby.wal.rewrite(recovered.tail)
        return recovered

    def close(self) -> None:
        """Close both WAL file handles."""
        super().close()
        self._standby.close()

    def __repr__(self) -> str:
        return (
            f"ShippingStore({self.path!r} -> {self._standby.path!r}, "
            f"fsync={self.wal.fsync_policy!r})"
        )


def worker_dirs(root: str, count: int) -> List[str]:
    """The per-worker data directories under ``root`` (created)."""
    dirs = []
    for index in range(count):
        path = os.path.join(root, f"worker-{index:02d}")
        os.makedirs(path, exist_ok=True)
        dirs.append(path)
    return dirs


# ----------------------------------------------------------------------
# worker processes + supervision
# ----------------------------------------------------------------------
class FleetWorker:
    """One supervised worker process and its routing counters.

    The worker is any command that prints ``# listening on HOST:PORT``
    once bound (``repro serve --port 0`` does); a pump thread reads its
    stdout, captures the address, and forwards lines to ``on_line`` for
    logging.

    Parameters
    ----------
    index:
        The worker's slot on the :class:`HashRing`.
    command:
        ``argv`` to spawn (re-used verbatim on every restart).
    on_line:
        Optional ``(index, line) -> None`` sink for worker output.
    """

    def __init__(
        self,
        index: int,
        command: Sequence[str],
        on_line: Optional[Callable[[int, str], None]] = None,
    ):
        self.index = index
        self.command = list(command)
        self._on_line = on_line
        self.proc: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._bound = threading.Event()
        #: Times this worker has been respawned after a crash.
        self.restarts = 0
        #: Requests the router has relayed to this worker.
        self.routed = 0
        #: Consecutive short-lived crashes (drives the backoff).
        self.failures = 0
        #: Monotonic gate before which the supervisor must not respawn.
        self.respawn_at = 0.0
        self._spawned_at = 0.0

    def spawn(self, env: Optional[dict] = None) -> None:
        """Start (or restart) the worker process.

        Raises
        ------
        OSError
            If the command cannot be executed at all.
        """
        self._bound.clear()
        self.host = self.port = None
        self.proc = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._spawned_at = time.monotonic()
        threading.Thread(
            target=self._pump,
            args=(self.proc,),
            name=f"fleet-worker-{self.index}-pump",
            daemon=True,
        ).start()

    def _pump(self, proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            match = LISTENING.search(line)
            if match:
                self.host = match.group(1)
                self.port = int(match.group(2))
                self._bound.set()
            if self._on_line is not None:
                self._on_line(self.index, line.rstrip("\n"))
        proc.stdout.close()

    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self.proc is not None and self.proc.poll() is None

    @property
    def uptime(self) -> float:
        """Seconds since the current process was spawned."""
        if self.proc is None:
            return 0.0
        return time.monotonic() - self._spawned_at

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` once bound and alive, else ``None``."""
        if self.alive() and self._bound.is_set():
            return self.host, self.port
        return None

    def as_dict(self) -> dict:
        """This worker's row in the router's ``/stats``."""
        return {
            "index": self.index,
            "port": self.port,
            "alive": self.alive(),
            "restarts": self.restarts,
            "routed": self.routed,
        }

    def __repr__(self) -> str:
        state = "up" if self.alive() else "down"
        return f"FleetWorker({self.index}, {state}, port={self.port})"


class FleetSupervisor:
    """Spawns, health-watches and restarts the worker processes.

    Restart policy: a crashed worker is respawned after a capped
    exponential backoff (``BACKOFF_BASE * 2^failures`` seconds, capped
    at ``BACKOFF_CAP``); a worker that survived ``HEALTHY_AGE`` seconds
    resets its failure count, so one-off crashes restart quickly while
    a crash-looping worker settles at the cap instead of spinning.
    Shutdown fans ``SIGTERM`` out to every worker -- each ``repro
    serve`` drains, snapshots and exits 0 on it -- and escalates to
    ``SIGKILL`` only past the drain timeout.

    Parameters
    ----------
    commands:
        One spawn ``argv`` per worker (index = ring slot).
    on_line:
        Optional ``(index, line) -> None`` sink for worker output.
    env:
        Environment for the workers (default: inherit).
    """

    BACKOFF_BASE = 0.5
    BACKOFF_CAP = 8.0
    HEALTHY_AGE = 10.0

    def __init__(
        self,
        commands: Sequence[Sequence[str]],
        on_line: Optional[Callable[[int, str], None]] = None,
        env: Optional[dict] = None,
    ):
        if not commands:
            raise ValueError("a fleet needs at least one worker command")
        self.workers = [
            FleetWorker(i, cmd, on_line=on_line)
            for i, cmd in enumerate(commands)
        ]
        self._env = env
        self._stopping = False

    def __len__(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    async def start(self, timeout: float = 60.0) -> None:
        """Spawn every worker and wait until all are bound and healthy.

        Raises
        ------
        ServiceError
            If any worker fails to become healthy within ``timeout``.
        """
        for worker in self.workers:
            worker.spawn(env=self._env)
        await self.wait_ready(timeout)

    async def wait_ready(self, timeout: float = 60.0) -> None:
        """Health-gated readiness: every worker must answer ``/healthz``.

        Raises
        ------
        ServiceError
            On timeout (with the first unready worker named).
        """
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            while True:
                address = worker.address
                if address is not None:
                    try:
                        status, _ = await probe_http(
                            *address, "/healthz", timeout=2.0
                        )
                        if status == 200:
                            break
                    except OSError:
                        pass
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"fleet worker {worker.index} not healthy after "
                        f"{timeout:g}s (alive={worker.alive()}, "
                        f"port={worker.port})"
                    )
                await asyncio.sleep(0.05)

    async def monitor(self, interval: float = 0.2) -> None:
        """Respawn crashed workers forever (run as a background task)."""
        while not self._stopping:
            now = time.monotonic()
            for worker in self.workers:
                if worker.alive() or worker.proc is None:
                    continue
                if worker.respawn_at == 0.0:
                    # first sight of this crash: schedule the respawn
                    if worker.uptime >= self.HEALTHY_AGE:
                        worker.failures = 0
                    delay = min(
                        self.BACKOFF_CAP,
                        self.BACKOFF_BASE * (1 << worker.failures),
                    )
                    worker.failures += 1
                    worker.respawn_at = now + delay
                elif now >= worker.respawn_at:
                    worker.respawn_at = 0.0
                    worker.restarts += 1
                    try:
                        worker.spawn(env=self._env)
                    except OSError:
                        # command gone (e.g. teardown race): retry at
                        # the next crash-scheduling pass
                        worker.respawn_at = now + self.BACKOFF_CAP
            await asyncio.sleep(interval)

    async def stop(self, timeout: float = 30.0) -> List[Optional[int]]:
        """SIGTERM fan-out drain; returns each worker's exit code.

        Workers still running after ``timeout`` seconds are killed
        (their stores recover the WAL on the next boot).
        """
        self._stopping = True
        for worker in self.workers:
            if worker.alive():
                worker.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not any(worker.alive() for worker in self.workers):
                break
            await asyncio.sleep(0.05)
        for worker in self.workers:
            if worker.alive():  # pragma: no cover - drain-timeout path
                worker.proc.kill()
                worker.proc.wait(timeout=5)
        return [
            worker.proc.returncode if worker.proc is not None else None
            for worker in self.workers
        ]

    def __repr__(self) -> str:
        up = sum(worker.alive() for worker in self.workers)
        return f"FleetSupervisor({up}/{len(self.workers)} up)"


# ----------------------------------------------------------------------
# tiny async HTTP client bits (the router's upstream side)
# ----------------------------------------------------------------------
async def probe_http(
    host: str, port: int, path: str = "/healthz", timeout: float = 2.0
) -> Tuple[int, dict]:
    """One GET against a worker; returns ``(status, decoded body)``.

    Raises
    ------
    OSError
        On connect/read failure or timeout (``asyncio.TimeoutError``
        is translated so callers handle one exception family).
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except asyncio.TimeoutError as err:
        raise OSError(f"connect to {host}:{port} timed out") from err
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    except asyncio.TimeoutError as err:
        raise OSError(f"read from {host}:{port} timed out") from err
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    try:
        status = int(head.split(None, 2)[1])
        decoded = json.loads(body) if body else {}
    except (IndexError, ValueError) as err:
        raise OSError(f"garbled response from {host}:{port}") from err
    return status, decoded


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class FleetRouter:
    """The fleet's front end: tenant routing + quotas over raw relay.

    The router terminates the client connection, extracts the tenant id
    (``X-Repro-Tenant`` header, else a ``"tenant"`` body field, else
    :data:`DEFAULT_TENANT`), admission-tests data-plane POSTs against
    the per-tenant :class:`~repro.engine.quota.TenantQuotas`, and
    relays everything else byte-for-byte to the worker the
    :class:`HashRing` owns the tenant to.  Refusal codes are kept
    disjoint on purpose:

    * ``429`` -- *this tenant* is over quota (router-issued; clients
      must not auto-retry);
    * ``503`` -- the routed worker is saturated or restarting
      (worker-issued or router-issued; idempotent requests retry).

    Handled locally instead of relayed: ``GET /healthz`` (aggregated,
    health-gated: 200 only when every worker is up), ``GET /stats``
    (routing + quota counters), ``POST /shutdown`` (stops the fleet).

    Parameters
    ----------
    supervisor:
        The worker set to route across.
    quotas:
        Per-tenant admission registry (default: unmetered).
    ring:
        Injectable :class:`HashRing` (default: one slot per worker).
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        quotas: Optional[TenantQuotas] = None,
        ring: Optional[HashRing] = None,
    ):
        self._supervisor = supervisor
        self._quotas = quotas if quotas is not None else TenantQuotas()
        self._ring = ring if ring is not None else HashRing(len(supervisor))
        if self._ring.count != len(supervisor):
            raise ValueError(
                f"ring spans {self._ring.count} workers but the fleet "
                f"has {len(supervisor)}"
            )
        self._on_stop: Optional[Callable[[], None]] = None
        self._relayed = 0
        self._throttled = 0
        self._unrouteable = 0

    @property
    def quotas(self) -> TenantQuotas:
        """The per-tenant admission registry."""
        return self._quotas

    @property
    def ring(self) -> HashRing:
        """The consistent-hash ring in use."""
        return self._ring

    def on_stop(self, callback: Callable[[], None]) -> None:
        """Register the ``/shutdown`` hook (the service's stop)."""
        self._on_stop = callback

    @staticmethod
    def tenant_of(headers: dict, body: dict) -> str:
        """The tenant id a request routes/meters by."""
        tenant = headers.get("x-repro-tenant")
        if not tenant:
            tenant = body.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            tenant = DEFAULT_TENANT
        return tenant

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (parse, admit, route, relay)."""
        try:
            try:
                request = await asyncio.wait_for(
                    read_http_request(reader), timeout=_READ_TIMEOUT
                )
                if request is None:
                    return
                method, path, headers, body = request
            except asyncio.TimeoutError:
                write_http_response(
                    writer, 408, {"error": "request not received in time"}
                )
                return
            except _HttpError as err:
                write_http_response(writer, err.status, {"error": err.message})
                return
            await self._dispatch(writer, method, path, headers, body)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, writer, method: str, path: str, headers: dict, body: dict
    ) -> None:
        if path == "/healthz" and method == "GET":
            status, payload = await self.health_payload()
            write_http_response(writer, status, payload)
            return
        if path == "/stats" and method == "GET":
            write_http_response(writer, 200, self.stats_payload())
            return
        if path == "/shutdown" and method == "POST":
            write_http_response(writer, 200, {"stopping": True})
            if self._on_stop is not None:
                self._on_stop()
            return
        if method != "POST":
            write_http_response(
                writer, 405, {"error": f"{method} not allowed on {path}"}
            )
            return
        tenant = self.tenant_of(headers, body)
        allowed, retry_after = self._quotas.admit(tenant)
        if not allowed:
            # quota refusal: a 429, not a 503 -- "your budget", not
            # "our capacity"; clients must not auto-retry it
            self._throttled += 1
            write_http_response(
                writer,
                429,
                {
                    "error": f"tenant {tenant!r} is over its request quota",
                    "tenant": tenant,
                },
                (("Retry-After", str(int(retry_after))),),
            )
            return
        worker = self._supervisor.workers[self._ring.route(tenant)]
        address = worker.address
        if address is None:
            # the routed worker is down/restarting: transient -> 503
            self._unrouteable += 1
            write_http_response(
                writer,
                503,
                {"error": f"worker {worker.index} is restarting, retry"},
                (("Retry-After", "1"),),
            )
            return
        worker.routed += 1
        self._relayed += 1
        await self._relay(writer, address, method, path, tenant, body)

    async def _relay(
        self,
        writer,
        address: Tuple[str, int],
        method: str,
        path: str,
        tenant: str,
        body: dict,
    ) -> None:
        """Forward one request upstream and stream the reply back."""
        host, port = address
        payload = json.dumps(body).encode()
        upstream = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"X-Repro-Tenant: {tenant}\r\n"
            "Connection: close\r\n\r\n"
        ).encode() + payload
        try:
            up_reader, up_writer = await asyncio.open_connection(host, port)
        except OSError:
            write_http_response(
                writer,
                503,
                {"error": "worker connection refused, retry"},
                (("Retry-After", "1"),),
            )
            return
        try:
            up_writer.write(upstream)
            await up_writer.drain()
            # workers close after one response: relay bytes to EOF
            while True:
                chunk = await up_reader.read(1 << 16)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            # mid-relay upstream failure: the response head may already
            # be on the client wire, so the only honest move is to drop
            # the connection (the client surfaces a transport error)
            writer.transport.abort()
        finally:
            up_writer.close()
            try:
                await up_writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    async def health_payload(self) -> Tuple[int, dict]:
        """Aggregate worker health; 200 only when every worker is ok."""
        workers = self._supervisor.workers

        async def one(worker: FleetWorker) -> dict:
            address = worker.address
            row = {"index": worker.index, "alive": worker.alive()}
            if address is None:
                row["status"] = "down"
                return row
            try:
                status, health = await probe_http(
                    *address, "/healthz", timeout=2.0
                )
            except OSError as err:
                row["status"] = f"unreachable: {err}"
                return row
            row["status"] = "ok" if status == 200 else f"http {status}"
            row["transactions"] = health.get("transactions")
            row["violated"] = health.get("violated")
            return row

        rows = await asyncio.gather(*(one(worker) for worker in workers))
        ready = sum(1 for row in rows if row["status"] == "ok")
        all_ok = ready == len(workers)
        return (200 if all_ok else 503), {
            "status": "ok" if all_ok else "degraded",
            "workers": rows,
            "ready": ready,
            "fleet": len(workers),
        }

    def stats_payload(self) -> dict:
        """Routing + supervision + quota counters (``GET /stats``)."""
        return {
            "fleet": len(self._supervisor),
            "relayed": self._relayed,
            "throttled": self._throttled,
            "unrouteable": self._unrouteable,
            "restarts": sum(w.restarts for w in self._supervisor.workers),
            "workers": [w.as_dict() for w in self._supervisor.workers],
            "quota": self._quotas.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"FleetRouter({len(self._supervisor)} workers, "
            f"relayed={self._relayed}, throttled={self._throttled})"
        )


# ----------------------------------------------------------------------
# the composed service
# ----------------------------------------------------------------------
class FleetService:
    """Router + supervisor with the :class:`ReproService` lifecycle.

    Duck-types the single-process service's surface -- ``run()``,
    ``serve_forever()``, ``start_in_thread()``, ``request_stop()``,
    ``host``/``port`` -- so :class:`~repro.engine.net.ServiceHandle`,
    the benchmark harness and the CLI treat one worker and a fleet the
    same way.

    Parameters
    ----------
    commands:
        One worker spawn ``argv`` per ring slot (each must print the
        ``# listening on`` line; ``repro serve --port 0`` does).
    host / port:
        The router's bind address (port 0 = OS-assigned).
    quota:
        Default per-tenant policy (``None`` = unmetered).
    on_ready:
        ``(host, port) -> None`` once the router socket is bound.
    on_line:
        Optional sink for worker stdout lines.
    ready_timeout:
        Seconds allowed for the whole fleet to become healthy.
    env:
        Worker process environment (default: inherit).
    """

    def __init__(
        self,
        commands: Sequence[Sequence[str]],
        host: str = "127.0.0.1",
        port: int = 0,
        quota: Optional[QuotaPolicy] = None,
        on_ready: Optional[Callable[[str, int], None]] = None,
        on_line: Optional[Callable[[int, str], None]] = None,
        ready_timeout: float = 60.0,
        env: Optional[dict] = None,
    ):
        self.supervisor = FleetSupervisor(commands, on_line=on_line, env=env)
        self.router = FleetRouter(
            self.supervisor, quotas=TenantQuotas(policy=quota)
        )
        self._host = host
        self._port = port
        self._on_ready = on_ready
        self._ready_timeout = ready_timeout
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set = set()

    @property
    def host(self) -> str:
        """The router's bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The router's bound port (meaningful once ready)."""
        return self._port

    def request_stop(self) -> None:
        """Begin the shutdown drain (call from the service's loop; from
        other threads use :meth:`ServiceHandle.stop`)."""
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    async def run(self, install_signal_handlers: bool = True) -> None:
        """Boot the fleet, route until stopped, then drain everything.

        Order on the way down mirrors the way up: stop accepting, await
        in-flight relays, SIGTERM fan-out to the workers (each drains
        and snapshots its own store), join them.

        Raises
        ------
        ServiceError
            If the fleet fails health-gated readiness on boot.
        """
        loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.router.on_stop(self._stopping.set)
        installed = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stopping.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        try:
            await self.supervisor.start(timeout=self._ready_timeout)
        except ServiceError:
            await self.supervisor.stop(timeout=10.0)
            raise
        monitor = asyncio.ensure_future(self.supervisor.monitor())
        server = await asyncio.start_server(
            self._wrap_connection, host=self._host, port=self._port
        )
        try:
            self._port = server.sockets[0].getsockname()[1]
            if self._on_ready is not None:
                self._on_ready(self._host, self._port)
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._connections:
                await asyncio.gather(
                    *list(self._connections), return_exceptions=True
                )
            monitor.cancel()
            try:
                await monitor
            except asyncio.CancelledError:
                pass
            await self.supervisor.stop()
            for sig in installed:
                loop.remove_signal_handler(sig)

    async def _wrap_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self.router.handle_connection(reader, writer)
        finally:
            self._connections.discard(task)

    def serve_forever(self) -> None:
        """Blocking entry point (the CLI's ``repro fleet``)."""
        asyncio.run(self.run())

    def start_in_thread(self, timeout: float = 90.0) -> ServiceHandle:
        """Run the fleet on a daemon thread; returns a handle with the
        router's bound port (same contract as
        :meth:`ReproService.start_in_thread`).

        Raises
        ------
        ServiceError
            If the fleet is not ready within ``timeout`` seconds.
        """
        ready = threading.Event()
        previous_on_ready = self._on_ready

        def _mark_ready(host: str, port: int) -> None:
            if previous_on_ready is not None:
                previous_on_ready(host, port)
            ready.set()

        self._on_ready = _mark_ready
        holder: dict = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            holder["loop"] = loop
            try:
                loop.run_until_complete(
                    self.run(install_signal_handlers=False)
                )
            except BaseException as err:
                holder["error"] = err
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="repro-fleet", daemon=True)
        thread.start()
        started = time.monotonic()
        while not ready.wait(timeout=0.05):
            if not thread.is_alive() or "error" in holder:
                thread.join(timeout=5)
                raise ServiceError(
                    f"fleet failed to start: {holder.get('error')!r}"
                ) from holder.get("error")
            if time.monotonic() - started >= timeout:
                self.request_stop()
                raise ServiceError(
                    f"fleet failed to become ready within {timeout:g}s"
                )
        return ServiceHandle(self, thread, holder["loop"])

    def __repr__(self) -> str:
        return f"FleetService({len(self.supervisor)} workers, port={self._port})"
