"""Per-tenant admission control: token buckets for the fleet router.

The service layer already refuses *saturation* with ``503`` (the
bounded-queue backpressure in :mod:`repro.engine.net`): that signal
means "the process is full, anyone may retry".  A multi-tenant fleet
needs a second, different refusal -- "*this tenant* is over its
budget" -- that fires before a request consumes a worker slot and that
well-behaved tenants never see.  This module provides it:

:class:`TokenBucket`
    The classic leaky-bucket admission test on a monotonic clock:
    a bucket holds at most ``burst`` tokens, refills at ``rate``
    tokens/second, and each admitted request spends one.  The clock is
    injectable so tests are deterministic.

:class:`QuotaPolicy`
    The per-tenant configuration (``rate``/``burst``), with
    ``unlimited()`` for fleets that do not meter.

:class:`TenantQuotas`
    The registry the router consults: one lazily created bucket per
    tenant id, ``admit(tenant)`` -> allowed / refused (with a
    retry-after hint), and counters (admitted / throttled, per tenant
    and total) surfaced in the router's ``/stats``.

Quota refusals travel as HTTP ``429 Too Many Requests`` -- distinct
from saturation ``503`` so clients and dashboards can tell "slow down
forever" from "retry in a moment".  :class:`~repro.engine.net.ReproClient`
retries idempotent 503s but **never** retries a 429: a quota refusal is
policy, not weather.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["QuotaPolicy", "TenantQuotas", "TokenBucket"]


class TokenBucket:
    """One tenant's admission bucket: ``burst`` capacity, ``rate``/s refill.

    The bucket starts full (a quiet tenant can always burst).  Not
    thread-safe on its own -- :class:`TenantQuotas` serializes access.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Callable[[], float]] = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/sec, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self) -> bool:
        """Spend one token if available; ``False`` means throttle."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one is ready)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """The current (refilled) token balance."""
        self._refill()
        return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate:g}/s, burst={self.burst:g})"


class QuotaPolicy:
    """Per-tenant budget: ``rate`` requests/second, ``burst`` capacity.

    ``rate=None`` means unmetered (every tenant is always admitted);
    :meth:`unlimited` spells that out.  ``burst`` defaults to one
    second's worth of rate (at least 1).
    """

    __slots__ = ("rate", "burst")

    def __init__(self, rate: Optional[float] = None, burst: Optional[float] = None):
        if rate is not None and rate <= 0:
            raise ValueError(f"quota rate must be > 0 req/s, got {rate}")
        if burst is not None and burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1.0, rate) if rate is not None else None
        )

    @classmethod
    def unlimited(cls) -> "QuotaPolicy":
        """The no-metering policy (what a single-tenant fleet runs)."""
        return cls(rate=None)

    @property
    def metered(self) -> bool:
        """Whether this policy meters at all."""
        return self.rate is not None

    def bucket(self, clock=None) -> Optional[TokenBucket]:
        """A fresh bucket enforcing this policy (None when unmetered)."""
        if not self.metered:
            return None
        return TokenBucket(self.rate, self.burst, clock=clock)

    def as_dict(self) -> dict:
        """JSON-friendly form (the router's ``/stats`` quota block)."""
        return {"rate": self.rate, "burst": self.burst, "metered": self.metered}

    def __repr__(self) -> str:
        if not self.metered:
            return "QuotaPolicy(unlimited)"
        return f"QuotaPolicy(rate={self.rate:g}/s, burst={self.burst:g})"


class Admission(Tuple):
    """``(allowed, retry_after_seconds)`` -- named for readability."""


class TenantQuotas:
    """The router's per-tenant bucket registry.

    One :class:`TokenBucket` per tenant id, created lazily from the
    default :class:`QuotaPolicy` (per-tenant overrides via
    ``overrides={tenant: QuotaPolicy(...)}``).  Thread-safe: the router
    admits from asyncio callbacks, the stats endpoint reads from
    wherever.
    """

    def __init__(
        self,
        policy: Optional[QuotaPolicy] = None,
        overrides: Optional[Dict[str, QuotaPolicy]] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._policy = policy if policy is not None else QuotaPolicy.unlimited()
        self._overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: Dict[str, Optional[TokenBucket]] = {}
        self._admitted: Dict[str, int] = {}
        self._throttled: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def policy(self) -> QuotaPolicy:
        """The default policy tenants fall back to."""
        return self._policy

    def policy_for(self, tenant: str) -> QuotaPolicy:
        """The policy governing ``tenant`` (override or default)."""
        return self._overrides.get(tenant, self._policy)

    def _bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant, _MISSING)
        if bucket is _MISSING:
            bucket = self.policy_for(tenant).bucket(clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> Tuple[bool, float]:
        """Admission-test one request for ``tenant``.

        Returns ``(allowed, retry_after)``: ``retry_after`` is the
        ``Retry-After`` hint in seconds (whole seconds, >= 1) when
        refused, ``0.0`` when admitted.
        """
        with self._lock:
            bucket = self._bucket_for(tenant)
            if bucket is None or bucket.try_acquire():
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
                return True, 0.0
            self._throttled[tenant] = self._throttled.get(tenant, 0) + 1
            return False, max(1.0, math.ceil(bucket.retry_after()))

    @property
    def throttled(self) -> int:
        """Total requests refused with 429 across all tenants."""
        with self._lock:
            return sum(self._throttled.values())

    @property
    def admitted(self) -> int:
        """Total requests admitted across all tenants."""
        with self._lock:
            return sum(self._admitted.values())

    def as_dict(self) -> dict:
        """The ``/stats`` quota block: policy + per-tenant counters."""
        with self._lock:
            tenants = sorted(set(self._admitted) | set(self._throttled))
            return {
                "policy": self._policy.as_dict(),
                "admitted": sum(self._admitted.values()),
                "throttled": sum(self._throttled.values()),
                "tenants": {
                    tenant: {
                        "admitted": self._admitted.get(tenant, 0),
                        "throttled": self._throttled.get(tenant, 0),
                    }
                    for tenant in tenants
                },
            }

    def __repr__(self) -> str:
        return (
            f"TenantQuotas({self._policy!r}, "
            f"tenants={len(self._buckets)})"
        )


_MISSING = object()
