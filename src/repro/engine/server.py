"""The constraint server: async microbatching over the cached decider.

Serving workloads ask many small questions -- ``C |= target?`` from
concurrent clients, ``does the live instance satisfy c?`` from monitors.
Answering each arrival individually repeats dispatch overhead and, far
worse, recomputes answers that identical concurrent requests are about
to recompute again.  :class:`ConstraintServer` puts an asyncio
*microbatching* queue in front of the engine:

1. the dispatcher sleeps until a request arrives, then drains the queue
   for at most ``max_delay`` seconds or ``max_batch`` requests;
2. the batch is *coalesced*: requests with equal fingerprint keys
   (:func:`repro.engine.decider.constraint_fingerprint` -- value
   identity, so equal constraints built independently coalesce) are
   computed once and fan the answer back out to every waiter;
3. answers are memoized in an LRU-bounded cache keyed by the same
   fingerprints, so repeated queries across batches are cache hits that
   never reach the decider at all.

Implication queries key on ``(fingerprint(C), fingerprint(target))``
and are immutable -- cached forever (up to the LRU bound).  Instance
checks key additionally on the live context's :attr:`zero_version`,
the incremental engine's counter that moves exactly when the zero set
``Z(f)`` changes -- stale entries therefore miss automatically after
any status-relevant delta, and benign deltas keep hitting the cache.

:func:`serve_queries` is the synchronous convenience wrapper used by
``repro serve``: it submits every query concurrently (so coalescing is
actually exercised) and returns the answers with the server stats.

Duck-typed like the rest of the engine; imports nothing from core.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence, Tuple

from repro.engine.decider import (
    ImplicationCache,
    _Lru,
    constraint_fingerprint,
    constraint_set_fingerprint,
    decide_batched,
    shared_cache,
)

__all__ = ["ConstraintServer", "ServerStats", "serve_queries"]

_STOP = object()


class ServerStats:
    """Counters describing how the server earned its keep."""

    __slots__ = ("requests", "batches", "coalesced", "cache_hits", "computed")

    def __init__(self):
        self.requests = 0
        #: Dispatcher wake-ups (each serves one drained batch).
        self.batches = 0
        #: Requests answered by riding another request in the same batch.
        self.coalesced = 0
        #: Distinct batch queries answered from the LRU without computing.
        self.cache_hits = 0
        #: Unique computations actually performed.
        self.computed = 0
        # the three request outcomes are disjoint, so
        # requests == coalesced + cache_hits + computed always holds

    def as_dict(self) -> dict:
        """The counters as a plain dict (the ``/stats`` server block)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServerStats({inner})"


class ConstraintServer:
    """Async microbatching front end for implication and instance checks.

    Parameters
    ----------
    constraints:
        The constraint set ``C`` that ``implies`` queries are decided
        against (anything the batched decider accepts).
    instance:
        Optional live instance for ``check`` queries -- an
        :class:`~repro.engine.incremental.IncrementalEvalContext`
        (sharded or not) or any object with the set-function density
        protocol.  Version-keyed caching needs ``zero_version``.
    max_batch / max_delay:
        Microbatch bounds: a batch closes at ``max_batch`` requests or
        after ``max_delay`` seconds past the first arrival.
    cache_size:
        LRU bound on memoized answers (default: the config's budget
        when one is supplied, else 4096).
    cache:
        The :class:`ImplicationCache` handed to the decider (the
        process-wide shared one by default).
    config:
        An optional :class:`repro.engine.EngineConfig`: supplies the
        answer-LRU budget (``cache_size``) and the private-cache flag,
        so one config object configures the whole serving stack.
    """

    def __init__(
        self,
        constraints,
        instance=None,
        max_batch: int = 64,
        max_delay: float = 0.002,
        cache_size: Optional[int] = None,
        cache: Optional[ImplicationCache] = None,
        config=None,
    ):
        if cache_size is None:
            # one EngineConfig supplies the cache budgets for the whole
            # serving stack (see repro.engine.plan); an explicit
            # cache_size always wins over the config's budget
            cache_size = config.cache_size if config is not None else 4096
        if config is not None and cache is None and config.private_cache:
            cache = ImplicationCache()
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._cset = constraints
        self._cset_fp = constraint_set_fingerprint(constraints)
        self._instance = instance
        self._max_batch = max_batch
        self._max_delay = max_delay
        self._answers = _Lru(cache_size, max_bytes=16 << 20)
        self._decider_cache = cache if cache is not None else shared_cache()
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self.stats = ServerStats()

    @property
    def instance(self):
        """The live instance ``check`` queries run against."""
        return self._instance

    def set_instance(self, instance) -> None:
        """Rebind the live instance (the tier-promotion handoff).

        Memoized ``check`` answers stay coherent because they are keyed
        by the instance's ``zero_version`` and a promotion hands that
        counter over exactly; computation is synchronous on the event
        loop, so a rebind can never race a batch mid-flight.
        """
        self._instance = instance

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ConstraintServer":
        """Start the dispatcher task; returns self for chaining."""
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Drain the queue and cancel the dispatcher task."""
        if self._dispatcher is None:
            return
        queue = self._queue
        await queue.put(_STOP)
        await self._dispatcher
        # requests racing the sentinel must not hang their awaiters:
        # serve whatever landed in the queue after the stop marker
        leftovers = []
        while not queue.empty():
            item = queue.get_nowait()
            if item is not _STOP:
                leftovers.append(item)
        if leftovers:
            self._serve_batch(leftovers)
        self._dispatcher = None
        self._queue = None

    async def __aenter__(self) -> "ConstraintServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    async def implies(self, target) -> bool:
        """``C |= target`` (microbatched, coalesced, memoized)."""
        key = ("implies", self._cset_fp, constraint_fingerprint(target))
        return await self._submit(key, ("implies", target))

    async def check(self, constraint) -> bool:
        """Whether the live instance satisfies ``constraint``.

        Keyed by the instance's ``zero_version`` when available, so a
        delta that changes ``Z(f)`` invalidates exactly the stale
        answers; instances without versions are computed per batch
        (still coalesced, never memoized across batches).
        """
        if self._instance is None:
            raise RuntimeError("this server has no live instance to check")
        version = getattr(self._instance, "zero_version", None)
        fp = constraint_fingerprint(constraint)
        if version is None:
            # still coalesced within a batch (the instance cannot change
            # mid-batch: computation is synchronous on the event loop),
            # just never memoized across batches
            key = ("check-unversioned", fp)
            return await self._submit(key, ("check", constraint), memoize=False)
        key = ("check", version, fp)
        return await self._submit(key, ("check", constraint))

    async def _submit(self, key, work, memoize: bool = True) -> bool:
        if self._queue is None:
            raise RuntimeError("server not started (use 'async with')")
        self.stats.requests += 1
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((key, work, memoize, future))
        return await future

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _STOP:
                return
            batch = [item]
            deadline = loop.time() + self._max_delay
            while len(batch) < self._max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            self._serve_batch(batch)

    def _serve_batch(self, batch) -> None:
        self.stats.batches += 1
        groups: dict = {}
        for key, work, memoize, future in batch:
            groups.setdefault(key, (work, memoize, []))[2].append(future)
        self.stats.coalesced += len(batch) - len(groups)
        for key, (work, memoize, futures) in groups.items():
            answer = self._answers.get(key) if memoize else None
            if answer is None:
                answer = self._compute(work)
                if memoize:
                    self._answers.put(key, answer)
                self.stats.computed += 1
            else:
                self.stats.cache_hits += 1
            for future in futures:
                if not future.done():
                    future.set_result(answer)

    def _compute(self, work) -> bool:
        kind, payload = work
        if kind == "implies":
            ground = getattr(self._cset, "ground", None)
            dense_ok = ground is None or getattr(
                ground, "is_dense_capable", lambda: True
            )()
            if dense_ok:
                return decide_batched(
                    self._cset, payload, self._decider_cache
                )
            # past the dense-table limit the batched decider would
            # allocate 2^|S| tables; defer to the constraint set's own
            # decision procedure (method="auto" picks the SAT route)
            return self._cset.implies(payload, method="auto")
        if kind == "check":
            fanout = getattr(self._instance, "evaluate", None)
            if fanout is not None:
                # sharded instances answer through the per-shard fan-out
                # (any-over-shards is exact under mask routing), which
                # runs on the instance's attached executor when it has one
                return not fanout(constraints=[payload]).violated[0]
            return payload.satisfied_by(self._instance)
        raise ValueError(f"unknown work kind {kind!r}")

    def __repr__(self) -> str:
        state = "running" if self._dispatcher is not None else "stopped"
        return (
            f"ConstraintServer({state}, max_batch={self._max_batch}, "
            f"answers={len(self._answers)})"
        )


def serve_queries(
    constraints,
    queries: Sequence[Tuple[str, object]],
    instance=None,
    **server_kwargs,
) -> Tuple[List[bool], ServerStats]:
    """Answer ``("implies" | "check", constraint)`` queries via one server.

    All queries are submitted concurrently, so identical neighbors
    coalesce into shared computations exactly as they would under real
    concurrent load.  Returns the answers in query order plus the
    server's stats.  This is the engine behind ``repro serve``.
    """
    async def _run() -> List[bool]:
        async with ConstraintServer(
            constraints, instance=instance, **server_kwargs
        ) as server:
            tasks = []
            for kind, constraint in queries:
                if kind == "implies":
                    tasks.append(server.implies(constraint))
                elif kind == "check":
                    tasks.append(server.check(constraint))
                else:
                    raise ValueError(f"unknown query kind {kind!r}")
            answers = await asyncio.gather(*tasks)
            stats = server.stats
            return list(answers), stats

    answers, stats = asyncio.run(_run())
    return answers, stats
