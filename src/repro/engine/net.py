"""The wire protocol: an asyncio HTTP/JSON front end for ``repro serve``.

:class:`ReproService` puts a small, dependency-free HTTP/1.1 server in
front of the engine stack: implication and instance checks flow through
the :class:`~repro.engine.server.ConstraintServer` microbatching queue
(concurrent duplicates still coalesce, answers are still memoized),
density deltas flow through a :class:`~repro.engine.stream.StreamSession`
(write-ahead logged first when the session is durable), and support
probes read the live tables.  Endpoints:

==============  ======  ====================================================
path            method  body -> response
==============  ======  ====================================================
``/healthz``    GET     -> ``{"status", "transactions", "violated", ...}``
``/stats``      GET     -> microbatching counters + session state + the
                        resolved engine plan (tier/backend/shards/
                        workers, online promotions)
``/implies``    POST    ``{"constraint": "A -> B, CD"}`` -> ``{"implied"}``
``/check``      POST    ``{"constraint": ...}`` -> ``{"satisfied"}``
``/delta``      POST    ``{"ops": ["+ AB 3", "- C"]}`` (one transaction,
                        ``repro stream`` syntax) -> the commit report
``/probe``      POST    ``{"subset": "AB"}`` -> ``{"support"}``
``/snapshot``   POST    force a durable snapshot -> ``{"tx"}``
``/shutdown``   POST    graceful drain + stop -> ``{"stopping": true}``
==============  ======  ====================================================

Operational behavior:

* **Backpressure**: at most ``queue_size`` requests are admitted
  concurrently; excess arrivals are refused immediately with ``503``
  and a ``Retry-After`` hint instead of queueing without bound.
* **Write ordering**: deltas and snapshots are serialized through one
  lock, so WAL append -> apply stays atomic and recovery order equals
  acknowledgement order.  Commits (including the WAL fsync) run
  *synchronously on the event loop* -- deliberately: the check path
  reads the live tables from the same loop, so an off-thread apply
  would race it.  A durable service that must absorb write bursts
  should run with ``fsync="never"`` (the OS flushes; recovery treats a
  lost suffix as a torn tail) rather than move commits off the loop.
* **Graceful drain**: ``SIGTERM``/``SIGINT`` (or ``POST /shutdown``)
  stops accepting connections, drains in-flight requests, stops the
  microbatcher, snapshots a durable session, and closes the store.

:class:`ReproClient` is the matching blocking client (stdlib
``http.client``), used by tests, the CI end-to-end driver and scripts.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`: constraint texts are parsed by a caller-provided
``parse_constraint`` callable (the CLI passes
``DifferentialConstraint.parse`` bound to the ground set), and subsets
go through the session ground's ``parse``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import signal
import socket
import threading
import time
from fractions import Fraction
from typing import Callable, Optional, Tuple

from repro.engine.server import ConstraintServer
from repro.engine.stream import StreamSession, parse_transaction_log
from repro.errors import PersistenceError

__all__ = [
    "ReproClient",
    "ReproService",
    "ServiceError",
    "ServiceHandle",
    "read_http_request",
    "write_http_response",
]

_MAX_BODY = 8 << 20  # refuse absurd request bodies rather than buffer them

#: How long a connection may take to deliver its request.  Bounds the
#: graceful drain too: an idle or wedged client cannot hold the service
#: open past this (the drain awaits every accepted connection task).
_READ_TIMEOUT = 30.0


class ServiceError(Exception):
    """A wire-protocol failure, carrying the HTTP status when known."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, dict, dict]]:
    """Parse one HTTP/1.1 request from ``reader``.

    Returns ``(method, path, headers, body)`` -- headers lower-cased,
    body the decoded JSON object (``{}`` when there is none) -- or
    ``None`` if the peer closed before sending a request line.

    Raises
    ------
    _HttpError
        With status 400 for malformed framing/JSON and 413 for bodies
        over the 8 MiB cap.

    Shared by :class:`ReproService` and the fleet router
    (:class:`repro.engine.fleet.FleetRouter`), so both speak exactly
    the same dialect.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, path, _version = parts
    headers: dict = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", 0))
    except ValueError:
        raise _HttpError(400, "bad Content-Length")
    if length > _MAX_BODY:
        raise _HttpError(413, f"body over {_MAX_BODY} bytes")
    body: dict = {}
    if length:
        try:
            raw = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _HttpError(
                400, "connection closed before Content-Length bytes"
            )
        try:
            body = json.loads(raw)
        except ValueError as err:
            raise _HttpError(400, f"request body is not JSON: {err}")
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
    return method, path, headers, body


def write_http_response(
    writer: asyncio.StreamWriter, status: int, payload: dict,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> None:
    """Serialize one ``Connection: close`` JSON response onto ``writer``.

    Shared by :class:`ReproService` and the fleet router; does not
    flush -- the caller drains/closes the writer.
    """
    body = json.dumps(payload).encode()
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    headers.extend(f"{k}: {v}" for k, v in extra_headers)
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)


def _json_value(value):
    """A support/density value as JSON: ints/floats pass, exact
    rationals travel as strings (parsed back by the client)."""
    if isinstance(value, (int, float)):
        return value
    return str(value)


def _parse_scalar(value):
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str) and "/" in value:
        return Fraction(value)
    return value


class ReproService:
    """One serving instance: session + microbatcher behind HTTP/JSON.

    Parameters
    ----------
    constraints:
        The constraint set ``C`` that ``/implies`` is decided against.
    session:
        The live :class:`StreamSession` behind ``/check``, ``/delta``
        and ``/probe`` (durable or not).  ``None`` builds an empty
        in-memory session over ``constraints.ground``.
    parse_constraint:
        ``text -> constraint`` for request bodies.  Defaults to
        ``constraints.parse`` when the set provides one.
    host / port:
        Bind address; port ``0`` asks the OS for a free port (read the
        bound port from :attr:`port` or the ``on_ready`` callback).
    queue_size:
        Concurrent-request admission bound (backpressure): past it,
        requests are refused with 503 instead of queueing unboundedly.
    max_batch / max_delay / cache_size:
        Passed to the underlying :class:`ConstraintServer`.
    on_ready:
        ``(host, port) -> None`` called once the socket is bound (the
        CLI prints the listening line from it).
    config:
        The :class:`repro.engine.EngineConfig` the service boots from:
        with no ``session`` it is planned into the live session (via
        the single :func:`repro.engine.plan.build_context` factory) and
        it supplies the microbatcher's cache budgets; the resolved plan
        is stamped into ``/stats`` under ``"engine"``.
    """

    def __init__(
        self,
        constraints,
        session: Optional[StreamSession] = None,
        parse_constraint: Optional[Callable[[str], object]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 128,
        max_batch: int = 64,
        max_delay: float = 0.002,
        cache_size: Optional[int] = None,
        on_ready: Optional[Callable[[str, int], None]] = None,
        config=None,
    ):
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self._cset = constraints
        if session is None:
            # the service boots from exactly one EngineConfig: the
            # planner resolves it and the session constructs its
            # context through the single build_context factory
            session = StreamSession(
                constraints.ground,
                constraints=getattr(constraints, "constraints", ()),
                config=config,
            )
        self._session = session
        self._config = config if config is not None else session.config
        if parse_constraint is None:
            parse_constraint = getattr(constraints, "parse", None)
        if parse_constraint is None:
            raise ValueError(
                "parse_constraint is required when the constraint set "
                "has no .parse"
            )
        self._parse_constraint = parse_constraint
        self._host = host
        self._port = port
        self._queue_size = queue_size
        self._batcher = ConstraintServer(
            constraints,
            instance=session.context,
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=cache_size,
            config=config,
        )
        self._on_ready = on_ready
        self._inflight = 0
        self._refused = 0
        self._connections: set = set()
        self._drained: Optional[asyncio.Event] = None
        self._stopping: Optional[asyncio.Event] = None
        self._write_lock: Optional[asyncio.Lock] = None

    # ------------------------------------------------------------------
    @property
    def session(self) -> StreamSession:
        """The durable stream session deltas commit through."""
        return self._session

    @property
    def port(self) -> int:
        """The bound port (meaningful once the service is ready)."""
        return self._port

    @property
    def host(self) -> str:
        """The bind address the service listens on."""
        return self._host

    def request_stop(self) -> None:
        """Begin a graceful drain (thread-safe only via its own loop --
        external threads should use :meth:`ServiceHandle.stop`)."""
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict]]:
        """One parsed request as ``(method, path, body)`` (or ``None``
        on a silent close); framing errors raise :class:`_HttpError`."""
        request = await read_http_request(reader)
        if request is None:
            return None
        method, path, _headers, body = request
        return method, path, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: dict,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        """Emit one JSON response (see :func:`write_http_response`)."""
        write_http_response(writer, status, payload, extra_headers)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=_READ_TIMEOUT
                )
                if request is None:
                    return
                method, path, body = request
            except asyncio.TimeoutError:
                self._write_response(
                    writer, 408, {"error": "request not received in time"}
                )
                return
            except _HttpError as err:
                self._write_response(
                    writer, err.status, {"error": err.message}
                )
                return
            if self._inflight >= self._queue_size:
                # backpressure: refuse instead of queueing unboundedly
                self._refused += 1
                self._write_response(
                    writer,
                    503,
                    {"error": "server overloaded, retry"},
                    (("Retry-After", "1"),),
                )
                return
            self._inflight += 1
            try:
                status, payload = await self._dispatch(method, path, body)
            except _HttpError as err:
                status, payload = err.status, {"error": err.message}
            except Exception as err:  # noqa: BLE001 - wire boundary
                status, payload = 500, {"error": f"{type(err).__name__}: {err}"}
            finally:
                self._inflight -= 1
                if self._inflight == 0 and self._drained is not None:
                    self._drained.set()
            self._write_response(writer, status, payload)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: dict
    ) -> Tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, self._health_payload()
        if path == "/stats" and method == "GET":
            stats = dict(self._batcher.stats.as_dict())
            stats["refused"] = self._refused
            stats["inflight"] = self._inflight
            # the resolved engine plan the service is running (changes
            # tier if the live auto session promotes online)
            stats["engine"] = self._session.plan.as_dict()
            stats["engine"]["promotions"] = self._session.promotions
            stats["engine"]["calibration"] = self._session.calibration
            # sharded sessions report their transport counters (deltas
            # shipped vs full resyncs vs shm bytes, per shard)
            stats["engine"]["transport"] = self._session.transport
            return 200, stats
        if method != "POST":
            return 405, {"error": f"{method} not allowed on {path}"}
        if path == "/implies":
            answer = await self._batcher.implies(self._constraint_of(body))
            return 200, {"implied": answer}
        if path == "/check":
            answer = await self._batcher.check(self._constraint_of(body))
            return 200, {"satisfied": answer}
        if path == "/delta":
            return await self._handle_delta(body)
        if path == "/probe":
            subset = body.get("subset")
            if subset is None:
                raise _HttpError(400, "probe body needs 'subset'")
            try:
                value = self._session.support(subset)
            except Exception as err:
                raise _HttpError(400, f"bad subset {subset!r}: {err}")
            return 200, {"subset": subset, "support": _json_value(value)}
        if path == "/snapshot":
            if not self._session.durable:
                raise _HttpError(400, "session is not durable (no --data-dir)")
            async with self._write_lock:
                self._session.snapshot()
            return 200, {"tx": self._session.transactions, "snapshot": True}
        if path == "/shutdown":
            self.request_stop()
            return 200, {"stopping": True}
        return 404, {"error": f"no such endpoint {path}"}

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "transactions": self._session.transactions,
            "tracked": len(self._session.context.constraints),
            "violated": len(self._session.violated_constraints()),
            "durable": self._session.durable,
            "backend": self._session.context.backend.name,
        }

    def _constraint_of(self, body: dict):
        text = body.get("constraint")
        if not isinstance(text, str):
            raise _HttpError(400, "body needs a 'constraint' string")
        try:
            return self._parse_constraint(text)
        except Exception as err:
            raise _HttpError(400, f"bad constraint {text!r}: {err}")

    async def _handle_delta(self, body: dict) -> Tuple[int, dict]:
        ops = body.get("ops")
        if isinstance(ops, str):
            ops = ops.splitlines()
        if not isinstance(ops, list) or not all(
            isinstance(line, str) for line in ops
        ):
            raise _HttpError(400, "delta body needs 'ops': list of log lines")
        try:
            transactions = parse_transaction_log(self._session.ground, ops)
        except Exception as err:
            raise _HttpError(400, f"bad transaction: {err}")
        if len(transactions) != 1:
            raise _HttpError(
                400,
                f"one transaction per request, got {len(transactions)} "
                "(drop the extra 'commit' lines)",
            )
        async with self._write_lock:
            report = self._session.apply_ops(transactions[0])
            if self._batcher.instance is not self._session.context:
                # the live auto session promoted its tier: point the
                # microbatcher at the new context
                self._batcher.set_instance(self._session.context)
        fmt = repr
        return 200, {
            "tx": report.tx,
            "newly_violated": [fmt(c) for c in report.newly_violated],
            "restored": [fmt(c) for c in report.restored],
            "violated": [fmt(c) for c in report.violated],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until SIGTERM/SIGINT or ``/shutdown``, then drain.

        The drain order is deliberate: stop accepting, wait for
        in-flight requests, stop the microbatcher, snapshot a durable
        session, close the store -- so a graceful exit always leaves a
        compacted data directory that recovers instantly.
        """
        loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._write_lock = asyncio.Lock()
        installed = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stopping.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        await self._batcher.start()
        server = await asyncio.start_server(
            self._wrap_connection, host=self._host, port=self._port
        )
        try:
            self._port = server.sockets[0].getsockname()[1]
            if self._on_ready is not None:
                self._on_ready(self._host, self._port)
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            # wait_closed() does not wait for connection handlers before
            # py3.12: connections accepted pre-close may still be reading
            # their request (not yet counted in _inflight), so drain the
            # handler tasks themselves, then any admitted requests
            if self._connections:
                await asyncio.gather(
                    *list(self._connections), return_exceptions=True
                )
            if self._inflight:
                self._drained.clear()
                await self._drained.wait()
            await self._batcher.stop()
            for sig in installed:
                loop.remove_signal_handler(sig)
            try:
                if self._session.durable:
                    async with self._write_lock:
                        try:
                            self._session.snapshot()
                        except PersistenceError:
                            # wedged (a logged commit failed to apply)
                            # or store-level damage: the WAL remains
                            # authoritative and the reopen path heals,
                            # so the drain must still close and exit 0
                            pass
            finally:
                self._session.close()

    async def _wrap_connection(self, reader, writer) -> None:
        # connections racing the drain are served; new ones are not
        # accepted once the listener closes.  The task registry lets the
        # drain await handlers that were accepted but have not yet been
        # admitted into _inflight.
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        finally:
            self._connections.discard(task)

    def serve_forever(self) -> None:
        """Blocking entry point (the CLI's ``repro serve --port``)."""
        asyncio.run(self.run())

    def start_in_thread(self, timeout: float = 30.0) -> "ServiceHandle":
        """Run the service on a daemon thread; returns a handle with the
        bound port.  Used by tests, docs and the benchmark harness.
        Raises :class:`ServiceError` if the service has not bound its
        port within ``timeout`` seconds (measured on a monotonic clock,
        not inferred from wait quanta)."""
        ready = threading.Event()
        previous_on_ready = self._on_ready

        def _mark_ready(host: str, port: int) -> None:
            if previous_on_ready is not None:
                previous_on_ready(host, port)
            ready.set()

        self._on_ready = _mark_ready
        holder: dict = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            holder["loop"] = loop
            try:
                loop.run_until_complete(
                    self.run(install_signal_handlers=False)
                )
            except BaseException as err:  # surfaced to the waiter below
                holder["error"] = err
            finally:
                loop.close()

        thread = threading.Thread(
            target=_run, name="repro-service", daemon=True
        )
        thread.start()
        started = time.monotonic()
        while not ready.wait(timeout=0.05):
            if not thread.is_alive() or "error" in holder:
                thread.join(timeout=5)
                raise ServiceError(
                    f"service failed to start: {holder.get('error')!r}"
                ) from holder.get("error")
            elapsed = time.monotonic() - started
            if elapsed >= timeout:
                raise ServiceError(
                    f"service failed to become ready after {elapsed:.2f}s "
                    f"(timeout {timeout:g}s)"
                )
        return ServiceHandle(self, thread, holder["loop"])


class ServiceHandle:
    """A running in-thread service: its port, and a way to stop it."""

    def __init__(self, service: ReproService, thread: threading.Thread, loop):
        self.service = service
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        """The running service's bound port."""
        return self.service.port

    @property
    def host(self) -> str:
        """The running service's bind address."""
        return self.service.host

    def client(self, **kwargs) -> "ReproClient":
        """A :class:`ReproClient` pointed at this service."""
        return ReproClient(self.host, self.port, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and join the service thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise ServiceError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ReproClient:
    """Small blocking HTTP client for the wire protocol.

    One connection per request (the protocol closes connections), so a
    client object is cheap, stateless and safe to share across threads.

    The server's bounded admission queue refuses excess load with
    ``503 "server overloaded, retry"``; the client honors that hint
    with up to ``retries`` jittered-backoff retries -- but **only for
    idempotent requests** (every GET, plus the read-only POSTs:
    ``/implies``, ``/check``, ``/probe``).  A ``/delta`` is never
    retried automatically: the refusal races the commit on the wire,
    and replaying a transaction that might have been applied would
    double-commit it.  Non-503 failures always surface immediately --
    in particular a quota ``429`` from the fleet router is **never**
    retried: a 503 means "the queue is momentarily full, back off and
    try again", a 429 means "this tenant is over its budget" and
    hammering the router will not mint new tokens.

    Parameters
    ----------
    host / port / timeout:
        Where to connect and the per-request socket timeout (seconds).
    retries / backoff / max_backoff:
        The 503 retry budget: up to ``retries`` attempts with
        exponential full-jitter backoff starting at ``backoff`` seconds
        and capped at ``max_backoff``.
    rng:
        Jitter source (injectable for deterministic tests).
    tenant:
        Optional tenant id sent as ``X-Repro-Tenant`` on every request;
        the fleet router routes and meters by it.  ``None`` (the
        default) lets the router fall back to its default tenant.

    Raises
    ------
    ValueError
        If ``retries`` is negative.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 80,
                 timeout: float = 30.0, retries: int = 4,
                 backoff: float = 0.05, max_backoff: float = 1.0,
                 rng: Optional[random.Random] = None,
                 tenant: Optional[str] = None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._rng = rng if rng is not None else random.Random()
        self._tenant = tenant

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        idempotent: Optional[bool] = None,
    ) -> dict:
        if idempotent is None:
            idempotent = method == "GET"
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as err:
                if (
                    err.status != 503
                    or not idempotent
                    or attempt >= self._retries
                ):
                    raise
            # exponential backoff with full jitter: refused peers must
            # not reconverge on the queue in lockstep
            delay = min(self._max_backoff, self._backoff * (1 << attempt))
            time.sleep(delay * (0.5 + self._rng.random()))
            attempt += 1

    def _request_once(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            if self._tenant is not None:
                headers["X-Repro-Tenant"] = self._tenant
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, socket.timeout, OSError) as err:
                raise ServiceError(
                    f"{method} {path} failed: {err}"
                ) from err
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError as err:
                raise ServiceError(
                    f"{method} {path}: non-JSON response ({err})",
                    status=response.status,
                ) from err
            if response.status != 200:
                raise ServiceError(
                    f"{method} {path} -> {response.status}: "
                    f"{decoded.get('error', raw[:200])}",
                    status=response.status,
                )
            return decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``: readiness plus instance counters."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``: queue depth and request counters."""
        return self._request("GET", "/stats")

    def implies(self, constraint: str) -> bool:
        """``C |= constraint`` through the microbatching server."""
        return self._request(
            "POST", "/implies", {"constraint": constraint}, idempotent=True
        )["implied"]

    def check(self, constraint: str) -> bool:
        """Whether the live instance satisfies ``constraint``."""
        return self._request(
            "POST", "/check", {"constraint": constraint}, idempotent=True
        )["satisfied"]

    def delta(self, ops) -> dict:
        """Commit one transaction of ``repro stream`` op lines."""
        if isinstance(ops, str):
            ops = ops.splitlines()
        return self._request("POST", "/delta", {"ops": list(ops)})

    def probe(self, subset: str):
        """The live support of ``subset`` (exact values round-trip)."""
        return _parse_scalar(
            self._request(
                "POST", "/probe", {"subset": subset}, idempotent=True
            )["support"]
        )

    def snapshot(self) -> dict:
        """Force a durable snapshot (and WAL compaction)."""
        return self._request("POST", "/snapshot")

    def shutdown(self) -> dict:
        """Ask the service to drain gracefully and exit."""
        return self._request("POST", "/shutdown")

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (for freshly
        spawned processes); raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceError as err:
                last = err
                time.sleep(interval)
        raise ServiceError(f"service not ready after {timeout}s: {last}")

    def __repr__(self) -> str:
        return f"ReproClient({self._host}:{self._port})"
