"""The :class:`EvalContext`: one handle over backend choice and caches.

An ``EvalContext`` bundles the two pieces of evaluation policy that used
to be threaded ad hoc through the library:

* which numeric **backend** tables are computed on (``"exact"`` python
  numbers or ``"float"`` numpy float64), previously an ``exact`` bool
  duplicated across call sites -- ``backend=None`` (the default) infers
  the backend from each operand's own storage, preserving the historic
  behavior;
* which :class:`~repro.engine.decider.ImplicationCache` memoizes lattice
  and blocked tables between queries -- the process-wide shared cache
  unless a private one is requested.

The CLI's ``--backend {exact,float}`` flag constructs one of these and
hands it down; library callers mostly rely on :func:`default_context`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.backends import (
    Backend,
    EXACT,
    FLOAT,
    backend_by_name,
)
from repro.engine.decider import ImplicationCache, shared_cache

__all__ = ["EvalContext", "default_context"]


class EvalContext:
    """Evaluation policy: numeric backend + memoization cache.

    Parameters
    ----------
    backend:
        ``"exact"``, ``"float"``, a :class:`Backend` instance, or
        ``None`` to infer per-operand (exact operands stay exact).
    cache:
        An :class:`ImplicationCache`; defaults to the process-wide
        shared cache.  Pass ``private_cache=True`` for an isolated one.
    """

    # __weakref__ lets subclasses register weakref.finalize cleanup
    # (ShardedEvalContext reclaims owned executors that way)
    __slots__ = ("_backend", "_cache", "__weakref__")

    def __init__(
        self,
        backend: Union[str, Backend, None] = None,
        cache: Optional[ImplicationCache] = None,
        private_cache: bool = False,
    ):
        if isinstance(backend, str):
            backend = backend_by_name(backend)
        self._backend = backend
        if cache is None:
            cache = ImplicationCache() if private_cache else shared_cache()
        self._cache = cache

    @property
    def backend(self) -> Optional[Backend]:
        """The forced backend, or ``None`` when inferring per-operand."""
        return self._backend

    @property
    def cache(self) -> ImplicationCache:
        """The fingerprint-keyed table cache this context memoizes into."""
        return self._cache

    @property
    def exact(self) -> bool:
        """Whether a forced backend is exact (inferring contexts say False)."""
        return bool(self._backend is not None and self._backend.exact)

    def backend_for(self, f) -> Backend:
        """The backend to evaluate ``f`` on: forced, else ``f``'s own."""
        if self._backend is not None:
            return self._backend
        return EXACT if getattr(f, "exact", True) else FLOAT

    def __repr__(self) -> str:
        name = self._backend.name if self._backend is not None else "inherit"
        return f"EvalContext(backend={name!r})"


#: Module default: infer backend per operand, share the process cache.
_DEFAULT = EvalContext()


def default_context() -> EvalContext:
    """The process-wide shared context (shared implication cache)."""
    return _DEFAULT
