"""Numeric table backends: the exact/float split as a first-class object.

Every dense computation in the library happens on a *table*: a length
``2^n`` sequence indexed by subset mask.  Historically each call site
branched on an ``exact`` flag (python list of ints/Fractions vs numpy
float64 array), duplicating the butterfly transforms and the comparison
logic across :mod:`repro.core.setfunction`, :mod:`repro.core.transforms`
and :mod:`repro.core.lattice`.  This module centralizes that split:

:class:`ExactBackend`
    Tables are plain python lists; arithmetic is exact (``int``,
    ``fractions.Fraction`` -- anything with ``+``/``-``).  Used when
    constraints must be checked without floating-point tolerance.

:class:`FloatBackend`
    Tables are ``numpy.float64`` arrays; butterflies are vectorized
    strided adds -- the fast path.

Both expose the same small interface (allocate, copy, scatter, the four
zeta/Moebius butterflies, masked zeroing and masked comparisons), so the
batched evaluation engine (:mod:`repro.engine.batch`) is written once.

This module deliberately imports nothing from :mod:`repro.core`; it is
the bottom layer of the engine and safe to import from anywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Backend",
    "ExactBackend",
    "FloatBackend",
    "EXACT",
    "FLOAT",
    "backend_by_name",
    "backend_for_table",
    "n_bits_for",
]

Table = Union[np.ndarray, List]


def n_bits_for(length: int) -> int:
    """``n`` such that ``length == 2^n``; raises on non-powers of two."""
    n = length.bit_length() - 1
    if length <= 0 or (1 << n) != length:
        raise ValueError(f"table length {length} is not a power of two")
    return n


class Backend:
    """Interface over one storage mode for dense subset-indexed tables."""

    name: str = "abstract"
    exact: bool = False

    # -- allocation ----------------------------------------------------
    def zeros(self, size: int) -> Table:
        raise NotImplementedError

    def full(self, size: int, value) -> Table:
        """A table with every entry equal to ``value``."""
        raise NotImplementedError

    def copy(self, values: Sequence) -> Table:
        """A fresh table of this backend's storage mode with ``values``."""
        raise NotImplementedError

    def adopt(self, values: Sequence) -> Table:
        """Take ownership of a table the caller freshly allocated.

        Converts storage mode only when needed -- unlike :meth:`copy`
        it will NOT duplicate a table that is already in this backend's
        format, so only pass tables nobody else holds a reference to.
        """
        raise NotImplementedError

    def scatter(self, size: int, items: Iterable[Tuple[int, object]]) -> Table:
        """A table with ``items`` summed into their mask positions."""
        table = self.zeros(size)
        for mask, value in items:
            table[mask] = table[mask] + value
        return table

    # -- butterflies ---------------------------------------------------
    def superset_zeta_inplace(self, values: Table) -> None:
        raise NotImplementedError

    def superset_mobius_inplace(self, values: Table) -> None:
        raise NotImplementedError

    def subset_zeta_inplace(self, values: Table) -> None:
        raise NotImplementedError

    def subset_mobius_inplace(self, values: Table) -> None:
        raise NotImplementedError

    # -- masked elementwise helpers ------------------------------------
    def zero_where(self, values: Table, where: np.ndarray) -> None:
        """In place: ``values[i] <- 0`` wherever ``where[i]`` is true."""
        raise NotImplementedError

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        """Whether some ``|values[i]| > tol`` with ``where[i]`` true."""
        raise NotImplementedError

    def first_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ):
        """Smallest ``i`` with ``where[i]`` and ``|values[i]| > tol``, else None."""
        raise NotImplementedError

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class ExactBackend(Backend):
    """Python-list tables over exact numbers (``int``, ``Fraction``)."""

    name = "exact"
    exact = True

    def zeros(self, size: int) -> list:
        return [0] * size

    def full(self, size: int, value) -> list:
        return [value] * size

    def copy(self, values: Sequence) -> list:
        if isinstance(values, np.ndarray):
            return [v for v in values.tolist()]
        return list(values)

    def adopt(self, values: Sequence) -> list:
        if isinstance(values, list):
            return values
        return self.copy(values)

    def superset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if not mask & bit:
                    values[mask] = values[mask] + values[mask | bit]

    def superset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if not mask & bit:
                    values[mask] = values[mask] - values[mask | bit]

    def subset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if mask & bit:
                    values[mask] = values[mask] + values[mask ^ bit]

    def subset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if mask & bit:
                    values[mask] = values[mask] - values[mask ^ bit]

    def zero_where(self, values: Table, where: np.ndarray) -> None:
        for i in np.flatnonzero(where):
            values[i] = 0

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        # ``abs(v) > tol`` (not ``v != 0``) matches the historic scalar
        # checks, which apply the tolerance to exact values as well.
        return any(abs(values[i]) > tol for i in np.flatnonzero(where))

    def first_nonzero_where(self, values: Table, where: np.ndarray, tol: float):
        for i in np.flatnonzero(where):
            if abs(values[i]) > tol:
                return int(i)
        return None

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        if tol == 0:
            return all(v >= 0 for v in values)
        return all(v >= -tol for v in values)


class FloatBackend(Backend):
    """``numpy.float64`` tables with vectorized strided butterflies."""

    name = "float"
    exact = False

    def zeros(self, size: int) -> np.ndarray:
        return np.zeros(size)

    def full(self, size: int, value) -> np.ndarray:
        return np.full(size, float(value))

    def copy(self, values: Sequence) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).copy()

    def adopt(self, values: Sequence) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def scatter(self, size: int, items) -> np.ndarray:
        table = np.zeros(size)
        for mask, value in items:
            table[mask] += value
        return table

    def superset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 0, :] += view[:, 1, :]

    def superset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 0, :] -= view[:, 1, :]

    def subset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 1, :] += view[:, 0, :]

    def subset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 1, :] -= view[:, 0, :]

    def zero_where(self, values: Table, where: np.ndarray) -> None:
        values[where] = 0.0

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        return bool(np.any(np.abs(values[where]) > tol))

    def first_nonzero_where(self, values: Table, where: np.ndarray, tol: float):
        hits = np.flatnonzero(where & (np.abs(values) > tol))
        return int(hits[0]) if hits.size else None

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        return bool(np.all(np.asarray(values) >= -tol))


#: Shared singletons -- backends are stateless.
EXACT = ExactBackend()
FLOAT = FloatBackend()

_BY_NAME = {"exact": EXACT, "float": FLOAT}


def backend_by_name(name: str) -> Backend:
    """Look up ``"exact"`` / ``"float"``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def backend_for_table(values: Sequence) -> Backend:
    """The backend that owns a given table's storage mode."""
    return FLOAT if isinstance(values, np.ndarray) else EXACT
