"""Numeric table backends: the exact/float split as a first-class object.

Every dense computation in the library happens on a *table*: a length
``2^n`` sequence indexed by subset mask.  Historically each call site
branched on an ``exact`` flag (python list of ints/Fractions vs numpy
float64 array), duplicating the butterfly transforms and the comparison
logic across :mod:`repro.core.setfunction`, :mod:`repro.core.transforms`
and :mod:`repro.core.lattice`.  This module centralizes that split:

:class:`ExactBackend`
    Tables are plain python lists; arithmetic is exact (``int``,
    ``fractions.Fraction`` -- anything with ``+``/``-``).  Used when
    constraints must be checked without floating-point tolerance.

:class:`VecExactBackend`
    Tables are :class:`VecTable` wrappers over numpy ``int64`` arrays;
    butterflies are the same strided adds as the float backend, but
    arithmetic stays exact through an overflow-checked promotion
    ladder: ``int64`` array -> object-dtype array (python ints /
    Fractions, still vectorized through numpy's object loops) -- the
    plain list path of :class:`ExactBackend` remains the fallback for
    callers that never adopt a :class:`VecTable`.  Promotion happens
    *before* any add that could leave ``int64``, so exactness is never
    silently lost; non-int values (Fractions) route straight to object
    dtype.

:class:`FloatBackend`
    Tables are ``numpy.float64`` arrays; butterflies are vectorized
    strided adds -- the fast lossy path.

All expose the same small interface (allocate, copy, scatter, the four
zeta/Moebius butterflies, masked zeroing/comparisons, the per-delta
subset add and the shard merge-by-sum), so the batched evaluation
engine (:mod:`repro.engine.batch`), the incremental maintenance loop
and the shard merge are each written once.

This module deliberately imports nothing from :mod:`repro.core`; it is
the bottom layer of the engine and safe to import from anywhere.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Backend",
    "ExactBackend",
    "VecExactBackend",
    "FloatBackend",
    "VecTable",
    "EXACT",
    "VEC_EXACT",
    "FLOAT",
    "backend_by_name",
    "backend_for_table",
    "calibration_values",
    "iter_subset_masks",
    "subset_indicator",
    "subset_index_array",
    "dense_delta",
    "n_bits_for",
]

Table = Union[np.ndarray, List, "VecTable"]

_INT64_MAX = 2**63 - 1
_INT64_MIN = -(2**63)
#: One butterfly add at most doubles the magnitude; entries beyond this
#: could overflow int64 on the next add, so the table promotes first.
_BUTTERFLY_HEADROOM = 2**62 - 1
#: Tolerances beyond float64's exact-integer range cannot be compared
#: against int64 entries in float space; such calls fall back to exact
#: python comparisons (python compares int to float exactly).
_FLOAT64_EXACT = 2**52


def n_bits_for(length: int) -> int:
    """``n`` such that ``length == 2^n``; raises on non-powers of two."""
    n = length.bit_length() - 1
    if length <= 0 or (1 << n) != length:
        raise ValueError(f"table length {length} is not a power of two")
    return n


def iter_subset_masks(mask: int) -> Iterator[int]:
    """Iterate all ``2^|mask|`` subsets of ``mask`` (descending order)."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def subset_indicator(n: int, mask: int) -> np.ndarray:
    """Boolean table ``T[X] = [X subseteq mask]`` over all ``2^n`` masks."""
    masks = np.arange(1 << n, dtype=np.int64)
    return (masks | mask) == mask


#: A single-delta update touches ``2^|mask|`` entries; a full-width
#: masked add touches all ``2^n``.  Below this touched fraction the
#: subset fancy-index path wins even with numpy gather/scatter overhead.
_SPARSE_SUBSET_FRACTION = 8


def dense_delta(n: int, mask: int) -> bool:
    """Whether a delta on ``mask`` should update ``2^n`` tables through
    a full-width masked add (dense) rather than the ``2^|mask|`` subset
    index path -- single-row streaming deltas are usually sparse."""
    return (1 << bin(mask).count("1")) * _SPARSE_SUBSET_FRACTION > (1 << n)


def subset_index_array(mask: int) -> np.ndarray:
    """All ``2^|mask|`` subset masks of ``mask`` as an index array."""
    return np.fromiter(
        iter_subset_masks(mask), dtype=np.intp, count=1 << bin(mask).count("1")
    )


def _fits_int64(value) -> bool:
    """Whether ``value`` is a plain int representable in int64.

    ``bool`` is excluded on purpose (it is an ``int`` subclass but
    tables should store numbers); numpy integer scalars are accepted.
    """
    if type(value) is bool:
        return False
    return (
        isinstance(value, (int, np.integer))
        and _INT64_MIN <= value <= _INT64_MAX
    )


def _exact_array(values: Sequence) -> np.ndarray:
    """A fresh ndarray holding ``values`` exactly: int64 when every
    entry is an in-range int, object dtype otherwise (Fractions, big
    ints).  Never silently truncates -- floats go to object dtype too,
    mirroring what a python list would store."""
    lst = list(values)
    if all(type(v) is int for v in lst):
        try:
            return np.array(lst, dtype=np.int64)
        except OverflowError:
            pass
    arr = np.empty(len(lst), dtype=object)
    arr[:] = lst
    return arr


class VecTable:
    """A dense exact table: an int64 ndarray until overflow threatens.

    The promotion ladder's middle rung: reads hand back plain python
    numbers (so ``list(table)`` equals the :class:`ExactBackend` list
    bit for bit), writes that do not fit int64 promote the storage to
    an object-dtype array in place.  Pickles across process boundaries
    (the sharded executor ships these between workers).
    """

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray):
        self.arr = arr

    @property
    def is_object(self) -> bool:
        """Whether the table has promoted off the int64 fast path."""
        return self.arr.dtype == object

    def promote(self) -> None:
        """Switch to object dtype (boxes every entry as a python int)."""
        if self.arr.dtype != object:
            self.arr = self.arr.astype(object)

    def __len__(self) -> int:
        return len(self.arr)

    def __getitem__(self, i):
        v = self.arr[i]
        return int(v) if self.arr.dtype != object else v

    def __setitem__(self, i, value) -> None:
        if self.arr.dtype != object:
            if _fits_int64(value):
                self.arr[i] = int(value)
                return
            self.promote()
        self.arr[i] = value

    def __iter__(self):
        # .tolist() yields python ints from int64 storage and the raw
        # objects (ints, Fractions) from object storage
        return iter(self.arr.tolist())

    def tolist(self) -> list:
        """The table as a plain python list (ints stay exact)."""
        return self.arr.tolist()

    def __eq__(self, other) -> bool:
        if isinstance(other, VecTable):
            other = other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "object" if self.is_object else "int64"
        return f"VecTable(len={len(self.arr)}, dtype={kind})"


class Backend:
    """Interface over one storage mode for dense subset-indexed tables."""

    name: str = "abstract"
    exact: bool = False
    #: Whether masked slice arithmetic is the fast path; vectorized
    #: backends receive a precomputed subset indicator in
    #: :meth:`add_on_subsets_inplace` instead of the scalar subset walk.
    vectorized: bool = False

    # -- allocation ----------------------------------------------------
    def zeros(self, size: int) -> Table:
        """A zero-filled table of ``size`` entries."""
        raise NotImplementedError

    def full(self, size: int, value) -> Table:
        """A table with every entry equal to ``value``."""
        raise NotImplementedError

    def copy(self, values: Sequence) -> Table:
        """A fresh table of this backend's storage mode with ``values``."""
        raise NotImplementedError

    def adopt(self, values: Sequence) -> Table:
        """Take ownership of a table the caller freshly allocated.

        Converts storage mode only when needed -- unlike :meth:`copy`
        it will NOT duplicate a table that is already in this backend's
        format, so only pass tables nobody else holds a reference to.
        """
        raise NotImplementedError

    def scatter(self, size: int, items: Iterable[Tuple[int, object]]) -> Table:
        """A table with ``items`` summed into their mask positions."""
        table = self.zeros(size)
        for mask, value in items:
            table[mask] = table[mask] + value
        return table

    # -- butterflies ---------------------------------------------------
    def superset_zeta_inplace(self, values: Table) -> None:
        """In place: ``values[X] <- sum of values[Y] for Y superseteq X``."""
        raise NotImplementedError

    def superset_mobius_inplace(self, values: Table) -> None:
        """In place: invert :meth:`superset_zeta_inplace` (Moebius)."""
        raise NotImplementedError

    def subset_zeta_inplace(self, values: Table) -> None:
        """In place: ``values[X] <- sum of values[Y] for Y subseteq X``."""
        raise NotImplementedError

    def subset_mobius_inplace(self, values: Table) -> None:
        """In place: invert :meth:`subset_zeta_inplace` (Moebius)."""
        raise NotImplementedError

    # -- maintenance / merge -------------------------------------------
    def add_on_subsets_inplace(
        self, values: Table, mask: int, delta, where=None
    ) -> None:
        """In place: ``values[X] += delta`` for every ``X subseteq mask``.

        The single-delta maintenance primitive (support and unblocked
        differential tables are density sums over masks above each
        position).  ``where`` may pass a precomputed
        :func:`subset_indicator` (bool mask, dense deltas) or
        :func:`subset_index_array` (index array, sparse deltas) so
        vectorized backends share it across several tables; scalar
        backends walk the ``2^|mask|`` subsets either way.
        """
        for sub in iter_subset_masks(mask):
            values[sub] = values[sub] + delta

    def sum_tables(self, tables: Sequence[Table]) -> Table:
        """Elementwise sum of same-length tables -- the shard merge."""
        tables = list(tables)
        if not tables:
            raise ValueError("sum_tables needs at least one table")
        merged = self.copy(tables[0])
        for table in tables[1:]:
            for i, v in enumerate(table):
                if v != 0:
                    merged[i] = merged[i] + v
        return merged

    # -- masked elementwise helpers ------------------------------------
    def zero_where(self, values: Table, where: np.ndarray) -> None:
        """In place: ``values[i] <- 0`` wherever ``where[i]`` is true."""
        raise NotImplementedError

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        """Whether some ``|values[i]| > tol`` with ``where[i]`` true."""
        raise NotImplementedError

    def first_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ):
        """Smallest ``i`` with ``where[i]`` and ``|values[i]| > tol``, else None."""
        raise NotImplementedError

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        """Whether every entry is ``>= -tol`` (density admissibility)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class ExactBackend(Backend):
    """Python-list tables over exact numbers (``int``, ``Fraction``)."""

    name = "exact"
    exact = True

    def zeros(self, size: int) -> list:
        return [0] * size

    def full(self, size: int, value) -> list:
        return [value] * size

    def copy(self, values: Sequence) -> list:
        if isinstance(values, np.ndarray):
            # .tolist() already builds a fresh list of python scalars
            return values.tolist()
        return list(values)

    def adopt(self, values: Sequence) -> list:
        if isinstance(values, list):
            return values
        return self.copy(values)

    def superset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if not mask & bit:
                    values[mask] = values[mask] + values[mask | bit]

    def superset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if not mask & bit:
                    values[mask] = values[mask] - values[mask | bit]

    def subset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if mask & bit:
                    values[mask] = values[mask] + values[mask ^ bit]

    def subset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            bit = 1 << i
            for mask in range(len(values)):
                if mask & bit:
                    values[mask] = values[mask] - values[mask ^ bit]

    def zero_where(self, values: Table, where: np.ndarray) -> None:
        # one .tolist() hands back python ints; indexing with np.int64
        # scalars would re-box on every store
        for i in np.flatnonzero(where).tolist():
            values[i] = 0

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        # ``abs(v) > tol`` (not ``v != 0``) matches the historic scalar
        # checks, which apply the tolerance to exact values as well.
        return any(abs(values[i]) > tol for i in np.flatnonzero(where).tolist())

    def first_nonzero_where(self, values: Table, where: np.ndarray, tol: float):
        for i in np.flatnonzero(where).tolist():
            if abs(values[i]) > tol:
                return i
        return None

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        if tol == 0:
            return all(v >= 0 for v in values)
        return all(v >= -tol for v in values)


class VecExactBackend(Backend):
    """:class:`VecTable` storage: exact arithmetic, vectorized transforms.

    The butterflies run as the same strided slice adds as
    :class:`FloatBackend`; before each level a headroom check promotes
    int64 storage to object dtype if any entry's magnitude could leave
    int64 after one add, so results equal :class:`ExactBackend`'s bit
    for bit on every input (property-tested).  Object-dtype arrays keep
    the slice-add shape -- numpy loops ``PyNumber_Add`` in C, which
    still beats the pure-python double loop.
    """

    name = "exact-vec"
    exact = True
    vectorized = True

    def zeros(self, size: int) -> VecTable:
        return VecTable(np.zeros(size, dtype=np.int64))

    def full(self, size: int, value) -> VecTable:
        if _fits_int64(value):
            return VecTable(np.full(size, int(value), dtype=np.int64))
        arr = np.empty(size, dtype=object)
        arr[:] = [value] * size
        return VecTable(arr)

    def copy(self, values: Sequence) -> VecTable:
        if isinstance(values, VecTable):
            return VecTable(values.arr.copy())
        if isinstance(values, np.ndarray) and values.dtype == np.int64:
            return VecTable(values.copy())
        return VecTable(_exact_array(values))

    def adopt(self, values: Sequence) -> VecTable:
        if isinstance(values, VecTable):
            return values
        if isinstance(values, np.ndarray) and values.dtype in (
            np.dtype(np.int64),
            np.dtype(object),
        ):
            return VecTable(values)
        return VecTable(_exact_array(values))

    # -- butterflies ---------------------------------------------------
    def _headroom(self, table: VecTable) -> None:
        """Promote before a butterfly level that could overflow int64."""
        arr = table.arr
        if arr.dtype == object:
            return
        if (
            int(arr.max()) > _BUTTERFLY_HEADROOM
            or int(arr.min()) < -_BUTTERFLY_HEADROOM
        ):
            table.promote()

    def superset_zeta_inplace(self, values: VecTable) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            self._headroom(values)
            view = values.arr.reshape(-1, 2, 1 << i)
            view[:, 0, :] += view[:, 1, :]

    def superset_mobius_inplace(self, values: VecTable) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            self._headroom(values)
            view = values.arr.reshape(-1, 2, 1 << i)
            view[:, 0, :] -= view[:, 1, :]

    def subset_zeta_inplace(self, values: VecTable) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            self._headroom(values)
            view = values.arr.reshape(-1, 2, 1 << i)
            view[:, 1, :] += view[:, 0, :]

    def subset_mobius_inplace(self, values: VecTable) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            self._headroom(values)
            view = values.arr.reshape(-1, 2, 1 << i)
            view[:, 1, :] -= view[:, 0, :]

    # -- maintenance / merge -------------------------------------------
    def add_on_subsets_inplace(
        self, values: VecTable, mask: int, delta, where=None
    ) -> None:
        arr = values.arr
        if where is None:
            n = n_bits_for(len(arr))
            where = (
                subset_indicator(n, mask)
                if dense_delta(n, mask)
                else subset_index_array(mask)
            )
        if where.dtype != np.bool_:
            # sparse delta: gather/scatter the 2^|mask| touched entries
            # instead of sweeping all 2^n (the streaming hot path)
            idx = where
            if arr.dtype != object:
                if _fits_int64(delta):
                    d = int(delta)
                    touched = arr[idx]
                    # exact python-int bounds on the touched entries only
                    if (
                        int(touched.min()) + d >= _INT64_MIN
                        and int(touched.max()) + d <= _INT64_MAX
                    ):
                        arr[idx] = touched + d
                        return
                values.promote()
                arr = values.arr
            arr[idx] += delta
            return
        if arr.dtype != object:
            if _fits_int64(delta):
                delta = int(delta)
                # exact python-int bounds: the add stays in int64 iff
                # every shifted entry does
                if (
                    int(arr.min()) + delta >= _INT64_MIN
                    and int(arr.max()) + delta <= _INT64_MAX
                ):
                    np.add(arr, delta, out=arr, where=where)
                    return
            values.promote()
            arr = values.arr
        # object dtype: the 2^|mask| subset walk beats touching all 2^n
        for sub in iter_subset_masks(mask):
            arr[sub] = arr[sub] + delta

    def sum_tables(self, tables: Sequence[Table]) -> VecTable:
        tables = list(tables)
        if not tables:
            raise ValueError("sum_tables needs at least one table")
        merged = self.copy(tables[0])
        for table in tables[1:]:
            other = (
                table.arr if isinstance(table, VecTable)
                else _exact_array(table)
            )
            a = merged.arr
            if a.dtype != object and other.dtype != object:
                # elementwise sums lie in [min_a + min_o, max_a + max_o]
                if (
                    int(a.max()) + int(other.max()) <= _INT64_MAX
                    and int(a.min()) + int(other.min()) >= _INT64_MIN
                ):
                    np.add(a, other, out=a)
                    continue
            merged.promote()
            if other.dtype != object:
                other = other.astype(object)
            np.add(merged.arr, other, out=merged.arr)
        return merged

    # -- masked elementwise helpers ------------------------------------
    def _abs_gt_tol(self, arr: np.ndarray, tol: float) -> np.ndarray:
        """Boolean mask ``|v| > tol`` -- exact.  ``np.abs`` is avoided
        (it wraps on INT64_MIN); huge tolerances leave float64's exact
        integer range and fall back to python comparisons."""
        if arr.dtype == object or tol >= _FLOAT64_EXACT:
            return np.fromiter(
                (abs(v) > tol for v in arr.tolist()), dtype=bool,
                count=len(arr),
            )
        if tol == 0:
            return arr != 0
        return (arr > tol) | (arr < -tol)

    def zero_where(self, values: VecTable, where: np.ndarray) -> None:
        values.arr[where] = 0

    def any_nonzero_where(
        self, values: VecTable, where: np.ndarray, tol: float
    ) -> bool:
        return bool(np.any(self._abs_gt_tol(values.arr, tol) & where))

    def first_nonzero_where(
        self, values: VecTable, where: np.ndarray, tol: float
    ):
        hits = np.flatnonzero(self._abs_gt_tol(values.arr, tol) & where)
        return int(hits[0]) if hits.size else None

    def all_nonnegative(self, values: VecTable, tol: float) -> bool:
        arr = values.arr
        if arr.dtype == object or tol >= _FLOAT64_EXACT:
            if tol == 0:
                return all(v >= 0 for v in arr.tolist())
            return all(v >= -tol for v in arr.tolist())
        return bool(np.all(arr >= (0 if tol == 0 else -tol)))


class FloatBackend(Backend):
    """``numpy.float64`` tables with vectorized strided butterflies."""

    name = "float"
    exact = False
    vectorized = True

    def zeros(self, size: int) -> np.ndarray:
        return np.zeros(size)

    def full(self, size: int, value) -> np.ndarray:
        return np.full(size, float(value))

    def copy(self, values: Sequence) -> np.ndarray:
        if isinstance(values, VecTable):
            values = values.arr
        return np.asarray(values, dtype=np.float64).copy()

    def adopt(self, values: Sequence) -> np.ndarray:
        if isinstance(values, VecTable):
            values = values.arr
        return np.asarray(values, dtype=np.float64)

    def scatter(self, size: int, items) -> np.ndarray:
        table = np.zeros(size)
        for mask, value in items:
            table[mask] += value
        return table

    def superset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 0, :] += view[:, 1, :]

    def superset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 0, :] -= view[:, 1, :]

    def subset_zeta_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 1, :] += view[:, 0, :]

    def subset_mobius_inplace(self, values: Table) -> None:
        n = n_bits_for(len(values))
        for i in range(n):
            view = values.reshape(-1, 2, 1 << i)
            view[:, 1, :] -= view[:, 0, :]

    def add_on_subsets_inplace(
        self, values: np.ndarray, mask: int, delta, where=None
    ) -> None:
        if where is None:
            n = n_bits_for(len(values))
            where = (
                subset_indicator(n, mask)
                if dense_delta(n, mask)
                else subset_index_array(mask)
            )
        if where.dtype != np.bool_:
            values[where] += float(delta)
            return
        np.add(values, float(delta), out=values, where=where)

    def sum_tables(self, tables: Sequence[Table]) -> np.ndarray:
        # vectorized left-to-right: deterministic addition order, so
        # integer-valued float tables merge bit-exactly
        tables = list(tables)
        if not tables:
            raise ValueError("sum_tables needs at least one table")
        merged = self.copy(tables[0])
        for table in tables[1:]:
            np.add(merged, table, out=merged)
        return merged

    def zero_where(self, values: Table, where: np.ndarray) -> None:
        values[where] = 0.0

    def any_nonzero_where(
        self, values: Table, where: np.ndarray, tol: float
    ) -> bool:
        return bool(np.any(np.abs(values[where]) > tol))

    def first_nonzero_where(self, values: Table, where: np.ndarray, tol: float):
        # gather first (matching any_nonzero_where): |.| runs over the
        # masked entries only, never the full 2^n table
        idx = np.flatnonzero(where)
        if not idx.size:
            return None
        hits = np.flatnonzero(np.abs(values[idx]) > tol)
        return int(idx[hits[0]]) if hits.size else None

    def all_nonnegative(self, values: Table, tol: float) -> bool:
        return bool(np.all(np.asarray(values) >= -tol))


#: Shared singletons -- backends are stateless.
EXACT = ExactBackend()
VEC_EXACT = VecExactBackend()
FLOAT = FloatBackend()

_BY_NAME = {"exact": EXACT, "exact-vec": VEC_EXACT, "float": FLOAT}


def backend_by_name(name: str) -> Backend:
    """Look up ``"exact"`` / ``"exact-vec"`` / ``"float"``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def backend_for_table(values: Sequence) -> Backend:
    """The backend that owns a given table's storage mode."""
    if isinstance(values, VecTable):
        return VEC_EXACT
    return FLOAT if isinstance(values, np.ndarray) else EXACT


def calibration_values(n: int, seed: int = 0x5EED) -> List[int]:
    """A deterministic ``2^n`` int table for timing the butterflies.

    The host calibrator (:mod:`repro.engine.calibrate`) races
    :class:`ExactBackend` against :class:`VecExactBackend` on identical
    inputs; a fixed LCG stream keeps the workload reproducible across
    runs without dragging :mod:`random` state into the measurement.
    Values stay small enough that no butterfly pass can trigger the
    int64 promotion path, so both backends do comparable work.
    """
    if n < 0:
        raise ValueError(f"calibration table needs n >= 0, got {n}")
    out: List[int] = []
    state = seed & 0x7FFFFFFF
    for _ in range(1 << n):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        out.append(state % 1000)
    return out
