"""Process-pool execution of per-shard work with shard affinity.

A :class:`ParallelExecutor` runs shard tasks on ``W`` persistent worker
processes.  Plain ``ProcessPoolExecutor(max_workers=W)`` gives no
control over which worker receives which task, which defeats worker-side
state; this executor instead keeps ``W`` single-process pools and pins
shard ``k`` to pool ``k % W``.  Workers therefore accumulate per-shard
state that survives across calls:

* the shard's payload (raw row masks or sparse density items), shipped
  once per shard *version* by :meth:`load_rows` / :meth:`load_density`;
* the dense density/support tables built from it, cached per version
  (the *per-shard table reuse* fast path: re-evaluating a clean shard
  does no table work at all).

``workers = 1`` (the single-process fallback -- also the sane default on
single-CPU hosts) short-circuits to *inline* mode: the same worker
functions run in the calling process with no pools, no pickling and no
subprocess spawn, so ``K = 1`` sharding costs nothing over the plain
incremental engine.

Everything shipped across the process boundary is plain picklable data
(masks, numbers, name strings); exact tables are python lists of
ints/Fractions and cross the boundary losslessly.
"""

from __future__ import annotations

import itertools
import os
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.engine import batch
from repro.engine.backends import Table, backend_by_name
from repro.engine.calibrate import effective_cpus

__all__ = [
    "EvalRequest",
    "ShardAnswer",
    "ParallelExecutor",
    "default_workers",
]


def default_workers(shards: Optional[int] = None) -> int:
    """A sane worker default: the *effective* CPU count (affinity- and
    quota-aware, see :func:`~repro.engine.calibrate.effective_cpus`),
    capped by the shard count.  Raw ``os.cpu_count()`` would spawn
    pools the cgroup quota then timeslices into overhead."""
    cpus = effective_cpus()
    if shards is not None:
        cpus = min(cpus, shards)
    return max(1, cpus)


class EvalRequest(NamedTuple):
    """One shard's evaluation order (picklable)."""

    shard_id: int
    version: int
    n: int
    backend: str
    tol: float
    #: ``(lhs_mask, family_members)`` per constraint to check.
    constraints: Tuple[Tuple[int, Tuple[int, ...]], ...]
    #: Support probe masks.
    probes: Tuple[int, ...]
    #: Families whose per-shard differential tables are requested.
    families: Tuple[Tuple[int, ...], ...]
    return_tables: bool
    #: Caller-chosen shard-state scope: contexts sharing one executor
    #: use distinct scopes so their shard ids never collide.
    scope: str = ""


class ShardAnswer(NamedTuple):
    """One shard's contribution, merged by :mod:`repro.engine.shard`."""

    shard_id: int
    version: int
    nnz: int
    #: Per requested constraint: nonzero density inside ``L(X, Y)``?
    verdicts: Tuple[bool, ...]
    #: Per requested probe mask: the shard's support value.
    probes: Tuple
    density_table: Optional[Table]
    support_table: Optional[Table]
    differential_tables: Tuple[Table, ...]


# ----------------------------------------------------------------------
# worker-side state and functions (also run inline when workers == 1)
# ----------------------------------------------------------------------
#: (namespace, scope, shard_id) -> (version, kind, data).  The
#: namespace isolates executors sharing one process (inline mode); the
#: scope isolates contexts sharing one executor.
_SHARD_DATA: Dict[Tuple[str, str, int], Tuple[int, str, object]] = {}
#: (namespace, scope, shard_id, version, backend) -> (density, support, nnz).
_TABLE_CACHE: Dict[Tuple[str, str, int, int, str], Tuple[Table, Table, int]] = {}
#: (n, members) -> blocked boolean table (structural, version-free).
_BLOCKED_CACHE: Dict[Tuple[int, Tuple[int, ...]], object] = {}
#: (n, lhs, members) -> lattice boolean table L(X, Y) (structural).
_LATTICE_CACHE: Dict[Tuple[int, int, Tuple[int, ...]], object] = {}


def _w_load(
    ns: str, scope: str, shard_id: int, version: int, kind: str, data
) -> int:
    """Install a shard payload; drops caches of older versions."""
    _SHARD_DATA[ns, scope, shard_id] = (version, kind, data)
    stale = [
        k
        for k in _TABLE_CACHE
        if k[:3] == (ns, scope, shard_id) and k[3] != version
    ]
    for key in stale:
        del _TABLE_CACHE[key]
    return shard_id


def _w_density_items(ns: str, scope: str, shard_id: int) -> List[Tuple[int, object]]:
    """The shard's sparse density (aggregating raw rows on demand)."""
    version, kind, data = _SHARD_DATA[ns, scope, shard_id]
    if kind == "density":
        return list(data)
    counts: Dict[int, int] = {}
    for mask in data:
        counts[mask] = counts.get(mask, 0) + 1
    return sorted(counts.items())


def _w_tables(
    ns: str, scope: str, shard_id: int, version: int, n: int, backend_name: str
):
    """Density + support tables for a shard, cached per version."""
    have = _SHARD_DATA.get((ns, scope, shard_id))
    if have is None or have[0] != version:
        raise RuntimeError(
            f"shard {shard_id} at version {None if have is None else have[0]} "
            f"in this worker; expected {version} -- sync before evaluating"
        )
    key = (ns, scope, shard_id, version, backend_name)
    cached = _TABLE_CACHE.get(key)
    if cached is None:
        backend = backend_by_name(backend_name)
        items = _w_density_items(ns, scope, shard_id)
        density = backend.scatter(1 << n, items)
        support = backend.copy(density)
        backend.superset_zeta_inplace(support)
        cached = (density, support, len(items))
        _TABLE_CACHE[key] = cached
    return cached


def _w_blocked(n: int, members: Tuple[int, ...]):
    key = (n, members)
    table = _BLOCKED_CACHE.get(key)
    if table is None:
        table = batch.blocked_table(n, members)
        _BLOCKED_CACHE[key] = table
    return table


def _w_lattice(n: int, lhs: int, members: Tuple[int, ...]):
    """Cached ``L(X, Y)`` table: the warm verdict path allocates no
    fresh ``2^n`` arrays (structural, like the blocked cache)."""
    key = (n, lhs, members)
    table = _LATTICE_CACHE.get(key)
    if table is None:
        table = batch.superset_indicator(n, lhs) & ~_w_blocked(n, members)
        _LATTICE_CACHE[key] = table
    return table


def _w_evaluate(ns: str, request: EvalRequest) -> ShardAnswer:
    """Answer one :class:`EvalRequest` from this worker's shard state."""
    backend = backend_by_name(request.backend)
    density, support, nnz = _w_tables(
        ns, request.scope, request.shard_id, request.version,
        request.n, request.backend,
    )
    verdicts = []
    for lhs, members in request.constraints:
        lattice = _w_lattice(request.n, lhs, members)
        verdicts.append(
            backend.any_nonzero_where(density, lattice, request.tol)
        )
    probes = tuple(support[mask] for mask in request.probes)
    diffs: List[Table] = []
    for members in request.families:
        table = backend.copy(density)
        batch.differential_table(table, members, backend)
        diffs.append(table)
    return ShardAnswer(
        shard_id=request.shard_id,
        version=request.version,
        nnz=nnz,
        verdicts=tuple(verdicts),
        probes=probes,
        density_table=density if request.return_tables else None,
        support_table=support if request.return_tables else None,
        differential_tables=tuple(diffs),
    )


def _w_clear(ns: str) -> None:
    """Drop one executor's worker-side shard state.

    Namespace-scoped: other executors sharing this process (inline
    mode) keep their state.  The blocked-table cache is structural and
    shared, so it stays.
    """
    for key in [k for k in _SHARD_DATA if k[0] == ns]:
        del _SHARD_DATA[key]
    for key in [k for k in _TABLE_CACHE if k[0] == ns]:
        del _TABLE_CACHE[key]


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """``W`` pinned worker processes for per-shard work.

    Parameters
    ----------
    workers:
        Process count; default :func:`default_workers` (the CPU count).
        ``1`` means inline (no subprocesses at all).
    """

    _ns_counter = itertools.count()

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._workers = workers
        self._pools: Optional[List[Executor]] = None
        self._closed = False
        self._epoch = 0
        # isolates this executor's worker-side state from other
        # executors that share a process (inline mode, forked workers)
        self._ns = f"ex{next(self._ns_counter)}-{os.getpid()}"
        # inline state lives in this process's module globals, so a
        # dropped executor must not pin its tables forever
        self._finalizer = weakref.finalize(self, _w_clear, self._ns)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Worker-process count (1 = run inline, no pool)."""
        return self._workers

    @property
    def inline(self) -> bool:
        """Whether work runs in-process (the single-worker fallback)."""
        return self._workers == 1

    @property
    def epoch(self) -> int:
        """Bumped by :meth:`clear`; consumers that track per-shard sync
        state (``ShardedEvalContext``) resync everything when it moves."""
        return self._epoch

    def _pool_for(self, shard_id: int) -> Executor:
        if self._closed:
            raise RuntimeError("executor has been shut down")
        if self._pools is None:
            # one single-process pool per worker: shard -> worker pinning
            self._pools = [
                ProcessPoolExecutor(max_workers=1)
                for _ in range(self._workers)
            ]
        return self._pools[shard_id % self._workers]

    def _run(self, calls: Sequence[Tuple[int, object, tuple]]) -> list:
        """Run ``(shard_id, fn, args)`` calls, in parallel across pools."""
        if self.inline:
            return [fn(*args) for _, fn, args in calls]
        futures = [
            self._pool_for(shard_id).submit(fn, *args)
            for shard_id, fn, args in calls
        ]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # shard payloads
    # ------------------------------------------------------------------
    def load_rows(
        self, shard_id: int, version: int, rows: Sequence[int],
        scope: str = "",
    ) -> None:
        """Install raw row masks for a shard (aggregated worker-side)."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "rows", list(rows)))
            ]
        )

    def load_density(
        self, shard_id: int, version: int, items: Iterable[Tuple[int, object]],
        scope: str = "",
    ) -> None:
        """Install a shard's sparse density items."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "density", list(items)))
            ]
        )

    def load_density_many(
        self, loads: Sequence[Tuple[int, int, Iterable[Tuple[int, object]]]],
        scope: str = "",
    ) -> None:
        """Batch form of :meth:`load_density` (one round trip per pool)."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "density", list(items)))
                for shard_id, version, items in loads
            ]
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, requests: Sequence[EvalRequest]) -> List[ShardAnswer]:
        """Fan :class:`EvalRequest` orders out to their pinned workers."""
        return self._run(
            [(r.shard_id, _w_evaluate, (self._ns, r)) for r in requests]
        )

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop this executor's shard state in every worker.

        Bumps :attr:`epoch`, which tells attached contexts that their
        sync bookkeeping is void -- the next fan-out reships every
        shard instead of trusting stale version records.
        """
        self._epoch += 1
        if self.inline:
            _w_clear(self._ns)
        elif self._pools is not None:
            futures = [pool.submit(_w_clear, self._ns) for pool in self._pools]
            for f in futures:
                f.result()

    def shutdown(self) -> None:
        """Terminate the worker pools; the executor stays reusable."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)  # worker state dies with them
            self._pools = None
        self._finalizer()  # reclaim any inline state now
        self._closed = True

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        mode = "inline" if self.inline else "process-pool"
        return f"ParallelExecutor(workers={self._workers}, {mode})"
