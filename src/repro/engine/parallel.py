"""Process-pool execution of per-shard work with shard affinity.

A :class:`ParallelExecutor` runs shard tasks on ``W`` persistent worker
processes.  Plain ``ProcessPoolExecutor(max_workers=W)`` gives no
control over which worker receives which task, which defeats worker-side
state; this executor instead keeps ``W`` single-process pools and pins
shard ``k`` to pool ``k % W``.  Workers therefore accumulate per-shard
state that survives across calls:

* the shard's payload (raw row masks or sparse density items), shipped
  once per shard *version* by :meth:`load_rows` / :meth:`load_density`
  -- or advanced in place by :meth:`apply_deltas_many`, which ships only
  the ``(mask, delta)`` records since the last synced version and
  applies them to the cached tables (the *delta shipping* fast path:
  a streaming transaction no longer pays an O(nnz) payload pickle plus
  an O(n 2^n) table rebuild);
* the dense density/support tables built from it, cached per version
  (the *per-shard table reuse* fast path: re-evaluating a clean shard
  does no table work at all).

``workers = 1`` (the single-process fallback -- also the sane default on
single-CPU hosts) short-circuits to *inline* mode: the same worker
functions run in the calling process with no pools, no pickling and no
subprocess spawn, so ``K = 1`` sharding costs nothing over the plain
incremental engine.

Result transport is zero-copy where the storage allows it: when a
request asks for tables back (``return_tables``) *and* opts into shared
memory (``shm_tables``), workers publish int64/float64 tables as
``multiprocessing.shared_memory`` segments and return
:class:`ShmTable` descriptors (name + dtype + generation) instead of
pickled arrays; the merge side attaches and reads the ndarray views
directly.  Segment lifecycle is explicit: a worker owns its published
segments and unlinks them when it republishes a newer generation or is
cleared; the executor unlinks everything it has seen on
:meth:`shutdown` and after a worker crash (and the OS resource tracker
backstops a SIGKILL'd process tree).  Object-dtype tables (promoted
exact arithmetic), list-exact tables and inline mode all fall back to
the plain pickled return path.

Everything else shipped across the process boundary is plain picklable
data (masks, numbers, name strings); exact tables are python lists of
ints/Fractions and cross the boundary losslessly.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import contextmanager
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.engine import batch
from repro.engine.backends import Table, VecTable, backend_by_name
from repro.engine.calibrate import effective_cpus

__all__ = [
    "EvalRequest",
    "ShardAnswer",
    "ShmTable",
    "ParallelExecutor",
    "WorkerCrashError",
    "attach_shm_table",
    "default_workers",
]


def default_workers(shards: Optional[int] = None) -> int:
    """A sane worker default: the *effective* CPU count (affinity- and
    quota-aware, see :func:`~repro.engine.calibrate.effective_cpus`),
    capped by the shard count.  Raw ``os.cpu_count()`` would spawn
    pools the cgroup quota then timeslices into overhead."""
    cpus = effective_cpus()
    if shards is not None:
        cpus = min(cpus, shards)
    return max(1, cpus)


class WorkerCrashError(RuntimeError):
    """A worker process died mid-call.

    The executor has already respawned fresh pools and advanced its
    :attr:`~ParallelExecutor.epoch`, so attached contexts resync from
    scratch on the next fan-out; callers simply retry the evaluation.
    """


class EvalRequest(NamedTuple):
    """One shard's evaluation order (picklable)."""

    shard_id: int
    version: int
    n: int
    backend: str
    tol: float
    #: ``(lhs_mask, family_members)`` per constraint to check.
    constraints: Tuple[Tuple[int, Tuple[int, ...]], ...]
    #: Support probe masks.
    probes: Tuple[int, ...]
    #: Families whose per-shard differential tables are requested.
    families: Tuple[Tuple[int, ...], ...]
    return_tables: bool
    #: Caller-chosen shard-state scope: contexts sharing one executor
    #: use distinct scopes so their shard ids never collide.
    scope: str = ""
    #: Publish returned tables as shared-memory segments (descriptors
    #: instead of pickled arrays); int64/float64 storage only, with a
    #: per-table pickle fallback for everything else.
    shm_tables: bool = False


class ShmTable(NamedTuple):
    """A table returned by name instead of by value (picklable).

    ``generation`` is the shard version the segment was published at;
    the merge side refuses any descriptor whose generation does not
    match the version it asked for, so a respawned or lagging worker
    can never serve a stale segment silently.
    """

    name: str
    dtype: str
    length: int
    nbytes: int
    generation: int


class ShardAnswer(NamedTuple):
    """One shard's contribution, merged by :mod:`repro.engine.shard`.

    Table fields hold either the raw table (pickle transport) or a
    :class:`ShmTable` descriptor (shared-memory transport).
    """

    shard_id: int
    version: int
    nnz: int
    #: Per requested constraint: nonzero density inside ``L(X, Y)``?
    verdicts: Tuple[bool, ...]
    #: Per requested probe mask: the shard's support value.
    probes: Tuple
    density_table: Optional[Table]
    support_table: Optional[Table]
    differential_tables: Tuple[Table, ...]


# ----------------------------------------------------------------------
# worker-side state and functions (also run inline when workers == 1)
# ----------------------------------------------------------------------
#: (namespace, scope, shard_id) -> (version, kind, data).  The
#: namespace isolates executors sharing one process (inline mode); the
#: scope isolates contexts sharing one executor.
_SHARD_DATA: Dict[Tuple[str, str, int], Tuple[int, str, object]] = {}
#: (namespace, scope, shard_id, version, backend) -> (density, support, nnz).
_TABLE_CACHE: Dict[Tuple[str, str, int, int, str], Tuple[Table, Table, int]] = {}
#: (namespace, scope, shard_id) -> the shard's live _TABLE_CACHE keys.
#: Eviction on load walks this owner index -- O(versions of that
#: shard) -- never the whole cache.
_TABLE_INDEX: Dict[Tuple[str, str, int], Set[Tuple]] = {}
#: (namespace, scope, shard_id) -> (version, backend, families,
#: descriptors, handles): the shard's currently published shared-memory
#: tables.  Republishing (or clearing) unlinks the previous generation.
_SHM_PUBLISHED: Dict[Tuple[str, str, int], Tuple] = {}
#: (n, members) -> blocked boolean table (structural, version-free).
_BLOCKED_CACHE: Dict[Tuple[int, Tuple[int, ...]], object] = {}
#: (n, lhs, members) -> lattice boolean table L(X, Y) (structural).
_LATTICE_CACHE: Dict[Tuple[int, int, Tuple[int, ...]], object] = {}


def _cache_store(key: Tuple, value: Tuple) -> None:
    _TABLE_CACHE[key] = value
    _TABLE_INDEX.setdefault(key[:3], set()).add(key)


def _cache_evict_stale(owner: Tuple[str, str, int], keep_version: int) -> None:
    """Drop the owner shard's cached tables at any other version."""
    keys = _TABLE_INDEX.get(owner)
    if not keys:
        return
    stale = [k for k in keys if k[3] != keep_version]
    for key in stale:
        keys.discard(key)
        _TABLE_CACHE.pop(key, None)
    if not keys:
        del _TABLE_INDEX[owner]


def _w_load(
    ns: str, scope: str, shard_id: int, version: int, kind: str, data
) -> int:
    """Install a shard payload; drops caches of older versions."""
    _SHARD_DATA[ns, scope, shard_id] = (version, kind, data)
    _cache_evict_stale((ns, scope, shard_id), version)
    return shard_id


def _w_density_items(ns: str, scope: str, shard_id: int) -> List[Tuple[int, object]]:
    """The shard's sparse density (aggregating raw rows on demand)."""
    version, kind, data = _SHARD_DATA[ns, scope, shard_id]
    if kind == "density":
        return list(data)
    if kind == "densmap":  # mutable dict left behind by delta batches
        return sorted(data.items())
    counts: Dict[int, int] = {}
    for mask in data:
        counts[mask] = counts.get(mask, 0) + 1
    return sorted(counts.items())


def _w_apply_deltas(
    ns: str,
    scope: str,
    shard_id: int,
    base_version: int,
    new_version: int,
    backend_name: str,
    records: Sequence[Tuple[int, object]],
) -> bool:
    """Advance a shard from ``base_version`` by applying delta records.

    Returns ``False`` (instead of raising) when this worker does not
    hold the shard at ``base_version`` -- a respawned worker, an
    evicted payload -- so the caller falls back to a full
    :func:`_w_load` reship.  On success the sparse payload *and* any
    cached tables are maintained in place: the density table gets point
    updates, the support table incremental subset adds
    (:meth:`~repro.engine.backends.Backend.add_on_subsets_inplace`),
    and the nnz count follows the sparse payload exactly.
    """
    have = _SHARD_DATA.get((ns, scope, shard_id))
    if have is None or have[0] != base_version:
        return False
    _version, kind, data = have
    if kind == "densmap":
        dens: Dict[int, object] = data  # mutate in place: O(gap), not O(nnz)
    elif kind == "density":
        dens = dict(data)
    else:
        dens = {}
        for mask in data:
            dens[mask] = dens.get(mask, 0) + 1
    for mask, delta in records:
        value = dens.get(mask, 0) + delta
        if value == 0:
            dens.pop(mask, None)
        else:
            dens[mask] = value
    _SHARD_DATA[ns, scope, shard_id] = (new_version, "densmap", dens)
    owner = (ns, scope, shard_id)
    old_key = (ns, scope, shard_id, base_version, backend_name)
    cached = _TABLE_CACHE.pop(old_key, None)
    if cached is not None:
        _TABLE_INDEX.get(owner, set()).discard(old_key)
        density, support, _nnz = cached
        backend = backend_by_name(backend_name)
        for mask, delta in records:
            density[mask] = density[mask] + delta
            backend.add_on_subsets_inplace(support, mask, delta)
        _cache_store(
            (ns, scope, shard_id, new_version, backend_name),
            (density, support, len(dens)),
        )
    # other backends' (or versions') tables for this shard are stale now
    _cache_evict_stale(owner, new_version)
    return True


def _w_tables(
    ns: str, scope: str, shard_id: int, version: int, n: int, backend_name: str
):
    """Density + support tables for a shard, cached per version."""
    have = _SHARD_DATA.get((ns, scope, shard_id))
    if have is None or have[0] != version:
        raise RuntimeError(
            f"shard {shard_id} at version {None if have is None else have[0]} "
            f"in this worker; expected {version} -- sync before evaluating"
        )
    key = (ns, scope, shard_id, version, backend_name)
    cached = _TABLE_CACHE.get(key)
    if cached is None:
        backend = backend_by_name(backend_name)
        items = _w_density_items(ns, scope, shard_id)
        density = backend.scatter(1 << n, items)
        support = backend.copy(density)
        backend.superset_zeta_inplace(support)
        cached = (density, support, len(items))
        _cache_store(key, cached)
    return cached


def _w_blocked(n: int, members: Tuple[int, ...]):
    key = (n, members)
    table = _BLOCKED_CACHE.get(key)
    if table is None:
        table = batch.blocked_table(n, members)
        _BLOCKED_CACHE[key] = table
    return table


def _w_lattice(n: int, lhs: int, members: Tuple[int, ...]):
    """Cached ``L(X, Y)`` table: the warm verdict path allocates no
    fresh ``2^n`` arrays (structural, like the blocked cache)."""
    key = (n, lhs, members)
    table = _LATTICE_CACHE.get(key)
    if table is None:
        table = batch.superset_indicator(n, lhs) & ~_w_blocked(n, members)
        _LATTICE_CACHE[key] = table
    return table


def _shm_exportable(table) -> Optional[np.ndarray]:
    """The ndarray behind a table when it can travel by shared memory
    (int64/float64 storage); ``None`` forces the pickle fallback
    (python lists, object-dtype promoted exact tables)."""
    if isinstance(table, VecTable):
        return None if table.is_object else table.arr
    if isinstance(table, np.ndarray) and table.dtype in (
        np.dtype(np.int64),
        np.dtype(np.float64),
    ):
        return table
    return None


def _shm_release(handles) -> None:
    """Close + unlink published segments, ignoring already-gone ones."""
    for shm in handles:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _w_publish_tables(
    ns: str,
    scope: str,
    shard_id: int,
    version: int,
    backend_name: str,
    families: Tuple[Tuple[int, ...], ...],
    tables: List,
) -> List:
    """Publish answer tables as shared-memory segments.

    Returns a list aligned with ``tables`` holding :class:`ShmTable`
    descriptors for exportable entries and the raw table for the rest
    (per-table pickle fallback).  Published segments are cached per
    ``(version, backend, families)``: a clean-shard re-evaluate reuses
    the previous generation's segments without a byte copied, and any
    republish unlinks the superseded generation (the merge side has
    long since closed its attachments -- it drops them before the
    evaluate call returns).
    """
    key = (ns, scope, shard_id)
    prev = _SHM_PUBLISHED.get(key)
    if prev is not None and prev[0] == (version, backend_name, families):
        return _merge_published(prev[1], tables)
    descriptors: List[Optional[ShmTable]] = []
    handles = []
    try:
        for table in tables:
            arr = _shm_exportable(table)
            if arr is None:
                descriptors.append(None)
                continue
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes)
            )
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
            view[:] = arr
            del view
            handles.append(segment)
            descriptors.append(
                ShmTable(
                    name=segment.name,
                    dtype=arr.dtype.str,
                    length=len(arr),
                    nbytes=arr.nbytes,
                    generation=version,
                )
            )
    except OSError:
        # /dev/shm full or unavailable: fall back to pickling wholesale
        _shm_release(handles)
        return list(tables)
    if prev is not None:
        _shm_release(prev[2])
    _SHM_PUBLISHED[key] = ((version, backend_name, families), descriptors, handles)
    return _merge_published(descriptors, tables)


def _merge_published(descriptors: List[Optional[ShmTable]], tables: List) -> List:
    return [
        desc if desc is not None else table
        for desc, table in zip(descriptors, tables)
    ]


def _w_evaluate(ns: str, request: EvalRequest) -> ShardAnswer:
    """Answer one :class:`EvalRequest` from this worker's shard state."""
    backend = backend_by_name(request.backend)
    density, support, nnz = _w_tables(
        ns, request.scope, request.shard_id, request.version,
        request.n, request.backend,
    )
    verdicts = []
    for lhs, members in request.constraints:
        lattice = _w_lattice(request.n, lhs, members)
        verdicts.append(
            backend.any_nonzero_where(density, lattice, request.tol)
        )
    probes = tuple(support[mask] for mask in request.probes)
    diffs: List[Table] = []
    if request.return_tables and request.shm_tables:
        published = _SHM_PUBLISHED.get((ns, request.scope, request.shard_id))
        # reuse only a fully shared publication: a None descriptor means
        # that table went by pickle last time and must be recomputed
        fresh = (
            published is None
            or published[0]
            != (request.version, request.backend, request.families)
            or any(d is None for d in published[1])
        )
    else:
        fresh = True
    if fresh:
        for members in request.families:
            table = backend.copy(density)
            batch.differential_table(table, members, backend)
            diffs.append(table)
    else:
        # published segments already hold this version's differentials
        diffs = [None] * len(request.families)
    out_density: Optional[Table] = density if request.return_tables else None
    out_support: Optional[Table] = support if request.return_tables else None
    out_diffs: List[Table] = diffs
    if request.return_tables and request.shm_tables:
        published_tables = _w_publish_tables(
            ns,
            request.scope,
            request.shard_id,
            request.version,
            request.backend,
            request.families,
            [density, support, *diffs],
        )
        out_density, out_support = published_tables[0], published_tables[1]
        out_diffs = published_tables[2:]
    return ShardAnswer(
        shard_id=request.shard_id,
        version=request.version,
        nnz=nnz,
        verdicts=tuple(verdicts),
        probes=probes,
        density_table=out_density,
        support_table=out_support,
        differential_tables=tuple(out_diffs),
    )


def _w_clear(ns: str) -> None:
    """Drop one executor's worker-side shard state.

    Namespace-scoped: other executors sharing this process (inline
    mode) keep their state.  The blocked-table cache is structural and
    shared, so it stays.  Published shared-memory segments are unlinked
    -- they outlive the worker process otherwise.
    """
    for key in [k for k in _SHARD_DATA if k[0] == ns]:
        del _SHARD_DATA[key]
    for owner in [k for k in _TABLE_INDEX if k[0] == ns]:
        for key in _TABLE_INDEX.pop(owner):
            _TABLE_CACHE.pop(key, None)
    for key in [k for k in _TABLE_CACHE if k[0] == ns]:
        del _TABLE_CACHE[key]
    for key in [k for k in _SHM_PUBLISHED if k[0] == ns]:
        _shm_release(_SHM_PUBLISHED.pop(key)[2])


# ----------------------------------------------------------------------
# attach side (the merge reads published segments through this)
# ----------------------------------------------------------------------
_TRACKER_LOCK = threading.RLock()


@contextmanager
def _tracker_neutral():
    """Suppress shared-memory resource-tracker traffic in this block.

    On CPython < 3.13 merely *attaching* to a segment registers it
    with this process's resource tracker as if we created it
    (bpo-39959), and ``unlink()`` always unregisters.  The publishing
    worker owns the segment's lifecycle and talks to *its* tracker;
    whether that tracker is shared with ours depends on fork timing,
    so any registration from the attach side either leaks a stale
    cache entry (private trackers: exit-time "leaked shared_memory
    objects" warnings for segments the worker already unlinked) or
    double-unregisters (shared tracker: KeyError noise).  The only
    sound attach-side policy is silence: no register on attach, no
    unregister on the orphan-unlink backstop.  Non-shared-memory
    resources (semaphores) pass through untouched.
    """
    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        orig_register = resource_tracker.register
        orig_unregister = resource_tracker.unregister

        def register(name, rtype):
            if rtype != "shared_memory":
                orig_register(name, rtype)

        def unregister(name, rtype):
            if rtype != "shared_memory":
                orig_unregister(name, rtype)

        resource_tracker.register = register
        resource_tracker.unregister = unregister
        try:
            yield
        finally:
            resource_tracker.register = orig_register
            resource_tracker.unregister = orig_unregister


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a published segment without adopting its lifecycle
    (see :func:`_tracker_neutral`)."""
    with _tracker_neutral():
        return shared_memory.SharedMemory(name=name)


def attach_shm_table(
    descriptor: ShmTable,
) -> Tuple[Table, shared_memory.SharedMemory]:
    """A read-only table view over a published segment.

    Returns ``(table, segment)``: int64 storage comes back wrapped as a
    :class:`~repro.engine.backends.VecTable`, float64 as the ndarray
    itself.  The caller must drop every reference to the view before
    closing the segment.
    """
    segment = _attach_segment(descriptor.name)
    arr = np.ndarray(
        (descriptor.length,),
        dtype=np.dtype(descriptor.dtype),
        buffer=segment.buf,
    )
    arr.setflags(write=False)
    table: Table = VecTable(arr) if arr.dtype == np.int64 else arr
    return table, segment


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """``W`` pinned worker processes for per-shard work.

    Parameters
    ----------
    workers:
        Process count; default :func:`default_workers` (the CPU count).
        ``1`` means inline (no subprocesses at all).
    """

    _ns_counter = itertools.count()

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._workers = workers
        self._pools: Optional[List[Executor]] = None
        self._closed = False
        self._epoch = 0
        # every shared-memory segment name answers have mentioned, per
        # (scope, shard): the crash/shutdown unlink backstop
        self._segments: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        # isolates this executor's worker-side state from other
        # executors that share a process (inline mode, forked workers)
        self._ns = f"ex{next(self._ns_counter)}-{os.getpid()}"
        # inline state lives in this process's module globals, so a
        # dropped executor must not pin its tables forever
        self._finalizer = weakref.finalize(self, _w_clear, self._ns)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Worker-process count (1 = run inline, no pool)."""
        return self._workers

    @property
    def inline(self) -> bool:
        """Whether work runs in-process (the single-worker fallback)."""
        return self._workers == 1

    @property
    def epoch(self) -> int:
        """Bumped by :meth:`clear` and by a worker-crash respawn;
        consumers that track per-shard sync state
        (``ShardedEvalContext``) resync everything when it moves."""
        return self._epoch

    def _pool_for(self, shard_id: int) -> Executor:
        if self._closed:
            raise RuntimeError("executor has been shut down")
        if self._pools is None:
            # one single-process pool per worker: shard -> worker pinning
            self._pools = [
                ProcessPoolExecutor(max_workers=1)
                for _ in range(self._workers)
            ]
        return self._pools[shard_id % self._workers]

    def _run(self, calls: Sequence[Tuple[int, object, tuple]]) -> list:
        """Run ``(shard_id, fn, args)`` calls, in parallel across pools."""
        if self.inline:
            return [fn(*args) for _, fn, args in calls]
        try:
            futures = [
                self._pool_for(shard_id).submit(fn, *args)
                for shard_id, fn, args in calls
            ]
            return [f.result() for f in futures]
        except BrokenProcessPool:
            self._respawn()
            raise WorkerCrashError(
                "a worker process died mid-call; the executor respawned "
                "its pools and advanced the epoch -- resync and retry"
            ) from None

    def _respawn(self) -> None:
        """Replace every pool after a worker death.

        Surviving workers' state is discarded along with the dead
        one's (fresh pools, empty caches) and the epoch advances, so
        attached contexts reship every shard instead of trusting
        version records a respawned worker never heard of.  Segments
        published by the dead workers are unlinked from here -- their
        processes are gone and can no longer do it themselves.
        """
        pools, self._pools = self._pools, None
        if pools is not None:
            for pool in pools:
                pool.shutdown(wait=False, cancel_futures=True)
        self._epoch += 1
        self._unlink_known_segments()

    def _unlink_known_segments(self) -> None:
        segments, self._segments = self._segments, {}
        with _tracker_neutral():
            for names in segments.values():
                for name in names:
                    try:
                        shared_memory.SharedMemory(name=name).unlink()
                    except (FileNotFoundError, OSError):
                        pass

    def _note_segments(self, scope: str, answers: Sequence[ShardAnswer]) -> None:
        """Record the latest published segment names per shard (the
        unlink backstop for crash/shutdown cleanup)."""
        for answer in answers:
            names = tuple(
                t.name
                for t in (
                    answer.density_table,
                    answer.support_table,
                    *answer.differential_tables,
                )
                if isinstance(t, ShmTable)
            )
            key = (scope, answer.shard_id)
            if names:
                self._segments[key] = names
            else:
                self._segments.pop(key, None)

    # ------------------------------------------------------------------
    # shard payloads
    # ------------------------------------------------------------------
    def load_rows(
        self, shard_id: int, version: int, rows: Sequence[int],
        scope: str = "",
    ) -> None:
        """Install raw row masks for a shard (aggregated worker-side)."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "rows", list(rows)))
            ]
        )

    def load_density(
        self, shard_id: int, version: int, items: Iterable[Tuple[int, object]],
        scope: str = "",
    ) -> None:
        """Install a shard's sparse density items."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "density", list(items)))
            ]
        )

    def load_density_many(
        self, loads: Sequence[Tuple[int, int, Iterable[Tuple[int, object]]]],
        scope: str = "",
    ) -> None:
        """Batch form of :meth:`load_density` (one round trip per pool)."""
        self._run(
            [
                (shard_id, _w_load,
                 (self._ns, scope, shard_id, version, "density", list(items)))
                for shard_id, version, items in loads
            ]
        )

    def apply_deltas_many(
        self,
        updates: Sequence[Tuple[int, int, int, Sequence[Tuple[int, object]]]],
        backend: str,
        scope: str = "",
    ) -> List[bool]:
        """Ship ``(shard_id, base_version, new_version, records)`` delta
        batches to their pinned workers.  Returns per-update success:
        ``False`` means the worker no longer holds ``base_version``
        (evicted, respawned) and the caller must fall back to a full
        :meth:`load_density` reship for that shard.
        """
        return self._run(
            [
                (shard_id, _w_apply_deltas,
                 (self._ns, scope, shard_id, base, new, backend, list(records)))
                for shard_id, base, new, records in updates
            ]
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, requests: Sequence[EvalRequest]) -> List[ShardAnswer]:
        """Fan :class:`EvalRequest` orders out to their pinned workers."""
        answers = self._run(
            [(r.shard_id, _w_evaluate, (self._ns, r)) for r in requests]
        )
        if requests and not self.inline:
            self._note_segments(requests[0].scope, answers)
        return answers

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop this executor's shard state in every worker.

        Bumps :attr:`epoch`, which tells attached contexts that their
        sync bookkeeping is void -- the next fan-out reships every
        shard instead of trusting stale version records.
        """
        self._epoch += 1
        if self.inline:
            _w_clear(self._ns)
        elif self._pools is not None:
            try:
                futures = [
                    pool.submit(_w_clear, self._ns) for pool in self._pools
                ]
                for f in futures:
                    f.result()
            except BrokenProcessPool:
                self._respawn()
                return
        self._unlink_known_segments()

    def shutdown(self) -> None:
        """Terminate the worker pools; the executor stays reusable."""
        if self._pools is not None:
            try:
                # workers unlink their published segments before dying
                futures = [
                    pool.submit(_w_clear, self._ns) for pool in self._pools
                ]
                for f in futures:
                    f.result()
            except (BrokenProcessPool, RuntimeError):
                pass
            for pool in self._pools:
                pool.shutdown(wait=True)  # worker state dies with them
            self._pools = None
        self._unlink_known_segments()  # backstop for crashed workers
        self._finalizer()  # reclaim any inline state now
        self._closed = True

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        mode = "inline" if self.inline else "process-pool"
        return f"ParallelExecutor(workers={self._workers}, {mode})"
