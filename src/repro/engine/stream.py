"""Streaming workloads: transaction logs over an incremental context.

A :class:`StreamSession` wraps an
:class:`~repro.engine.incremental.IncrementalEvalContext` with the
transactional surface a live instance needs: apply a *batch* of row
deltas, get back the set of constraints the batch newly violated or
restored (net of intra-batch churn).  Sessions also parse the plain-text
transaction-log format replayed by ``repro stream``:

.. code-block:: text

    # one op per line; a `commit` line ends a transaction
    + AB        insert one row with itemset AB
    + AB 3      insert three
    - AB        delete one
    = AB 5      update: set the multiplicity of AB to 5
    commit

Subsets use the same shorthand as constraint files (``ground.parse``);
``#`` comments and blank lines are ignored; a trailing transaction
without ``commit`` is committed implicitly.

Sessions can be **durable**: ``durable=<data dir>`` attaches a
:class:`~repro.engine.persist.DurableStore`, every committed
transaction is appended to a CRC-framed write-ahead log *before* it is
applied (in exactly the transaction-log format above), and
:meth:`StreamSession.snapshot` persists the live density with its
consistency counters and compacts the log.  Reopening a session on the
same directory recovers: load the newest snapshot, assert its counters
against the seeded state, replay the log tail.  ``snapshot_every=N``
snapshots automatically every ``N`` transactions.

Like the rest of the engine, this module imports nothing from
:mod:`repro.core`; ground sets and constraints are duck-typed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import Backend
from repro.engine.decider import ImplicationCache
from repro.engine.incremental import (
    DEFAULT_TOLERANCE,
    IncrementalEvalContext,
    Number,
)
from repro.engine.plan import (
    EngineConfig,
    Plan,
    Planner,
    Workload,
    build_context,
    default_planner,
    warn_deprecated_kwargs,
)
from repro.engine.persist import (
    DurableStore,
    decode_density,
    decode_transaction,
    density_fingerprint,
    encode_transaction,
    parse_value,
    snapshot_state,
    verify_recovered,
)
from repro.errors import PersistenceError, PlanError

__all__ = ["StreamReport", "StreamSession", "parse_transaction_log"]

_UNSET = object()


def _resolve_session_config(
    config: Optional[EngineConfig],
    backend,
    shards,
    workers,
    durable,
    shard_plan,
    where: str,
    tol: float,
    snapshot_every,
    fsync: str,
    private_cache: bool,
    stacklevel: int = 4,
) -> EngineConfig:
    """Merge the deprecated kwargs shim and ``config=`` into one
    :class:`EngineConfig` (shared by :class:`StreamSession` and the
    high-level wrappers that front it)."""
    legacy = {
        name: value
        for name, value in (
            ("backend", backend),
            ("shards", shards),
            ("workers", workers),
            ("durable", durable),
        )
        if value is not _UNSET
    }
    if legacy:
        if config is not None:
            raise ValueError(
                f"{where}: pass config=EngineConfig(...) or the "
                f"deprecated {', '.join(sorted(legacy))} kwargs, not both"
            )
        warn_deprecated_kwargs(
            sorted(legacy), where, stacklevel=stacklevel
        )
    if config is None:
        if "backend" in legacy and not isinstance(
            legacy["backend"], (str, type(None))
        ):
            legacy["backend"] = legacy["backend"].name
        config = EngineConfig.from_legacy(
            **legacy,
            tol=tol,
            snapshot_every=snapshot_every,
            fsync=fsync,
            private_cache=private_cache,
        )
        if shard_plan is not None and config.engine != "sharded":
            # a custom ShardPlan forces the sharded tier; its own shard
            # count rules (mirrors the pre-planner behavior)
            config = config.replace(
                engine="sharded", shards=shard_plan.shards
            )
    else:
        # explicit non-default kwargs refine the config they ride with
        overrides = {}
        if tol != DEFAULT_TOLERANCE and tol != config.tol:
            overrides["tol"] = tol
        if snapshot_every is not None:
            overrides["snapshot_every"] = snapshot_every
        if fsync != "always":
            overrides["fsync"] = fsync
        if private_cache:
            overrides["private_cache"] = private_cache
        if overrides:
            config = config.replace(**overrides)
    return config

#: One parsed log operation: ``("delta", mask, amount)`` adds ``amount``
#: rows with itemset ``mask``; ``("set", mask, value)`` pins the
#: multiplicity (resolved against the live density at apply time).
Op = Tuple[str, int, Number]


class StreamReport:
    """What one committed transaction changed."""

    __slots__ = ("tx", "newly_violated", "restored", "violated")

    def __init__(
        self,
        tx: int,
        newly_violated: Tuple,
        restored: Tuple,
        violated: Tuple,
    ):
        self.tx = tx
        #: Constraints satisfied before the batch, violated after.
        self.newly_violated = newly_violated
        #: Constraints violated before the batch, satisfied after.
        self.restored = restored
        #: All tracked constraints violated after the batch.
        self.violated = violated

    @property
    def changed(self) -> bool:
        """Whether this transaction flipped any constraint status."""
        return bool(self.newly_violated or self.restored)

    def __repr__(self) -> str:
        return (
            f"StreamReport(tx={self.tx}, "
            f"newly_violated={list(self.newly_violated)}, "
            f"restored={list(self.restored)}, "
            f"violated={len(self.violated)})"
        )


class StreamSession:
    """Transactional deltas against one incremental evaluation context.

    ``density`` seeds the instance (e.g. a basket database's multiset
    counts) without counting as a transaction.  Engine policy comes in
    as one :class:`~repro.engine.plan.EngineConfig` (``config=``): the
    planner resolves it to a :class:`~repro.engine.plan.Plan` and the
    live context is built through the single
    :func:`~repro.engine.plan.build_context` factory.  With
    ``config.engine == "auto"`` the session *re-plans online*: every
    ``planner.REPLAN_EVERY`` committed transactions it re-consults the
    cost model with the measured delta rate and live density size, and
    **promotes** the tier (incremental -> sharded) with an exact state
    handoff -- same density entries, same constraint statuses, version
    counters carried over -- when the workload grows past the fan-out
    bar.  The backend is pinned at construction and never changes
    across a promotion.

    The pre-planner kwargs (``backend=``, ``shards=``, ``workers=``,
    ``durable=``) still work but are **deprecated**: they warn with
    :class:`~repro.errors.EngineDeprecationWarning` and are translated
    to a fully pinned config via
    :meth:`~repro.engine.plan.EngineConfig.from_legacy` (``shards > 1``
    forces the sharded tier, exactly the historic behavior).
    ``shard_plan``/``executor`` pass a custom mask routing /  a shared
    executor through to the sharded tier.

    ``durable`` (a data-directory path or a
    :class:`~repro.engine.persist.DurableStore`) makes the session
    crash-proof.  On an empty directory the seed density is recorded
    (its fingerprint pins the directory to this seed) and a tx-0
    snapshot is written; on a non-empty directory the session
    *recovers* -- the provided ``density`` must then either be ``None``
    or match the recorded seed fingerprint, so reopening a grown
    instance from the same source database is checked, not assumed.
    ``fsync`` is the WAL policy (``"always"``/``"never"``);
    ``snapshot_every=N`` auto-snapshots (and compacts the log) every
    ``N`` committed transactions.
    """

    def __init__(
        self,
        ground,
        constraints: Iterable = (),
        density=None,
        backend: Union[str, Backend] = _UNSET,
        tol: float = DEFAULT_TOLERANCE,
        cache: Optional[ImplicationCache] = None,
        private_cache: bool = False,
        shards: int = _UNSET,
        plan=None,
        workers: Optional[int] = _UNSET,
        executor=None,
        durable=_UNSET,
        snapshot_every: Optional[int] = None,
        fsync: str = "always",
        retain: int = 2,
        config: Optional[EngineConfig] = None,
        planner: Optional[Planner] = None,
        _depth: int = 0,
    ):
        config = _resolve_session_config(
            config,
            backend=backend,
            shards=shards,
            workers=workers,
            durable=durable,
            shard_plan=plan,
            where="StreamSession",
            tol=tol,
            snapshot_every=snapshot_every,
            fsync=fsync,
            private_cache=private_cache,
            # +_depth hops the warning over wrapper frames (basket
            # databases, constraint sets, FD checkers) so the
            # deprecation is attributed to the end caller
            stacklevel=4 + _depth,
        )
        self._config = config
        self._planner = planner if planner is not None else default_planner()
        constraints = tuple(constraints)
        if config.snapshot_every is not None and config.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {config.snapshot_every}"
            )
        self._snapshot_every = config.snapshot_every
        self._wedged = False
        self._deltas = 0
        self._promotions = 0
        self._store: Optional[DurableStore] = None
        if config.durable is not None:
            self._store = (
                config.durable
                if isinstance(config.durable, DurableStore)
                else DurableStore(
                    config.durable, fsync=config.fsync, retain=retain
                )
            )
        if (
            self._store is not None
            and not self._store.is_empty()
            and config.backend is None
        ):
            # an auto reopen inherits the directory's recorded backend
            # instead of racing the cost model against history
            meta = self._store.meta or {}
            if meta.get("backend") in ("exact", "exact-vec", "float"):
                config = config.replace(backend=meta["backend"])
                # session.config must describe the session as it runs:
                # consumers forward it to build sibling components
                self._config = config
        self._plan = self._planner.plan(
            Workload(
                n=ground.size,
                constraints=len(constraints),
                density_size=len(density) if density else 0,
                streaming=True,
            ),
            config,
        )
        if self._plan.tier not in ("incremental", "sharded"):
            raise PlanError(
                f"stream sessions need a live tier, but the planner "
                f"resolved {self._plan.tier!r} for |S| = {ground.size}; "
                "live 2^n tables are required"
            )
        recovered = None
        if self._store is not None and not self._store.is_empty():
            recovered = self._store.recover()
            density = self._check_reopen(
                ground, self._plan.backend, config.tol, density, recovered
            )
        self._context = build_context(
            self._plan,
            ground,
            density=density,
            constraints=constraints,
            cache=cache,
            executor=executor,
            shard_plan=plan,
        )
        self._tx = 0
        if self._store is not None:
            if recovered is None:
                self._init_store(density)
            else:
                self._replay_recovered(recovered)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @staticmethod
    def _backend_name(backend) -> str:
        return backend if isinstance(backend, str) else backend.name

    def _check_reopen(self, ground, backend, tol, density, recovered):
        """Validate a reopen against the directory's identity record and
        return the density to seed the context with (the snapshot's)."""
        meta = self._store.meta
        if meta.get("kind") != "stream-session":
            raise PersistenceError(
                f"{self._store.path}: data dir belongs to "
                f"{meta.get('kind')!r}, not a stream session"
            )
        if meta["n"] != ground.size:
            raise PersistenceError(
                f"{self._store.path}: recorded |S|={meta['n']} != "
                f"ground set size {ground.size}"
            )
        if meta["backend"] != self._backend_name(backend):
            raise PersistenceError(
                f"{self._store.path}: recorded backend "
                f"{meta['backend']!r} != requested "
                f"{self._backend_name(backend)!r}"
            )
        if meta["tol"] != tol:
            raise PersistenceError(
                f"{self._store.path}: recorded tol {meta['tol']} != "
                f"requested {tol}"
            )
        if density is not None:
            seed_fp = density_fingerprint(
                density.items() if hasattr(density, "items") else density
            )
            if seed_fp != meta["seed_fingerprint"]:
                raise PersistenceError(
                    f"{self._store.path}: the provided seed density "
                    f"(fingerprint {seed_fp:#010x}) is not the one this "
                    f"directory was created from "
                    f"({meta['seed_fingerprint']:#010x}); refusing to "
                    "recover onto a different instance"
                )
        if recovered.snapshot is None:
            # crash window between write_meta and the tx-0 snapshot:
            # the seed only exists on the caller's side.  A matching
            # provided density (fingerprint-checked above) re-seeds;
            # otherwise recovery would silently drop the seed -- refuse.
            if density is not None:
                return density
            if meta["seed_fingerprint"] == density_fingerprint([]):
                return None
            raise PersistenceError(
                f"{self._store.path}: the seed snapshot is missing "
                "(interrupted initialization) and no density was "
                "provided; reopen with the original seed density"
            )
        return decode_density(recovered.snapshot)

    def _init_store(self, density) -> None:
        """First open on an empty directory: record identity + seed."""
        items = (
            sorted(density.items() if hasattr(density, "items") else density)
            if density
            else []
        )
        self._store.write_meta(
            {
                "format": 1,
                "kind": "stream-session",
                "n": self._context.ground.size,
                "backend": self._context.backend.name,
                "tol": self._context.tol,
                "seed_fingerprint": density_fingerprint(items),
            }
        )
        self.snapshot()

    def _replay_recovered(self, recovered) -> None:
        """Finish recovery: assert counters, replay the WAL tail."""
        if recovered.snapshot is not None:
            self._tx = recovered.snapshot["tx"]
            verify_recovered(self._context, recovered.snapshot)
        for seq, payload in recovered.tail:
            self._context.apply_batch(
                decode_transaction(self.ground, payload)
            )
            self._tx = seq
        if recovered.snapshot is None:
            # heal an interrupted initialization: persist the tx-0-style
            # snapshot now so the next open recovers without the seed
            self.snapshot()

    @property
    def durable(self) -> bool:
        """Whether commits are write-ahead logged to a data directory."""
        return self._store is not None

    @property
    def store(self) -> Optional[DurableStore]:
        """The attached durable store (None for in-memory sessions)."""
        return self._store

    def _check_not_wedged(self) -> None:
        if self._wedged:
            raise PersistenceError(
                "session is wedged: a durably-logged transaction failed "
                "to apply, so the live tables lag the log; reopen from "
                "the data directory to recover (replay heals the state)"
            )

    def snapshot(self) -> None:
        """Persist the live state and compact the write-ahead log."""
        if self._store is None:
            raise PersistenceError(
                "this session is not durable (pass durable=<data dir>)"
            )
        self._check_not_wedged()
        self._store.snapshot(snapshot_state(self._context, self._tx))

    def close(self) -> None:
        """Flush and close the durable store (and any owned executor)."""
        if self._store is not None:
            self._store.close()
        closer = getattr(self._context, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def context(self) -> IncrementalEvalContext:
        """The live context (set-function protocol, tables, versions)."""
        return self._context

    @property
    def config(self) -> EngineConfig:
        """The engine configuration this session was planned from."""
        return self._config

    @property
    def plan(self) -> Plan:
        """The currently active plan (changes across promotions)."""
        return self._plan

    @property
    def planner(self) -> Planner:
        """The planner auto sessions re-consult when re-planning."""
        return self._planner

    @property
    def promotions(self) -> int:
        """How many online tier promotions this session has performed."""
        return self._promotions

    @property
    def calibration(self) -> dict:
        """The host calibration behind this session's planner (surfaced
        in the service's ``/stats`` engine block): ``{"enabled": False}``
        for the stock cost model, else the measured profile's digest."""
        profile = getattr(self._planner, "profile", None)
        if profile is None:
            return {"enabled": False}
        summary = profile.summary()
        summary["enabled"] = True
        return summary

    @property
    def transport(self) -> Optional[dict]:
        """The sharded tier's transport counters (deltas shipped, full
        resyncs, shared-memory bytes, per shard) for the service's
        ``/stats`` engine block; ``None`` on unsharded sessions."""
        stats = getattr(self._context, "transport_stats", None)
        return stats() if callable(stats) else None

    # ------------------------------------------------------------------
    # online re-planning (config.engine == "auto")
    # ------------------------------------------------------------------
    def _measured_workload(self) -> Workload:
        return Workload(
            n=self._context.ground.size,
            constraints=len(self._context.constraints),
            delta_rate=self._deltas / max(1, self._tx),
            density_size=self._context.support_size(),
            streaming=True,
        )

    def _maybe_replan(self) -> None:
        if self._config.engine != "auto" or self._plan.tier == "sharded":
            return
        if not self._planner.replan_due(self._tx):
            return
        self.replan()

    def replan(self) -> Plan:
        """Re-consult the planner with the measured workload; promote the
        tier if the plan escalated.  Called automatically every
        ``planner.REPLAN_EVERY`` transactions on auto sessions; callable
        directly to force an immediate decision.

        The backend is pinned to the running one -- a promotion changes
        the tier, never the numeric representation, so the state
        handoff is exact.
        """
        pinned = self._config.replace(backend=self._plan.backend)
        new_plan = self._planner.plan(self._measured_workload(), pinned)
        if new_plan.tier == "sharded" and self._plan.tier != "sharded":
            self._promote(new_plan)
        return self._plan

    def _promote(self, new_plan: Plan) -> None:
        """Exact state handoff onto a higher tier: same density entries,
        same constraint statuses, version counters carried over (so
        fingerprint-keyed downstream caches stay monotonic)."""
        old = self._context
        new = build_context(
            new_plan,
            old.ground,
            density=dict(old.density_items()),
            constraints=old.constraints,
            cache=old.cache,
        )
        if (
            new.violated_constraints() != old.violated_constraints()
            or new.support_size() != old.support_size()
        ):
            raise PlanError(
                "tier promotion produced divergent state (this is a "
                "bug): violated/support mismatch after handoff"
            )
        new._theory_version = old.theory_version
        new._zero_version = old.zero_version
        self._context = new
        self._plan = new_plan
        self._promotions += 1

    @property
    def ground(self):
        """The ground set of the live instance."""
        return self._context.ground

    @property
    def transactions(self) -> int:
        """Number of committed transactions."""
        return self._tx

    def value(self, mask: int) -> Number:
        """Current ``f(X)`` (for basket streams: the live support)."""
        return self._context.value(mask)

    def support(self, subset) -> Number:
        """Live support of a subset given as labels/shorthand."""
        return self._context.value(self.ground.parse(subset))

    def violated_constraints(self) -> Tuple:
        """The watched constraints currently violated."""
        return self._context.violated_constraints()

    def satisfied_constraints(self) -> Tuple:
        """The watched constraints currently satisfied."""
        return self._context.satisfied_constraints()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def apply(self, deltas: Iterable[Tuple[int, Number]]) -> StreamReport:
        """Commit a batch of raw ``(mask, delta)`` density deltas.

        Durable sessions log the batch to the write-ahead log *before*
        touching the live tables; a crash after the append replays the
        transaction on recovery (it was acknowledged as committed), a
        crash during the append leaves a torn record that recovery
        drops (it never committed).
        """
        deltas = list(deltas)
        if self._store is not None:
            # validate masks before the append: a record must never hit
            # the log unless the apply below is guaranteed to accept it
            # (otherwise recovery would replay a poisoned transaction)
            n = self.ground.size
            for mask, _ in deltas:
                if mask < 0 or mask >> n:
                    raise ValueError(
                        f"mask {mask:#x} uses bits outside the ground "
                        f"set of size {n}"
                    )
            self._check_not_wedged()
            try:
                self._store.append(
                    self._tx + 1, encode_transaction(self.ground, deltas)
                )
            except OSError:
                # a failed append (ENOSPC, EIO) may have left partial
                # record bytes in the file; appending after them would
                # poison the log, so refuse all further writes -- the
                # reopen path repairs the torn bytes and heals
                self._wedged = True
                raise
            # the append is the commit point: advance the counter now,
            # so a failure in the apply below (sharded executor death,
            # ...) cannot make a later transaction reuse this sequence
            # number and brick the log -- reopening replays the record
            # and heals the live state instead
            self._tx += 1
            try:
                newly, restored = self._context.apply_batch(deltas)
            except BaseException:
                # the log has the record but the tables do not: wedge
                # the session so no later write or snapshot can persist
                # (and compact away) the divergent state
                self._wedged = True
                raise
        else:
            newly, restored = self._context.apply_batch(deltas)
            self._tx += 1
        self._deltas += len(deltas)
        if (
            self._snapshot_every is not None
            and self._store is not None
            and self._tx % self._snapshot_every == 0
        ):
            self.snapshot()
        report = StreamReport(
            self._tx, newly, restored, self._context.violated_constraints()
        )
        self._maybe_replan()
        return report

    def apply_ops(self, ops: Iterable[Op]) -> StreamReport:
        """Commit a batch of parsed log operations."""
        deltas: List[Tuple[int, Number]] = []
        staged = {}  # resolve "set" against density *plus staged deltas*
        for op, mask, amount in ops:
            if op == "delta":
                delta = amount
            elif op == "set":
                current = self._context.density_value(mask) + staged.get(mask, 0)
                delta = amount - current
            else:
                raise ValueError(f"unknown stream op {op!r}")
            staged[mask] = staged.get(mask, 0) + delta
            deltas.append((mask, delta))
        return self.apply(deltas)

    def insert(self, subset, count: Number = 1) -> StreamReport:
        """Commit a single-row insert (labels/shorthand accepted)."""
        mask = subset if isinstance(subset, int) else self.ground.parse(subset)
        return self.apply([(mask, count)])

    def delete(self, subset, count: Number = 1) -> StreamReport:
        """Commit a single-row delete."""
        mask = subset if isinstance(subset, int) else self.ground.parse(subset)
        return self.apply([(mask, -count)])

    def replay(self, lines: Sequence[str]) -> List[StreamReport]:
        """Replay a transaction log; one report per committed batch."""
        return [
            self.apply_ops(batch)
            for batch in parse_transaction_log(self.ground, lines)
        ]


# the log's value codec is the snapshot/WAL codec: one implementation
_parse_amount = parse_value


def parse_transaction_log(ground, lines: Sequence[str]) -> List[List[Op]]:
    """Parse the log format into transactions (lists of ops).

    ``ground`` is anything with ``.parse`` (subset shorthand codec).
    """
    transactions: List[List[Op]] = []
    current: List[Op] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()  # trailing comments allowed
        if not line:
            continue
        if line == "commit":
            transactions.append(current)
            current = []
            continue
        parts = line.split()
        op, rest = parts[0], parts[1:]
        if op not in ("+", "-", "=") or not rest or len(rest) > 2:
            raise ValueError(
                f"line {lineno}: expected '+|-|= SUBSET [AMOUNT]' or "
                f"'commit', got {raw!r}"
            )
        mask = ground.parse(rest[0])
        if op == "=":
            if len(rest) != 2:
                raise ValueError(
                    f"line {lineno}: '=' needs an explicit amount: {raw!r}"
                )
            amount = _parse_amount(rest[1])
            if amount < 0:
                raise ValueError(
                    f"line {lineno}: multiplicities are nonnegative: {raw!r}"
                )
            current.append(("set", mask, amount))
        else:
            amount = _parse_amount(rest[1]) if len(rest) == 2 else 1
            if amount < 0:
                raise ValueError(
                    f"line {lineno}: amounts are nonnegative "
                    f"(use '-' to delete): {raw!r}"
                )
            current.append(
                ("delta", mask, amount if op == "+" else -amount)
            )
    if current:
        transactions.append(current)
    return transactions
