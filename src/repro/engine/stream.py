"""Streaming workloads: transaction logs over an incremental context.

A :class:`StreamSession` wraps an
:class:`~repro.engine.incremental.IncrementalEvalContext` with the
transactional surface a live instance needs: apply a *batch* of row
deltas, get back the set of constraints the batch newly violated or
restored (net of intra-batch churn).  Sessions also parse the plain-text
transaction-log format replayed by ``repro stream``:

.. code-block:: text

    # one op per line; a `commit` line ends a transaction
    + AB        insert one row with itemset AB
    + AB 3      insert three
    - AB        delete one
    = AB 5      update: set the multiplicity of AB to 5
    commit

Subsets use the same shorthand as constraint files (``ground.parse``);
``#`` comments and blank lines are ignored; a trailing transaction
without ``commit`` is committed implicitly.

Like the rest of the engine, this module imports nothing from
:mod:`repro.core`; ground sets and constraints are duck-typed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import Backend
from repro.engine.decider import ImplicationCache
from repro.engine.incremental import (
    DEFAULT_TOLERANCE,
    IncrementalEvalContext,
    Number,
)

__all__ = ["StreamReport", "StreamSession", "parse_transaction_log"]

#: One parsed log operation: ``("delta", mask, amount)`` adds ``amount``
#: rows with itemset ``mask``; ``("set", mask, value)`` pins the
#: multiplicity (resolved against the live density at apply time).
Op = Tuple[str, int, Number]


class StreamReport:
    """What one committed transaction changed."""

    __slots__ = ("tx", "newly_violated", "restored", "violated")

    def __init__(
        self,
        tx: int,
        newly_violated: Tuple,
        restored: Tuple,
        violated: Tuple,
    ):
        self.tx = tx
        #: Constraints satisfied before the batch, violated after.
        self.newly_violated = newly_violated
        #: Constraints violated before the batch, satisfied after.
        self.restored = restored
        #: All tracked constraints violated after the batch.
        self.violated = violated

    @property
    def changed(self) -> bool:
        return bool(self.newly_violated or self.restored)

    def __repr__(self) -> str:
        return (
            f"StreamReport(tx={self.tx}, "
            f"newly_violated={list(self.newly_violated)}, "
            f"restored={list(self.restored)}, "
            f"violated={len(self.violated)})"
        )


class StreamSession:
    """Transactional deltas against one incremental evaluation context.

    Parameters mirror :class:`IncrementalEvalContext`; ``density`` seeds
    the instance (e.g. a basket database's multiset counts) without
    counting as a transaction.  ``shards > 1`` routes the session
    through a :class:`~repro.engine.shard.ShardedEvalContext` (same
    semantics, horizontally partitioned density; ``workers``/``plan``/
    ``executor`` pass through); ``shards = 1`` stays on the plain
    single-process incremental context.
    """

    def __init__(
        self,
        ground,
        constraints: Iterable = (),
        density=None,
        backend: Union[str, Backend] = "exact",
        tol: float = DEFAULT_TOLERANCE,
        cache: Optional[ImplicationCache] = None,
        private_cache: bool = False,
        shards: int = 1,
        plan=None,
        workers: Optional[int] = None,
        executor=None,
    ):
        common = dict(
            density=density,
            constraints=constraints,
            backend=backend,
            tol=tol,
            cache=cache,
            private_cache=private_cache,
        )
        if shards > 1 or plan is not None:
            from repro.engine.shard import ShardedEvalContext

            self._context = ShardedEvalContext(
                ground,
                shards=shards,
                plan=plan,
                workers=workers,
                executor=executor,
                **common,
            )
        else:
            self._context = IncrementalEvalContext(ground, **common)
        self._tx = 0

    # ------------------------------------------------------------------
    @property
    def context(self) -> IncrementalEvalContext:
        """The live context (set-function protocol, tables, versions)."""
        return self._context

    @property
    def ground(self):
        return self._context.ground

    @property
    def transactions(self) -> int:
        """Number of committed transactions."""
        return self._tx

    def value(self, mask: int) -> Number:
        """Current ``f(X)`` (for basket streams: the live support)."""
        return self._context.value(mask)

    def support(self, subset) -> Number:
        """Live support of a subset given as labels/shorthand."""
        return self._context.value(self.ground.parse(subset))

    def violated_constraints(self) -> Tuple:
        return self._context.violated_constraints()

    def satisfied_constraints(self) -> Tuple:
        return self._context.satisfied_constraints()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def apply(self, deltas: Iterable[Tuple[int, Number]]) -> StreamReport:
        """Commit a batch of raw ``(mask, delta)`` density deltas."""
        newly, restored = self._context.apply_batch(deltas)
        self._tx += 1
        return StreamReport(
            self._tx, newly, restored, self._context.violated_constraints()
        )

    def apply_ops(self, ops: Iterable[Op]) -> StreamReport:
        """Commit a batch of parsed log operations."""
        deltas: List[Tuple[int, Number]] = []
        staged = {}  # resolve "set" against density *plus staged deltas*
        for op, mask, amount in ops:
            if op == "delta":
                delta = amount
            elif op == "set":
                current = self._context.density_value(mask) + staged.get(mask, 0)
                delta = amount - current
            else:
                raise ValueError(f"unknown stream op {op!r}")
            staged[mask] = staged.get(mask, 0) + delta
            deltas.append((mask, delta))
        return self.apply(deltas)

    def insert(self, subset, count: Number = 1) -> StreamReport:
        """Commit a single-row insert (labels/shorthand accepted)."""
        mask = subset if isinstance(subset, int) else self.ground.parse(subset)
        return self.apply([(mask, count)])

    def delete(self, subset, count: Number = 1) -> StreamReport:
        """Commit a single-row delete."""
        mask = subset if isinstance(subset, int) else self.ground.parse(subset)
        return self.apply([(mask, -count)])

    def replay(self, lines: Sequence[str]) -> List[StreamReport]:
        """Replay a transaction log; one report per committed batch."""
        return [
            self.apply_ops(batch)
            for batch in parse_transaction_log(self.ground, lines)
        ]


def _parse_amount(token: str) -> Number:
    try:
        return int(token)
    except ValueError:
        return float(token)


def parse_transaction_log(ground, lines: Sequence[str]) -> List[List[Op]]:
    """Parse the log format into transactions (lists of ops).

    ``ground`` is anything with ``.parse`` (subset shorthand codec).
    """
    transactions: List[List[Op]] = []
    current: List[Op] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()  # trailing comments allowed
        if not line:
            continue
        if line == "commit":
            transactions.append(current)
            current = []
            continue
        parts = line.split()
        op, rest = parts[0], parts[1:]
        if op not in ("+", "-", "=") or not rest or len(rest) > 2:
            raise ValueError(
                f"line {lineno}: expected '+|-|= SUBSET [AMOUNT]' or "
                f"'commit', got {raw!r}"
            )
        mask = ground.parse(rest[0])
        if op == "=":
            if len(rest) != 2:
                raise ValueError(
                    f"line {lineno}: '=' needs an explicit amount: {raw!r}"
                )
            amount = _parse_amount(rest[1])
            if amount < 0:
                raise ValueError(
                    f"line {lineno}: multiplicities are nonnegative: {raw!r}"
                )
            current.append(("set", mask, amount))
        else:
            amount = _parse_amount(rest[1]) if len(rest) == 2 else 1
            if amount < 0:
                raise ValueError(
                    f"line {lineno}: amounts are nonnegative "
                    f"(use '-' to delete): {raw!r}"
                )
            current.append(
                ("delta", mask, amount if op == "+" else -amount)
            )
    if current:
        transactions.append(current)
    return transactions
