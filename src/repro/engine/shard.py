"""Horizontal sharding: partitioned density tables merged by summation.

The paper's density and support functions are *additive over disjoint
partitions of the instance rows* (Section 6.1: a basket database is a
list; splitting the list splits ``d^B`` into a sum), and the masked
zeta/differential transforms of the engine are linear in the density
(Proposition 2.9) -- so per-shard tables merge **exactly** by
elementwise sum::

    d_f = sum_k d_k      f = sum_k f_k      D_f^Y = sum_k D_{f_k}^Y

This module shards by *density mask*: a :class:`ShardPlan` routes every
subset mask ``U`` to one owning shard, so all rows with itemset ``U``
(inserts and the deletes that cancel them) land on the same shard.
Mask-routing makes the decomposition degenerate in a useful way -- the
per-shard densities have **disjoint supports**, hence

* merging never cancels across shards: ``d_f(U)`` is exactly the owning
  shard's entry, and ``Z(f) = intersect_k Z(f_k)``;
* a constraint is violated globally iff *some* shard has nonzero
  density inside ``L(X, Y)`` -- verdicts reduce by ``any`` over shards;
* support queries reduce by scalar sum: ``f(X) = sum_k f_k(X)``.

:class:`ShardedEvalContext` extends
:class:`~repro.engine.incremental.IncrementalEvalContext`: the merged
tables, constraint monitoring, zero set and version counters are the
inherited delta-maintained state, while the context additionally owns
the per-shard sparse densities with per-shard *version* counters.  A
delta therefore dirties exactly its owning shard (the dirty-shard fast
path); the :class:`~repro.engine.parallel.ParallelExecutor` resyncs and
recomputes only dirty shards, reusing worker-side tables for the rest.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`; ground sets, constraints and families are duck-typed.
"""

from __future__ import annotations

import itertools
import weakref
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine import batch
from repro.engine.backends import Backend, Table, _fits_int64
from repro.engine.decider import ImplicationCache
from repro.engine.incremental import (
    DEFAULT_TOLERANCE,
    IncrementalEvalContext,
    Number,
)

__all__ = [
    "DEFAULT_JOURNAL_BOUND",
    "ShardPlan",
    "ShardedEvalContext",
    "ShardedEvaluation",
    "sum_tables",
]

#: Per-shard delta-journal capacity when neither the caller nor the
#: planner picks one.  A shard whose unsynced gap exceeds its journal
#: falls back to a full payload reship, so the bound trades parent-side
#: memory (records kept) against worst-case resync cost.
DEFAULT_JOURNAL_BOUND = 1024

#: Knuth's multiplicative constant -- spreads consecutive masks across
#: shards far more evenly than ``mask % shards`` on clustered workloads.
_HASH_MULT = 0x9E3779B1


def _default_route(mask: int, shards: int) -> int:
    return ((mask * _HASH_MULT) & 0xFFFFFFFF) % shards


class ShardPlan:
    """A deterministic assignment of density masks to ``shards`` shards.

    Parameters
    ----------
    shards:
        The shard count ``K >= 1``.
    route:
        Optional ``mask -> shard`` function; must be deterministic and
        return values in ``range(shards)`` (checked on use).  The
        default is a multiplicative hash.  Uneven routes -- including
        ones that leave some shards empty -- are fully supported; only
        determinism is required, so that inserts and the deletes that
        cancel them meet on the same shard.
    """

    __slots__ = ("_shards", "_route")

    def __init__(self, shards: int, route: Optional[Callable[[int], int]] = None):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self._shards = shards
        self._route = route

    @property
    def shards(self) -> int:
        """How many shards the density space is split into."""
        return self._shards

    def shard_of(self, mask: int) -> int:
        """The shard owning density mask ``mask``."""
        if self._route is None:
            return _default_route(mask, self._shards)
        k = self._route(mask)
        if not 0 <= k < self._shards:
            raise ValueError(
                f"shard route sent mask {mask:#x} to shard {k}, "
                f"outside range(0, {self._shards})"
            )
        return k

    def partition_rows(self, rows: Iterable[int]) -> List[List[int]]:
        """Split row masks into per-shard lists (order-preserving)."""
        parts: List[List[int]] = [[] for _ in range(self._shards)]
        for mask in rows:
            parts[self.shard_of(mask)].append(mask)
        return parts

    def partition_density(
        self, density: Union[Mapping[int, Number], Iterable[Tuple[int, Number]]]
    ) -> List[Dict[int, Number]]:
        """Split a density mapping into per-shard mappings."""
        items = density.items() if hasattr(density, "items") else density
        parts: List[Dict[int, Number]] = [{} for _ in range(self._shards)]
        for mask, value in items:
            part = parts[self.shard_of(mask)]
            part[mask] = part.get(mask, 0) + value
        return parts

    def __repr__(self) -> str:
        kind = "default" if self._route is None else "custom"
        return f"ShardPlan(shards={self._shards}, route={kind})"


def sum_tables(tables: Sequence[Table], backend: Backend) -> Table:
    """Elementwise sum of same-length tables -- the shard merge.

    Delegates to :meth:`~repro.engine.backends.Backend.sum_tables`:
    vectorized left-to-right on the float backend (deterministic
    addition order, so integer-valued float tables merge bit-exactly),
    overflow-checked int64 adds with object-dtype promotion on the
    vectorized exact backend, elementwise python sums on the list-exact
    backend.
    """
    return backend.sum_tables(tables)


class ShardedEvaluation:
    """The merged result of one fan-out over the shards.

    ``violated[i]`` answers the i-th requested constraint (``any`` over
    shards -- exact under mask routing); ``support[mask]`` the requested
    support probes (scalar sums); the optional tables are the vectorized
    sums of the per-shard tables.  ``answers`` keeps the raw per-shard
    :class:`~repro.engine.parallel.ShardAnswer` objects.
    """

    __slots__ = (
        "violated",
        "support",
        "density_table",
        "support_table",
        "differential_tables",
        "answers",
    )

    def __init__(self, violated, support, density_table, support_table,
                 differential_tables, answers):
        self.violated = violated
        self.support = support
        self.density_table = density_table
        self.support_table = support_table
        self.differential_tables = differential_tables
        self.answers = answers

    def __repr__(self) -> str:
        return (
            f"ShardedEvaluation(violated={sum(map(bool, self.violated))}"
            f"/{len(self.violated)}, probes={len(self.support)}, "
            f"shards={len(self.answers)})"
        )


class ShardedEvalContext(IncrementalEvalContext):
    """An incremental context whose instance rows are horizontally sharded.

    The *merged* state -- density/support/differential tables, tracked
    constraints, zero set, theory/zero versions -- is the inherited
    :class:`IncrementalEvalContext` machinery, maintained in ``O(2^n)``
    per delta as before.  On top, the context partitions the density by
    a :class:`ShardPlan` and maintains per-shard sparse densities with
    version counters: a delta touches exactly one shard, so downstream
    consumers (the parallel executor, re-merge caches) recompute only
    the dirty shard.

    Parameters mirror :class:`IncrementalEvalContext` plus:

    shards:
        Shard count ``K`` (ignored when an explicit ``plan`` is given).
    plan:
        A :class:`ShardPlan` (for custom routing).
    executor:
        An optional :class:`~repro.engine.parallel.ParallelExecutor`
        used by :meth:`evaluate`; ``workers`` builds one on demand.
        ``K = 1`` or ``workers = 1`` stays single-process inline.
    sync:
        Executor sync strategy: ``"delta"`` (default) ships only the
        journalled ``(mask, delta)`` records since each shard's last
        synced version; ``"reship"`` always sends the full sparse
        payload (the pre-journal behaviour, kept for benchmarking and
        as a planner escape hatch).
    journal_bound:
        Per-shard delta-journal capacity (default
        :data:`DEFAULT_JOURNAL_BOUND`); a dirty gap beyond it forces a
        full reship for that shard.
    shm_tables:
        ``True``/``False`` forces shared-memory table returns on/off;
        ``None`` (default) lets :meth:`evaluate` decide -- shared
        memory when the executor runs real worker processes and the
        backend stores ndarray tables, pickled returns otherwise.
    """

    __slots__ = (
        "_plan",
        "_shard_density",
        "_shard_versions",
        "_synced_versions",
        "_synced_epoch",
        "_executor",
        "_owns_executor",
        "_scope",
        "_executor_finalizer",
        "_sync_strategy",
        "_journal_bound",
        "_shard_journal",
        "_journal_unsafe",
        "_ever_synced",
        "_shm_tables",
        "_deltas_shipped",
        "_full_resyncs",
        "_shm_bytes",
    )

    _scope_counter = itertools.count()

    def __init__(
        self,
        ground,
        density: Optional[Mapping[int, Number]] = None,
        constraints: Iterable = (),
        shards: int = 1,
        plan: Optional[ShardPlan] = None,
        backend: Union[str, Backend] = "exact",
        tol: float = DEFAULT_TOLERANCE,
        cache: Optional[ImplicationCache] = None,
        private_cache: bool = False,
        executor=None,
        workers: Optional[int] = None,
        sync: str = "delta",
        journal_bound: Optional[int] = None,
        shm_tables: Optional[bool] = None,
    ):
        if plan is None:
            plan = ShardPlan(shards)
        if sync not in ("delta", "reship"):
            raise ValueError(
                f"sync strategy must be 'delta' or 'reship', got {sync!r}"
            )
        if journal_bound is None:
            journal_bound = DEFAULT_JOURNAL_BOUND
        if journal_bound < 1:
            raise ValueError(
                f"journal bound must be >= 1, got {journal_bound}"
            )
        # shard state must exist before super().__init__ seeds the
        # density (seeding funnels through our apply_delta override)
        self._plan = plan
        self._shard_density: List[Dict[int, Number]] = [
            {} for _ in range(plan.shards)
        ]
        self._shard_versions = [0] * plan.shards
        self._synced_versions: List[Optional[int]] = [None] * plan.shards
        self._synced_epoch: Optional[int] = None
        self._sync_strategy = sync
        self._journal_bound = journal_bound
        self._shard_journal: List[Deque[Tuple[int, Number]]] = [
            deque(maxlen=journal_bound) for _ in range(plan.shards)
        ]
        self._journal_unsafe = [False] * plan.shards
        self._ever_synced = [False] * plan.shards
        self._shm_tables = shm_tables
        self._deltas_shipped = [0] * plan.shards
        self._full_resyncs = [0] * plan.shards
        self._shm_bytes = [0] * plan.shards
        # contexts may share one executor: the scope keeps their shard
        # ids from colliding in the workers' state
        self._scope = f"ctx{next(self._scope_counter)}"
        self._owns_executor = False
        self._executor_finalizer = None
        if executor is None and workers is not None and workers > 1:
            from repro.engine.parallel import ParallelExecutor

            executor = ParallelExecutor(workers=workers)
            self._adopt_executor(executor)
        self._executor = executor
        super().__init__(
            ground,
            density=density,
            constraints=constraints,
            backend=backend,
            tol=tol,
            cache=cache,
            private_cache=private_cache,
        )

    # ------------------------------------------------------------------
    # shard state
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        """The routing plan (shard count + mask assignment)."""
        return self._plan

    @property
    def shards(self) -> int:
        """How many shards this context fans out over."""
        return self._plan.shards

    @property
    def executor(self):
        """The :class:`ParallelExecutor` evaluations fan out through."""
        return self._executor

    @property
    def shard_versions(self) -> Tuple[int, ...]:
        """Per-shard version counters: bumped on every owned delta."""
        return tuple(self._shard_versions)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Nonzero density entries per shard (empty shards report 0)."""
        return tuple(len(d) for d in self._shard_density)

    def shard_density_items(self, k: int) -> List[Tuple[int, Number]]:
        """The k-th shard's sparse density, sorted by mask."""
        return sorted(self._shard_density[k].items())

    def shard_density_table(self, k: int) -> Table:
        """The k-th shard's dense density table (a fresh table)."""
        return self.backend.scatter(
            1 << self._n, self._shard_density[k].items()
        )

    def shard_support_table(self, k: int) -> Table:
        """``f_k``: the k-th shard's support table (a fresh table)."""
        table = self.shard_density_table(k)
        self.backend.superset_zeta_inplace(table)
        return table

    def shard_differential_table(self, k: int, family) -> Table:
        """``D_{f_k}^Y``: the k-th shard's differential table."""
        table = self.shard_density_table(k)
        return batch.differential_table(
            table, tuple(family.members), self.backend
        )

    # ------------------------------------------------------------------
    # merged tables (the vectorized-summation oracle)
    # ------------------------------------------------------------------
    def merged_density_table(self) -> Table:
        """Sum of the per-shard density tables.

        Exactly equals the live :meth:`density_table` (property-tested):
        mask routing gives the shards disjoint supports, so the sum
        never mixes entries.
        """
        return sum_tables(
            [self.shard_density_table(k) for k in range(self.shards)],
            self.backend,
        )

    def merged_support_table(self) -> Table:
        """Sum of the per-shard support tables (equals ``f``'s table)."""
        return sum_tables(
            [self.shard_support_table(k) for k in range(self.shards)],
            self.backend,
        )

    def merged_differential_table(self, family) -> Table:
        """Sum of the per-shard differentials (equals ``D_f^Y``)."""
        return sum_tables(
            [
                self.shard_differential_table(k, family)
                for k in range(self.shards)
            ],
            self.backend,
        )

    # ------------------------------------------------------------------
    # deltas: route to the owning shard
    # ------------------------------------------------------------------
    def apply_delta(self, mask: int, delta: Number) -> List[Tuple[object, bool]]:
        """Apply one density delta, dirtying only the owning shard.

        The record also lands in the shard's delta journal, which is
        what :meth:`sync_executor` ships instead of the full payload.
        A delta the vectorized exact backend cannot hold in int64 (big
        ints, Fractions) marks the shard journal-unsafe: the worker's
        cached table would promote to object dtype mid-apply, so the
        next sync reships the payload wholesale instead.
        """
        flips = super().apply_delta(mask, delta)
        if delta != 0:
            k = self._plan.shard_of(mask)
            part = self._shard_density[k]
            value = part.get(mask, 0) + delta
            if value == 0:
                part.pop(mask, None)
            else:
                part[mask] = value
            self._shard_versions[k] += 1
            self._shard_journal[k].append((mask, delta))
            if (
                self.backend.exact
                and self.backend.vectorized
                and not _fits_int64(delta)
            ):
                self._journal_unsafe[k] = True
        return flips

    # ------------------------------------------------------------------
    # parallel fan-out
    # ------------------------------------------------------------------
    def _adopt_executor(self, executor) -> None:
        """Take ownership: the executor dies with this context."""
        self._owns_executor = True
        # backstop for contexts that are dropped without close(): the
        # finalizer holds the executor (not the context), so worker
        # pools are reclaimed when the context is garbage-collected
        self._executor_finalizer = weakref.finalize(
            self, _shutdown_executor, executor
        )

    def close(self) -> None:
        """Shut down an executor this context created (a shared,
        caller-provided executor is left running)."""
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()
        if self._executor_finalizer is not None:
            self._executor_finalizer.detach()

    def __enter__(self) -> "ShardedEvalContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_executor(self):
        if self._executor is None:
            from repro.engine.parallel import ParallelExecutor

            executor = ParallelExecutor(workers=1)
            self._adopt_executor(executor)
            self._executor = executor
        return self._executor

    def sync_executor(self) -> Tuple[int, ...]:
        """Push dirty shards' state to their workers.

        Only shards whose version moved since the last sync are touched
        (the dirty-shard fast path); returns the synced shard ids.
        Under the ``"delta"`` strategy a dirty shard ships just the
        journalled ``(mask, delta)`` records since its last synced
        version -- O(gap) on the wire instead of O(nnz) -- and the
        worker maintains its cached tables in place.  The full payload
        reship remains the fallback whenever the delta path cannot be
        trusted:

        * the shard was never synced, or the executor epoch moved
          (``clear()``, a worker-crash respawn) -- the worker has no
          base state;
        * the dirty gap exceeds the journal bound -- the records are
          gone;
        * the journal holds a delta the vectorized exact backend cannot
          apply in int64 (object-dtype promotion fallback);
        * the worker itself reports it no longer holds the base version
          (evicted payload, respawned pool).
        """
        executor = self._require_executor()
        epoch = getattr(executor, "epoch", None)
        if epoch != self._synced_epoch:
            self._synced_versions = [None] * self.shards
            self._synced_epoch = epoch
        dirty = [
            k
            for k in range(self.shards)
            if self._synced_versions[k] != self._shard_versions[k]
        ]
        if not dirty:
            return ()
        delta_updates: List[Tuple[int, int, int, List[Tuple[int, Number]]]] = []
        full_loads: List[int] = []
        for k in dirty:
            base = self._synced_versions[k]
            cur = self._shard_versions[k]
            journal = self._shard_journal[k]
            gap = None if base is None else cur - base
            if (
                self._sync_strategy == "delta"
                and gap is not None
                and 0 < gap <= len(journal)
                and not self._journal_unsafe[k]
            ):
                records = list(journal)[-gap:]
                delta_updates.append((k, base, cur, records))
            else:
                full_loads.append(k)
        if delta_updates:
            applied = executor.apply_deltas_many(
                delta_updates, self.backend.name, scope=self._scope
            )
            for (k, _base, _cur, records), ok in zip(delta_updates, applied):
                if ok:
                    self._deltas_shipped[k] += len(records)
                else:
                    full_loads.append(k)
        if full_loads:
            executor.load_density_many(
                [
                    (k, self._shard_versions[k], self.shard_density_items(k))
                    for k in full_loads
                ],
                scope=self._scope,
            )
            for k in full_loads:
                if self._ever_synced[k]:
                    self._full_resyncs[k] += 1
                self._journal_unsafe[k] = False
        for k in dirty:
            self._synced_versions[k] = self._shard_versions[k]
            self._ever_synced[k] = True
        return tuple(dirty)

    def transport_stats(self) -> Dict[str, object]:
        """Cumulative transport counters (surfaced by ``/stats``).

        ``deltas_shipped`` counts journal records applied worker-side,
        ``full_resyncs`` counts payload reships *after* a shard's first
        load (the first load is the unavoidable baseline, not a
        fallback), ``shm_bytes`` counts table bytes read back through
        shared-memory segments instead of pickles.
        """
        per_shard = [
            {
                "shard": k,
                "deltas_shipped": self._deltas_shipped[k],
                "full_resyncs": self._full_resyncs[k],
                "shm_bytes": self._shm_bytes[k],
            }
            for k in range(self.shards)
        ]
        return {
            "sync": self._sync_strategy,
            "journal_bound": self._journal_bound,
            "shm_tables": self._shm_tables,
            "deltas_shipped": sum(self._deltas_shipped),
            "full_resyncs": sum(self._full_resyncs),
            "shm_bytes": sum(self._shm_bytes),
            "per_shard": per_shard,
        }

    def evaluate(
        self,
        constraints: Optional[Sequence] = None,
        probes: Sequence[int] = (),
        families: Sequence = (),
        return_tables: bool = False,
    ) -> ShardedEvaluation:
        """Fan one evaluation out over the shards and merge exactly.

        ``constraints`` (default: the tracked ones) are answered as
        violated-iff-some-shard-hits; ``probes`` are support masks
        answered by scalar sum; ``families`` requests per-shard
        differential tables, merged by vectorized sum (implies
        ``return_tables`` for those).  Runs on the attached executor --
        worker processes hold per-shard tables keyed by shard version,
        so clean shards answer from cache.
        """
        from repro.engine.parallel import EvalRequest

        if constraints is None:
            constraints = self.constraints
        constraints = list(constraints)
        specs = tuple(
            (c.lhs, tuple(c.family.members)) for c in constraints
        )
        probe_masks = tuple(
            self._ground.parse(p) if not isinstance(p, int) else p
            for p in probes
        )
        for mask in probe_masks:
            self._check_mask(mask)
        family_members = tuple(tuple(f.members) for f in families)
        executor = self._require_executor()
        self.sync_executor()
        want_tables = return_tables or bool(family_members)
        if self._shm_tables is not None:
            use_shm = self._shm_tables and want_tables and not executor.inline
        else:
            # shared memory pays off exactly when tables are ndarrays
            # and a real process boundary would otherwise pickle them
            use_shm = (
                want_tables
                and not executor.inline
                and self.backend.vectorized
            )
        requests = [
            EvalRequest(
                shard_id=k,
                scope=self._scope,
                version=self._shard_versions[k],
                n=self._n,
                backend=self.backend.name,
                tol=self._tol,
                constraints=specs,
                probes=probe_masks,
                families=family_members,
                return_tables=want_tables,
                shm_tables=use_shm,
            )
            for k in range(self.shards)
        ]
        answers = executor.evaluate(requests)
        violated = tuple(
            any(a.verdicts[i] for a in answers)
            for i in range(len(constraints))
        )
        support = {
            mask: _sum_scalars((a.probes[i] for a in answers), self.backend)
            for i, mask in enumerate(probe_masks)
        }
        density = support_tbl = None
        diffs: Dict[Tuple[int, ...], Table] = {}
        if want_tables:
            density, support_tbl, diffs = self._merge_answer_tables(
                answers, family_members
            )
        return ShardedEvaluation(
            violated, support, density, support_tbl, diffs, answers
        )

    def _merge_answer_tables(
        self,
        answers: Sequence,
        family_members: Tuple[Tuple[int, ...], ...],
    ) -> Tuple[Table, Table, Dict[Tuple[int, ...], Table]]:
        """Merge per-shard answer tables, attaching shm descriptors.

        A :class:`~repro.engine.parallel.ShmTable` descriptor is
        resolved to a read-only ndarray view over the worker's
        published segment; its generation must match the shard version
        this context just requested, so a respawned or lagging worker
        can never feed a stale table into the merge.  The merged
        tables are fresh copies (``sum_tables`` copies its first
        input), so every attachment is closed before returning.
        """
        from repro.engine.parallel import ShmTable, attach_shm_table

        segments: List = []

        def resolve(table, shard_id: int):
            if not isinstance(table, ShmTable):
                return table
            if table.generation != self._shard_versions[shard_id]:
                raise RuntimeError(
                    f"shard {shard_id} returned a shared-memory table "
                    f"from generation {table.generation}, expected "
                    f"{self._shard_versions[shard_id]} -- stale segment"
                )
            view, segment = attach_shm_table(table)
            segments.append(segment)
            self._shm_bytes[shard_id] += table.nbytes
            return view

        resolved: List[Tuple] = []
        try:
            for a in answers:
                resolved.append(
                    (
                        resolve(a.density_table, a.shard_id),
                        resolve(a.support_table, a.shard_id),
                        [
                            resolve(t, a.shard_id)
                            for t in a.differential_tables
                        ],
                    )
                )
            density = sum_tables([r[0] for r in resolved], self.backend)
            support_tbl = sum_tables([r[1] for r in resolved], self.backend)
            diffs = {
                members: sum_tables(
                    [r[2][j] for r in resolved], self.backend
                )
                for j, members in enumerate(family_members)
            }
        finally:
            # drop every view before closing: a numpy array exported
            # from shm.buf keeps the segment's buffer alive, and
            # close() on a segment with live exports raises BufferError
            del resolved
            for segment in segments:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - traceback refs
                    pass
        return density, support_tbl, diffs

    def __repr__(self) -> str:
        return (
            f"ShardedEvalContext(|S|={self._n}, shards={self.shards}, "
            f"backend={self.backend.name!r}, nnz={self.support_size()}, "
            f"tracked={len(self._constraints)})"
        )


def _shutdown_executor(executor) -> None:
    executor.shutdown()


def _sum_scalars(values, backend: Backend):
    total = 0
    for v in values:
        total = total + v
    return total if backend.exact else float(total)
