"""Durability: a write-ahead log and versioned snapshots for live state.

Everything the incremental engine maintains is a function of the density
(equation (5) and Proposition 2.9), and the density is a function of the
committed delta stream -- so durability only has to make the *stream*
crash-proof.  This module provides the three layers a durable session
needs:

:class:`WriteAheadLog`
    An append-only file of CRC-framed records.  Each record carries one
    committed transaction serialized in the exact plain-text format that
    ``repro stream`` replays (``+|-|= SUBSET [AMOUNT]`` lines ending in
    ``commit``), framed by a fixed header ``(seq, length, crc32)`` so a
    reader can detect truncation and bit rot.  A *torn final record* --
    the file ends mid-write because the process died -- is dropped on
    recovery (that transaction never committed); a CRC or framing
    failure anywhere *earlier* raises
    :class:`~repro.errors.CorruptWalError` because committed data is
    gone.  The fsync policy is per-log: ``"always"`` fsyncs every
    append (a crashed process loses nothing it acknowledged),
    ``"never"`` leaves flushing to the OS page cache (faster; an OS
    crash may drop the newest suffix, which recovery then treats as a
    torn tail).

:class:`SnapshotStore`
    Versioned JSON snapshots written atomically (temp file + rename +
    directory fsync), named by the transaction count they cover.  The
    newest ``retain`` snapshots are kept, older ones pruned.

:class:`DurableStore`
    One data directory combining both, plus a ``meta.json`` identity
    record: append transactions, write snapshots (which *compact* the
    log -- covered records are dropped by an atomic rewrite), and
    :meth:`~DurableStore.recover` the pair ``(snapshot, log tail)``
    with every crash window checked:

    * torn final record -> dropped (reported via ``torn_tail``);
    * CRC/framing damage before the tail -> ``CorruptWalError``;
    * record sequence gap after the snapshot -> ``WalGapError``
      (committed transactions are missing: fail loudly);
    * snapshot ahead of the log (its records already compacted, or the
      log empty/stale) -> fine, the snapshot alone carries the state.

The session-facing helpers (:func:`encode_transaction`,
:func:`snapshot_state`, :func:`verify_recovered`) serialize a batch of
density deltas and capture/assert the consistency counters -- density
fingerprint, support size, violated-constraint count, shard sizes --
that make "replaying the log reproduces the live tables exactly" an
*asserted* recovery invariant rather than a hope.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`; ground sets are duck-typed (``parse`` /
``format_mask``) and payloads are opaque bytes at the store layer, so
other subsystems (the streaming FD checker persists relation *rows*)
reuse the same log/snapshot machinery with their own codecs.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CorruptSnapshotError,
    CorruptWalError,
    PersistenceError,
    WalGapError,
)

__all__ = [
    "DurableStore",
    "RecoveredState",
    "SnapshotStore",
    "WriteAheadLog",
    "decode_transaction",
    "density_fingerprint",
    "encode_transaction",
    "format_subset",
    "parse_value",
    "snapshot_state",
    "verify_recovered",
]

#: Record framing: little-endian ``(seq: u64, length: u32, crc32: u32)``
#: followed by ``length`` payload bytes; the CRC covers the payload.
_HEADER = struct.Struct("<QII")

FSYNC_POLICIES = ("always", "never")

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.json$")


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``path`` atomically: temp file, fsync, rename, dir fsync."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


class WriteAheadLog:
    """Append-only CRC-framed record log with torn-tail recovery."""

    def __init__(self, path: str, fsync: str = "always"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._path = path
        self._fsync = fsync
        self._fh = None

    @property
    def path(self) -> str:
        """The log file's path."""
        return self._path

    @property
    def fsync_policy(self) -> str:
        """``"always"`` (fsync every append) or ``"never"``."""
        return self._fsync

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, seq: int, payload: bytes) -> None:
        """Durably append one record (per the fsync policy)."""
        if self._fh is None:
            self._fh = open(self._path, "ab")
        self._fh.write(_HEADER.pack(seq, len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.flush()
        if self._fsync == "always":
            os.fsync(self._fh.fileno())

    def sync(self) -> None:
        """Flush and fsync regardless of policy (used before snapshots)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, sync and release the log file handle."""
        if self._fh is not None:
            self._fh.flush()
            if self._fsync == "always":
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # reading / repair
    # ------------------------------------------------------------------
    def scan(self) -> Tuple[List[Tuple[int, bytes]], bool]:
        """Read every complete record; returns ``(records, torn_tail)``.

        A record that the file ends inside -- short header, short
        payload, or a CRC mismatch on the very last framed record -- is
        a *torn tail*: the write was interrupted, the transaction never
        committed, and it is excluded from ``records``.  The same
        damage strictly before the end of the file means committed
        records are unreadable and raises :class:`CorruptWalError`.
        """
        if not os.path.exists(self._path):
            return [], False
        with open(self._path, "rb") as fh:
            blob = fh.read()
        records: List[Tuple[int, bytes]] = []
        offset = 0
        total = len(blob)
        while offset < total:
            if offset + _HEADER.size > total:
                return records, True  # torn mid-header
            seq, length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > total:
                return records, True  # torn mid-payload
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                if end == total:
                    return records, True  # torn final record
                raise CorruptWalError(
                    f"{self._path}: record at byte {offset} (seq {seq}) "
                    "fails its CRC before the end of the log; committed "
                    "transactions are unrecoverable"
                )
            records.append((seq, payload))
            offset = end
        return records, False

    def repair(self) -> Tuple[List[Tuple[int, bytes]], bool]:
        """Scan and physically truncate a torn tail; returns the scan."""
        records, torn = self.scan()
        if torn:
            valid = sum(
                _HEADER.size + len(payload) for _, payload in records
            )
            with open(self._path, "rb+") as fh:
                fh.truncate(valid)
            _fsync_dir(os.path.dirname(self._path) or ".")
        return records, torn

    def rewrite(self, records: Iterable[Tuple[int, bytes]]) -> None:
        """Atomically replace the log's contents (compaction)."""
        self.close()
        chunks = []
        for seq, payload in records:
            chunks.append(
                _HEADER.pack(seq, len(payload), zlib.crc32(payload))
            )
            chunks.append(payload)
        _atomic_write(self._path, b"".join(chunks))

    def __repr__(self) -> str:
        return f"WriteAheadLog({self._path!r}, fsync={self._fsync!r})"


class SnapshotStore:
    """Versioned, atomically-written JSON snapshots in one directory."""

    def __init__(self, dirpath: str, retain: int = 2):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self._dir = dirpath
        self._retain = retain

    def _path_for(self, tx: int) -> str:
        return os.path.join(self._dir, f"snapshot-{tx:016d}.json")

    def list(self) -> List[Tuple[int, str]]:
        """``(tx, path)`` for every snapshot, oldest first."""
        entries = []
        for name in os.listdir(self._dir):
            match = _SNAPSHOT_RE.match(name)
            if match:
                entries.append((int(match.group(1)), os.path.join(self._dir, name)))
        entries.sort()
        return entries

    def write(self, payload: dict) -> str:
        """Persist ``payload`` (must carry ``"tx"``) and prune old ones."""
        tx = payload["tx"]
        path = self._path_for(tx)
        _atomic_write(
            path, json.dumps(payload, separators=(",", ":")).encode()
        )
        for old_tx, old_path in self.list()[: -self._retain or None]:
            if old_tx != tx:
                os.unlink(old_path)
        return path

    def latest(self) -> Optional[dict]:
        """The newest snapshot's payload, or None; corruption is loud."""
        entries = self.list()
        if not entries:
            return None
        tx, path = entries[-1]
        try:
            with open(path, "rb") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as err:
            raise CorruptSnapshotError(
                f"{path}: snapshot cannot be decoded ({err}); refusing to "
                "fall back silently"
            ) from err
        if payload.get("tx") != tx:
            raise CorruptSnapshotError(
                f"{path}: snapshot claims tx {payload.get('tx')} but is "
                f"named for tx {tx}"
            )
        return payload

    def __repr__(self) -> str:
        return f"SnapshotStore({self._dir!r}, retain={self._retain})"


class RecoveredState:
    """What :meth:`DurableStore.recover` reconstructed."""

    __slots__ = ("snapshot", "tail", "torn_tail")

    def __init__(self, snapshot: Optional[dict], tail: List[Tuple[int, bytes]],
                 torn_tail: bool):
        #: The newest snapshot payload (None when only the log exists).
        self.snapshot = snapshot
        #: ``(seq, payload)`` records *after* the snapshot, contiguous.
        self.tail = tail
        #: Whether a torn final record was dropped during recovery.
        self.torn_tail = torn_tail

    @property
    def tx(self) -> int:
        """The transaction count the recovered state reaches."""
        if self.tail:
            return self.tail[-1][0]
        return self.snapshot["tx"] if self.snapshot else 0

    def __repr__(self) -> str:
        base = self.snapshot["tx"] if self.snapshot else 0
        return (
            f"RecoveredState(snapshot_tx={base}, tail={len(self.tail)}, "
            f"torn_tail={self.torn_tail})"
        )


class DurableStore:
    """One data directory: ``meta.json`` + ``wal.log`` + snapshots.

    The store is payload-agnostic: sequence numbers are transaction
    counts, payloads are opaque bytes, and the snapshot dict carries
    whatever state its owner needs (plus the mandatory ``"tx"``).  The
    owner-level codecs live next to their owners --
    :mod:`repro.engine.stream` persists density transactions through
    :func:`encode_transaction`, the relational layer persists rows.
    """

    META = "meta.json"
    WAL = "wal.log"

    def __init__(self, path: str, fsync: str = "always", retain: int = 2):
        self._path = path
        os.makedirs(path, exist_ok=True)
        self._wal = WriteAheadLog(os.path.join(path, self.WAL), fsync=fsync)
        self._snapshots = SnapshotStore(path, retain=retain)
        self._meta: Optional[dict] = None

    @property
    def path(self) -> str:
        """The store's data directory."""
        return self._path

    @property
    def wal(self) -> WriteAheadLog:
        """The store's write-ahead log."""
        return self._wal

    @property
    def snapshots(self) -> SnapshotStore:
        """The store's versioned snapshot directory view."""
        return self._snapshots

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def meta(self) -> Optional[dict]:
        """The identity record (``meta.json``), or None when empty."""
        if self._meta is None:
            meta_path = os.path.join(self._path, self.META)
            if os.path.exists(meta_path):
                try:
                    with open(meta_path, "rb") as fh:
                        self._meta = json.load(fh)
                except (OSError, ValueError) as err:
                    raise CorruptSnapshotError(
                        f"{meta_path}: meta record cannot be decoded ({err})"
                    ) from err
        return self._meta

    def is_empty(self) -> bool:
        """Whether the directory holds no durable state yet."""
        return self.meta is None

    def write_meta(self, meta: dict) -> None:
        """Atomically persist the identity record."""
        _atomic_write(
            os.path.join(self._path, self.META),
            json.dumps(meta, separators=(",", ":")).encode(),
        )
        self._meta = dict(meta)

    # ------------------------------------------------------------------
    # the durable write path
    # ------------------------------------------------------------------
    def append(self, seq: int, payload: bytes) -> None:
        """Append one committed transaction (write-ahead: call *before*
        applying to the live state)."""
        self._wal.append(seq, payload)

    def snapshot(self, payload: dict) -> str:
        """Persist a snapshot and compact the log it covers.

        The order is crash-safe: the log is fsynced, the snapshot lands
        atomically, *then* covered records are dropped.  A crash between
        the last two steps leaves records the snapshot already covers --
        recovery skips them by sequence number.
        """
        self._wal.sync()
        path = self._snapshots.write(payload)
        covered = payload["tx"]
        records, torn = self._wal.scan()
        if torn:
            raise CorruptWalError(
                f"{self._wal.path}: torn record found while compacting a "
                "live log (writes and snapshots must not race)"
            )
        self._wal.rewrite(
            [(seq, body) for seq, body in records if seq > covered]
        )
        return path

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Reconstruct ``(snapshot, contiguous log tail)`` or fail loudly."""
        records, torn = self._wal.repair()
        for (prev_seq, _), (seq, _) in zip(records, records[1:]):
            if seq <= prev_seq:
                raise CorruptWalError(
                    f"{self._wal.path}: record sequence regressed "
                    f"({prev_seq} -> {seq})"
                )
        snapshot = self._snapshots.latest()
        base = snapshot["tx"] if snapshot else 0
        tail = [(seq, payload) for seq, payload in records if seq > base]
        expected = base
        for seq, _ in tail:
            expected += 1
            if seq != expected:
                raise WalGapError(
                    f"{self._wal.path}: transactions {expected}..{seq - 1} "
                    f"are missing after snapshot tx {base}; the log has "
                    "lost committed records"
                )
        return RecoveredState(snapshot, tail, torn)

    def close(self) -> None:
        """Flush and close the write-ahead log file handle."""
        self._wal.close()

    def reset(self) -> None:
        """Erase the directory's durable state (meta, WAL, snapshots).

        Used when a directory is being *re-seeded* from another store
        -- e.g. a WAL-shipping standby whose primary was rebuilt -- so
        stale state from a previous life cannot shadow the new seed.
        The directory itself is kept.
        """
        self._wal.close()
        for name in os.listdir(self._path):
            if (
                name in (self.META, self.WAL)
                or name == self.WAL + ".tmp"
                or name == self.META + ".tmp"
                or _SNAPSHOT_RE.match(name)
            ):
                os.unlink(os.path.join(self._path, name))
        _fsync_dir(self._path)
        self._meta = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore({self._path!r}, "
            f"fsync={self._wal.fsync_policy!r})"
        )


# ----------------------------------------------------------------------
# density-transaction codec (the ``repro stream`` log format)
# ----------------------------------------------------------------------
Number = Union[int, float, Fraction]


def format_subset(ground, mask: int) -> str:
    """``mask`` in transaction-log shorthand (``"0"`` for the empty set,
    which -- unlike ``format_mask``'s ``"(/)"`` -- round-trips through
    ``ground.parse``)."""
    return "0" if mask == 0 else ground.format_mask(mask)


def _format_value(value: Number) -> str:
    if isinstance(value, bool):
        raise PersistenceError("booleans are not density amounts")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)  # repr round-trips float64 exactly
    if isinstance(value, Fraction):
        return str(value)  # "p/q": exact, parsed back by parse_value
    raise PersistenceError(
        f"durable logs carry int/float/Fraction amounts, "
        f"not {type(value).__name__}"
    )


def parse_value(text: str) -> Number:
    """Inverse of the snapshot/log value serialization (exact)."""
    try:
        return int(text)
    except ValueError:
        pass
    if "/" in text:
        return Fraction(text)
    return float(text)


def encode_transaction(
    ground, deltas: Sequence[Tuple[int, Number]]
) -> bytes:
    """One committed batch as a ``repro stream`` transaction record.

    The payload is literally the plain-text log format (``+``/``-``
    lines closed by ``commit``), so a WAL record is human-readable and
    replayable by the same parser the CLI uses.
    """
    lines = []
    for mask, delta in deltas:
        if delta < 0:
            op, amount = "-", -delta
        else:
            op, amount = "+", delta
        lines.append(
            f"{op} {format_subset(ground, mask)} {_format_value(amount)}"
        )
    lines.append("commit")
    return ("\n".join(lines) + "\n").encode()


def decode_transaction(ground, payload: bytes) -> List[Tuple[int, Number]]:
    """Inverse of :func:`encode_transaction` (via the stream parser)."""
    from repro.engine.stream import parse_transaction_log

    try:
        text = payload.decode()
    except UnicodeDecodeError as err:
        raise CorruptWalError(f"undecodable WAL payload: {err}") from err
    transactions = parse_transaction_log(ground, text.splitlines())
    if len(transactions) != 1:
        raise CorruptWalError(
            f"WAL record holds {len(transactions)} transactions, expected 1"
        )
    deltas: List[Tuple[int, Number]] = []
    for op, mask, amount in transactions[0]:
        if op != "delta":
            raise CorruptWalError(
                f"WAL records carry resolved deltas, found {op!r} op"
            )
        deltas.append((mask, amount))
    return deltas


# ----------------------------------------------------------------------
# context snapshot codec + recovery assertions
# ----------------------------------------------------------------------
def density_fingerprint(items: Iterable[Tuple[int, Number]]) -> int:
    """CRC32 over the canonical density serialization (sorted by mask)."""
    canon = ";".join(
        f"{mask}:{_format_value(value)}" for mask, value in sorted(items)
    )
    return zlib.crc32(canon.encode())


def snapshot_state(context, tx: int) -> dict:
    """Capture a context's recoverable state plus consistency counters.

    ``context`` is duck-typed: anything with the incremental engine's
    set-function protocol (``density_items`` / ``support_size`` /
    ``violated_constraints``; ``shard_sizes`` when sharded).
    """
    items = [(mask, value) for mask, value in context.density_items()]
    payload = {
        "format": 1,
        "tx": tx,
        "backend": context.backend.name,
        "n": context.ground.size,
        "density": [[mask, _format_value(v)] for mask, v in items],
        "fingerprint": density_fingerprint(items),
        "support_nnz": context.support_size(),
        "tracked": len(context.constraints),
        "violated": len(context.violated_constraints()),
    }
    shard_sizes = getattr(context, "shard_sizes", None)
    if shard_sizes is not None:
        payload["shards"] = context.shards
        payload["shard_sizes"] = list(shard_sizes())
    return payload


def decode_density(snapshot: dict) -> Dict[int, Number]:
    """The snapshot's density as a ``{mask: value}`` seed mapping."""
    return {mask: parse_value(text) for mask, text in snapshot["density"]}


def verify_recovered(context, snapshot: dict) -> None:
    """Assert the seeded context reproduces the snapshot's counters.

    This is the recovery invariant made executable: fingerprint of the
    density items, support size, violated-count (when the same
    constraint theory is tracked) and shard sizes (when the same shard
    count is used) must all match, else recovery *fails loudly*.
    """
    fingerprint = density_fingerprint(context.density_items())
    if fingerprint != snapshot["fingerprint"]:
        raise CorruptSnapshotError(
            f"recovered density fingerprint {fingerprint:#010x} != "
            f"snapshot fingerprint {snapshot['fingerprint']:#010x}"
        )
    if context.support_size() != snapshot["support_nnz"]:
        raise CorruptSnapshotError(
            f"recovered support size {context.support_size()} != "
            f"snapshot support size {snapshot['support_nnz']}"
        )
    if (
        len(context.constraints) == snapshot.get("tracked")
        and len(context.violated_constraints()) != snapshot["violated"]
    ):
        raise CorruptSnapshotError(
            f"recovered violation count "
            f"{len(context.violated_constraints())} != snapshot count "
            f"{snapshot['violated']} for the same tracked theory"
        )
    shard_sizes = getattr(context, "shard_sizes", None)
    if (
        shard_sizes is not None
        and snapshot.get("shards") == getattr(context, "shards", None)
        and list(shard_sizes()) != snapshot["shard_sizes"]
    ):
        raise CorruptSnapshotError(
            f"recovered shard sizes {list(shard_sizes())} != snapshot "
            f"shard sizes {snapshot['shard_sizes']}"
        )
