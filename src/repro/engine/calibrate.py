"""Host calibration: measure the machine instead of guessing at it.

Every crossover the :class:`~repro.engine.plan.Planner` encodes -- the
list-vs-numpy butterfly bar, the shard fan-out bar, the CPU budget --
is a *host* property.  The paper's Proposition 5.5 bounds say which
asymptotic tier wins; the constant factors that place the crossover
points depend on the interpreter, the BLAS-free numpy build, the
process-spawn cost and the cgroup CPU quota of the machine actually
running the engine.  This module measures them once per host and
persists a small versioned profile so later processes reuse the
measurement instead of repeating it.

The pieces
----------

* :func:`effective_cpus` -- the CPU budget *this process* may use:
  ``len(os.sched_getaffinity(0))`` (which sees CPU pinning and, on
  Linux, the cpuset half of container quotas) with an
  ``os.cpu_count()`` fallback.  This is the count the planner and the
  parallel executor consult; ``os.cpu_count()`` alone overstates
  parallelism on constrained hosts and used to route work to the
  sharded tier that is strictly slower there.
* :func:`measure_profile` -- the micro-benchmark: best-of-``repeats``
  timings of one full superset-zeta butterfly pass for the python-list
  and the vectorized exact backend at two table sizes, plus the cost
  of spawning a one-worker process pool and a second (warm) roundtrip
  through it.
* :class:`HostProfile` -- the measurement plus its provenance
  (schema version, CPU count, python version, machine).  Its
  :meth:`~HostProfile.thresholds` fits a ``t(n) = a * n * 2^n + b``
  model per backend and turns the fit into planner overrides
  (``VEC_MIN_N`` from the butterfly crossover, ``SHARD_MIN_N`` from
  where a table pass dwarfs the pool roundtrip), clamped to sane
  ranges so one noisy timing cannot produce a absurd plan.
* :func:`load_profile` / :func:`save_profile` / :func:`ensure_profile`
  -- JSON persistence with paranoid loading: corrupt files, older
  schema versions and profiles measured under a different CPU budget
  are *never* reused silently -- each warns with
  :class:`~repro.errors.CalibrationWarning` naming the reason and
  triggers a fresh measurement.
* ``REPRO_CALIBRATION`` -- the opt-in switch.  Unset (or ``off``/
  ``0``/``false``/``no``) keeps calibration disabled and the planner
  on its hard-coded constants, so plans stay deterministic in CI.
  ``on``/``1``/``auto``/``true``/``yes`` enables it with the default
  cache location (``$XDG_CACHE_HOME/repro/host-profile.json``, else
  ``~/.cache/repro/host-profile.json``); any other value is taken as
  an explicit profile path -- the hermetic-test override.

Layering: this module sits *below* :mod:`repro.engine.plan` (which
imports :func:`effective_cpus`) and imports only the backends, the
error types and the stdlib.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import CalibrationWarning

__all__ = [
    "PROFILE_SCHEMA",
    "CALIBRATION_ENV",
    "HostProfile",
    "effective_cpus",
    "default_profile_path",
    "calibration_mode",
    "measure_profile",
    "load_profile",
    "save_profile",
    "ensure_profile",
    "active_profile",
]

#: Version stamp written into every profile; bump on layout changes.
#: Loaders reject any other value (older *and* newer) and re-measure.
PROFILE_SCHEMA = 1

#: The opt-in environment switch (see module docstring).
CALIBRATION_ENV = "REPRO_CALIBRATION"

_PROFILE_BASENAME = "host-profile.json"
_OFF_VALUES = frozenset(("", "0", "off", "false", "no"))
_ON_VALUES = frozenset(("1", "on", "auto", "true", "yes"))

#: Default butterfly timing sizes: big enough that the loops dominate
#: the clock resolution, small enough that first-use calibration stays
#: well under a second even on a slow host.
DEFAULT_SIZES: Tuple[int, ...] = (8, 12)

#: Clamps on derived thresholds -- one noisy timing must not produce
#: an absurd plan.  The vec bar may move within [4, 14] (14 is where
#: the float backend takes over anyway); the shard size bar within
#: [8, 20] (20 nears the dense limit).
VEC_BAR_RANGE = (4, 14)
SHARD_BAR_RANGE = (8, 20)
#: Clamp for the shared-memory table-return bar: below 2^10 entries a
#: pickle is a few KB and always cheap; past 2^20 the pickle cost is so
#: dominant the bar saturates.
SHM_BAR_RANGE = (10, 20)

#: Transport micro-benchmark shapes: the sparse payload item count for
#: the pickle measurement, the journal batch for the delta-apply
#: measurement, and the dense table size for the pickle-vs-shm bytes
#: race (2^16 float64 = 512 KiB, the E22 scale).
_TRANSPORT_ITEMS = 4096
_TRANSPORT_RECORDS = 1024
_TRANSPORT_TABLE_N = 16


def effective_cpus() -> int:
    """The CPU budget available to *this process*, not the whole box.

    ``os.sched_getaffinity(0)`` reflects CPU pinning (taskset, cpuset
    cgroups, container ``--cpuset-cpus``), which ``os.cpu_count()``
    ignores; platforms without it (macOS, Windows) fall back to
    ``os.cpu_count()``.  Always at least 1.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    return affinity or os.cpu_count() or 1


def default_profile_path() -> str:
    """Where profiles live when no explicit path is given:
    ``$XDG_CACHE_HOME/repro/host-profile.json`` falling back to
    ``~/.cache/repro/host-profile.json``."""
    cache_root = os.environ.get("XDG_CACHE_HOME", "").strip()
    if not cache_root:
        cache_root = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(cache_root, "repro", _PROFILE_BASENAME)


def calibration_mode() -> Optional[str]:
    """The resolved profile path when calibration is enabled, ``None``
    when disabled (the default).  A directory-looking override (an
    existing directory, or a value ending in the path separator) gets
    the standard basename appended."""
    value = os.environ.get(CALIBRATION_ENV, "").strip()
    lowered = value.lower()
    if lowered in _OFF_VALUES:
        return None
    if lowered in _ON_VALUES:
        return default_profile_path()
    path = os.path.expanduser(value)
    if path.endswith(os.sep) or os.path.isdir(path):
        path = os.path.join(path, _PROFILE_BASENAME)
    return path


def _warn(message: str) -> None:
    warnings.warn(message, CalibrationWarning, stacklevel=3)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostProfile:
    """One host's measured cost coefficients plus provenance.

    ``list_butterfly_s`` / ``vec_butterfly_s`` map table size ``n`` to
    the best observed seconds for one full superset-zeta pass on the
    python-list and vectorized exact backends.  ``spawn_s`` is the cost
    of standing up a one-worker process pool (including the first
    task); ``roundtrip_s`` a warm submit+result through it; both are
    ``None`` when spawn measurement was skipped.

    The transport coefficients (all optional -- pre-transport profiles
    and ``measure_transport=False`` leave them ``None``) price the
    ways shard state crosses the process boundary: ``pickle_item_s``
    per sparse payload item for a full reship, ``delta_record_s`` per
    journalled ``(mask, delta)`` record for a delta ship (pickle
    roundtrip plus the worker-side table point update),
    ``pickle_byte_s`` per dense-table byte for a pickled return, and
    ``shm_attach_s`` the flat cost of publishing and attaching one
    shared-memory segment instead.

    ``path`` records where the profile is (or will be) persisted;
    ``None`` for purely in-memory profiles.
    """

    cpus: int
    created: str
    python: str
    machine: str
    list_butterfly_s: Dict[int, float]
    vec_butterfly_s: Dict[int, float]
    spawn_s: Optional[float] = None
    roundtrip_s: Optional[float] = None
    pickle_item_s: Optional[float] = None
    delta_record_s: Optional[float] = None
    pickle_byte_s: Optional[float] = None
    shm_attach_s: Optional[float] = None
    path: Optional[str] = field(default=None, compare=False)

    # -- persistence ---------------------------------------------------
    def as_json(self) -> dict:
        """The profile as the versioned JSON payload it persists as."""
        return {
            "schema": PROFILE_SCHEMA,
            "cpus": self.cpus,
            "created": self.created,
            "python": self.python,
            "machine": self.machine,
            "measurements": {
                "list_butterfly_s": {
                    str(n): t for n, t in sorted(self.list_butterfly_s.items())
                },
                "vec_butterfly_s": {
                    str(n): t for n, t in sorted(self.vec_butterfly_s.items())
                },
                "spawn_s": self.spawn_s,
                "roundtrip_s": self.roundtrip_s,
                "pickle_item_s": self.pickle_item_s,
                "delta_record_s": self.delta_record_s,
                "pickle_byte_s": self.pickle_byte_s,
                "shm_attach_s": self.shm_attach_s,
            },
        }

    @classmethod
    def from_json(cls, data, path: Optional[str] = None) -> "HostProfile":
        """Decode a profile dict, raising ``ValueError`` on anything
        off-spec (wrong schema, missing keys, non-positive timings).
        Callers that must not crash go through :func:`load_profile`."""
        if not isinstance(data, dict):
            raise ValueError("profile is not a JSON object")
        schema = data.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"profile schema {schema!r} is not the supported "
                f"schema {PROFILE_SCHEMA}"
            )
        cpus = int(data["cpus"])
        if cpus < 1:
            raise ValueError(f"profile cpus must be >= 1, got {cpus}")
        measurements = data["measurements"]
        if not isinstance(measurements, dict):
            raise ValueError("profile measurements is not a JSON object")

        def timings(key: str) -> Dict[int, float]:
            raw = measurements[key]
            if not isinstance(raw, dict):
                raise ValueError(f"{key} is not a JSON object")
            out = {int(n): float(t) for n, t in raw.items()}
            if len(out) < 2:
                raise ValueError(f"{key} needs timings at >= 2 sizes")
            if any(t <= 0 for t in out.values()):
                raise ValueError(f"{key} has a non-positive timing")
            return out

        def optional(key: str) -> Optional[float]:
            value = measurements.get(key)
            return None if value is None else float(value)

        return cls(
            cpus=cpus,
            created=str(data.get("created", "")),
            python=str(data.get("python", "")),
            machine=str(data.get("machine", "")),
            list_butterfly_s=timings("list_butterfly_s"),
            vec_butterfly_s=timings("vec_butterfly_s"),
            spawn_s=optional("spawn_s"),
            roundtrip_s=optional("roundtrip_s"),
            pickle_item_s=optional("pickle_item_s"),
            delta_record_s=optional("delta_record_s"),
            pickle_byte_s=optional("pickle_byte_s"),
            shm_attach_s=optional("shm_attach_s"),
            path=path,
        )

    # -- the fitted cost model -----------------------------------------
    @staticmethod
    def _fit(timings: Dict[int, float]) -> Tuple[float, float]:
        """Fit ``t(n) = a * (n * 2^n) + b`` through the two extreme
        measured sizes (``a`` = per-element butterfly cost, ``b`` =
        fixed call overhead), clamped nonnegative."""
        n_lo, n_hi = min(timings), max(timings)
        w_lo, w_hi = n_lo * (1 << n_lo), n_hi * (1 << n_hi)
        a = (timings[n_hi] - timings[n_lo]) / max(w_hi - w_lo, 1)
        a = max(a, 1e-12)
        b = max(timings[n_lo] - a * w_lo, 0.0)
        return a, b

    def predict_list_s(self, n: int) -> float:
        """Fitted seconds for one list-exact butterfly pass at ``|S| = n``."""
        a, b = self._fit(self.list_butterfly_s)
        return a * (n * (1 << n)) + b

    def predict_vec_s(self, n: int) -> float:
        """Fitted seconds for one vectorized butterfly pass at ``|S| = n``."""
        a, b = self._fit(self.vec_butterfly_s)
        return a * (n * (1 << n)) + b

    def thresholds(self) -> Dict[str, int]:
        """Planner overrides derived from the measurements.

        ``VEC_MIN_N``: the smallest ``n`` where the fitted vectorized
        butterfly is no slower than the list one (within
        :data:`VEC_BAR_RANGE`; the cap if lists win everywhere).
        ``SHARD_MIN_N``: the smallest ``n`` where one vectorized table
        pass costs at least twice the warm pool roundtrip -- below
        that, fan-out coordination eats the win (within
        :data:`SHARD_BAR_RANGE`; absent when spawn was not measured).
        The streaming and float bars stay assumed: their crossovers
        are delta-pattern and tolerance properties, not raw butterfly
        speed.
        """
        out: Dict[str, int] = {}
        lo, hi = VEC_BAR_RANGE
        for n in range(lo, hi + 1):
            if self.predict_vec_s(n) <= self.predict_list_s(n):
                out["VEC_MIN_N"] = n
                break
        else:
            out["VEC_MIN_N"] = hi
        if self.roundtrip_s is not None:
            lo, hi = SHARD_BAR_RANGE
            floor = 2.0 * self.roundtrip_s
            for n in range(lo, hi + 1):
                if self.predict_vec_s(n) >= floor:
                    out["SHARD_MIN_N"] = n
                    break
            else:
                out["SHARD_MIN_N"] = hi
        if self.pickle_byte_s is not None and self.shm_attach_s is not None:
            lo, hi = SHM_BAR_RANGE
            for n in range(lo, hi + 1):
                # 8 bytes per int64/float64 entry: shared memory wins
                # once pickling the dense table costs more than one
                # segment publish+attach roundtrip
                if self.pickle_byte_s * 8 * (1 << n) >= self.shm_attach_s:
                    out["SHM_MIN_N"] = n
                    break
            else:
                out["SHM_MIN_N"] = hi
        return out

    # -- presentation --------------------------------------------------
    def vec_speedup(self) -> float:
        """Measured list/vec butterfly ratio at the largest common
        size (>1 means the vectorized backend won there)."""
        common = set(self.list_butterfly_s) & set(self.vec_butterfly_s)
        n = max(common) if common else max(self.vec_butterfly_s)
        lists = self.list_butterfly_s.get(n)
        vec = self.vec_butterfly_s.get(n)
        if lists is None or vec is None or vec <= 0:
            return 1.0
        return lists / vec

    def describe(self) -> str:
        """The one-line provenance stamp used by ``plan --explain``."""
        n = max(self.vec_butterfly_s)
        pool = (
            f"pool roundtrip {self.roundtrip_s * 1e3:.2f}ms"
            if self.roundtrip_s is not None
            else "pool cost unmeasured"
        )
        return (
            f"host profile: {self.cpus} effective CPU(s), vec butterfly "
            f"{self.vec_speedup():.1f}x lists at |S|={n}, {pool}"
        )

    def summary(self) -> dict:
        """JSON-friendly digest for the service's ``/stats`` block."""
        return {
            "schema": PROFILE_SCHEMA,
            "cpus": self.cpus,
            "created": self.created,
            "path": self.path,
            "vec_speedup": round(self.vec_speedup(), 3),
            "roundtrip_s": self.roundtrip_s,
            "transport": {
                "pickle_item_s": self.pickle_item_s,
                "delta_record_s": self.delta_record_s,
                "pickle_byte_s": self.pickle_byte_s,
                "shm_attach_s": self.shm_attach_s,
            },
            "thresholds": {
                name.lower(): bar for name, bar in self.thresholds().items()
            },
        }


# ----------------------------------------------------------------------
def _pool_probe() -> int:  # pragma: no cover - runs in the pool worker
    return os.getpid()


def _measure_transport(repeats: int) -> Dict[str, Optional[float]]:
    """Best-of-``repeats`` per-unit costs of the three shard transports.

    All measured in-process: what the executor pays is pickling,
    applying and copying -- the pipe write is the same for every
    strategy and cancels out of the comparison.  The shared-memory
    probe is allowed to fail (no ``/dev/shm``, sealed-off tmpfs): it
    reports ``None`` and the planner simply never picks shm.
    """
    import pickle

    import numpy as np

    from repro.engine.backends import VEC_EXACT

    rng_items = [(mask, (mask % 7) + 1) for mask in range(_TRANSPORT_ITEMS)]
    best_items = None
    for _ in range(repeats):
        started = time.perf_counter()
        pickle.loads(pickle.dumps(rng_items, pickle.HIGHEST_PROTOCOL))
        elapsed = time.perf_counter() - started
        best_items = elapsed if best_items is None else min(best_items, elapsed)
    pickle_item_s = max(best_items / _TRANSPORT_ITEMS, 1e-12)

    size = 1 << 12
    records = [
        ((i * 2654435761) % size, (i % 5) - 2) for i in range(_TRANSPORT_RECORDS)
    ]
    records = [(m, d) for m, d in records if d != 0]
    best_records = None
    for _ in range(repeats):
        table = VEC_EXACT.zeros(size)
        support = VEC_EXACT.zeros(size)
        started = time.perf_counter()
        shipped = pickle.loads(pickle.dumps(records, pickle.HIGHEST_PROTOCOL))
        for mask, delta in shipped:
            table[mask] = table[mask] + delta
            VEC_EXACT.add_on_subsets_inplace(support, mask, delta)
        elapsed = time.perf_counter() - started
        best_records = (
            elapsed if best_records is None else min(best_records, elapsed)
        )
    delta_record_s = max(best_records / max(len(records), 1), 1e-12)

    dense = np.arange(1 << _TRANSPORT_TABLE_N, dtype=np.float64)
    best_bytes = None
    for _ in range(repeats):
        started = time.perf_counter()
        pickle.loads(pickle.dumps(dense, pickle.HIGHEST_PROTOCOL))
        elapsed = time.perf_counter() - started
        best_bytes = elapsed if best_bytes is None else min(best_bytes, elapsed)
    pickle_byte_s = max(best_bytes / dense.nbytes, 1e-15)

    shm_attach_s: Optional[float] = None
    try:
        from multiprocessing import shared_memory

        best_shm = None
        for _ in range(repeats):
            started = time.perf_counter()
            segment = shared_memory.SharedMemory(
                create=True, size=dense.nbytes
            )
            try:
                view = np.ndarray(
                    dense.shape, dtype=dense.dtype, buffer=segment.buf
                )
                view[:] = dense
                float(view[-1])  # fault the pages in, like a merge would
                del view
            finally:
                segment.close()
                segment.unlink()
            elapsed = time.perf_counter() - started
            best_shm = elapsed if best_shm is None else min(best_shm, elapsed)
        shm_attach_s = max(best_shm, 1e-9)
    except (ImportError, OSError):  # pragma: no cover - host-dependent
        shm_attach_s = None

    return {
        "pickle_item_s": pickle_item_s,
        "delta_record_s": delta_record_s,
        "pickle_byte_s": pickle_byte_s,
        "shm_attach_s": shm_attach_s,
    }


def measure_profile(
    sizes: Tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 3,
    measure_spawn: bool = True,
    measure_transport: bool = True,
    path: Optional[str] = None,
) -> HostProfile:
    """Micro-benchmark this host and return a fresh :class:`HostProfile`.

    Times one full superset-zeta butterfly pass per backend at each of
    ``sizes`` (best of ``repeats``, fresh table per run so promotion
    state cannot leak between timings).  ``measure_spawn=False`` skips
    the process-pool measurement -- tests and doc examples use it to
    stay fast and fork-free; the resulting profile then derives no
    shard bar.  ``measure_transport=False`` likewise skips the shard
    transport probes (payload pickle, delta apply, table pickle,
    shared-memory roundtrip), leaving the planner's sync strategy and
    journal bound on their assumed defaults.
    """
    from repro.engine.backends import EXACT, VEC_EXACT, calibration_values

    sizes = tuple(sorted(set(sizes)))
    if len(sizes) < 2:
        raise ValueError(f"calibration needs >= 2 distinct sizes, got {sizes}")
    repeats = max(1, repeats)
    list_t: Dict[int, float] = {}
    vec_t: Dict[int, float] = {}
    for n in sizes:
        values = calibration_values(n)
        for backend, dest in ((EXACT, list_t), (VEC_EXACT, vec_t)):
            best = None
            for _ in range(repeats):
                table = backend.copy(values)
                started = time.perf_counter()
                backend.superset_zeta_inplace(table)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            dest[n] = max(best, 1e-9)

    spawn_s = roundtrip_s = None
    if measure_spawn:
        from concurrent.futures import ProcessPoolExecutor

        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=1) as pool:
            pool.submit(_pool_probe).result()
            spawn_s = max(time.perf_counter() - started, 1e-9)
            started = time.perf_counter()
            pool.submit(_pool_probe).result()
            roundtrip_s = max(time.perf_counter() - started, 1e-9)

    transport: Dict[str, Optional[float]] = {
        "pickle_item_s": None,
        "delta_record_s": None,
        "pickle_byte_s": None,
        "shm_attach_s": None,
    }
    if measure_transport:
        transport = _measure_transport(repeats)

    return HostProfile(
        cpus=effective_cpus(),
        created=time.strftime("%Y-%m-%dT%H:%M:%S"),
        python=platform.python_version(),
        machine=platform.machine() or "unknown",
        list_butterfly_s=list_t,
        vec_butterfly_s=vec_t,
        spawn_s=spawn_s,
        roundtrip_s=roundtrip_s,
        pickle_item_s=transport["pickle_item_s"],
        delta_record_s=transport["delta_record_s"],
        pickle_byte_s=transport["pickle_byte_s"],
        shm_attach_s=transport["shm_attach_s"],
        path=path,
    )


def load_profile(
    path: str, expect_cpus: Optional[int] = None
) -> Optional[HostProfile]:
    """Load a persisted profile, or ``None`` when it must be remeasured.

    A missing file is the quiet first-use case.  Everything else that
    prevents reuse -- unreadable file, corrupt JSON, wrong schema
    version, malformed fields, or (when ``expect_cpus`` is given) a
    profile measured under a different CPU budget -- warns loudly with
    :class:`~repro.errors.CalibrationWarning` and returns ``None`` so
    the caller re-measures.  Never raises.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    except OSError as err:
        _warn(f"calibration profile {path} is unreadable ({err}); remeasuring")
        return None
    try:
        data = json.loads(raw)
    except ValueError as err:
        _warn(f"calibration profile {path} is corrupt ({err}); remeasuring")
        return None
    try:
        profile = HostProfile.from_json(data, path=path)
    except (KeyError, TypeError, ValueError) as err:
        _warn(f"calibration profile {path} is invalid ({err}); remeasuring")
        return None
    if expect_cpus is not None and profile.cpus != expect_cpus:
        _warn(
            f"calibration profile {path} was measured with {profile.cpus} "
            f"CPU(s) but this process sees {expect_cpus}; remeasuring"
        )
        return None
    return profile


def save_profile(profile: HostProfile, path: str) -> HostProfile:
    """Persist ``profile`` at ``path`` atomically (write-temp + rename).
    Returns the profile with its ``path`` recorded.  Raises ``OSError``
    on unwritable destinations (callers decide how loud to be)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(profile.as_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return replace(profile, path=path)


def ensure_profile(
    path: Optional[str] = None,
    recalibrate: bool = False,
    sizes: Tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 3,
    measure_spawn: bool = True,
    measure_transport: bool = True,
) -> HostProfile:
    """The load-or-measure entry point.

    Reuses a valid persisted profile for this CPU budget; otherwise
    (missing, corrupt, stale, foreign, or ``recalibrate=True``)
    measures afresh and persists the result.  A failed persist warns
    and still returns the in-memory profile, so calibration can never
    take the engine down.  ``path=None`` resolves via
    :func:`calibration_mode` and falls back to the default cache
    location even when the env switch is off (explicit calls opt in).
    """
    if path is None:
        path = calibration_mode() or default_profile_path()
    if not recalibrate:
        profile = load_profile(path, expect_cpus=effective_cpus())
        if profile is not None:
            return profile
    profile = measure_profile(
        sizes=sizes,
        repeats=repeats,
        measure_spawn=measure_spawn,
        measure_transport=measure_transport,
        path=path,
    )
    try:
        profile = save_profile(profile, path)
    except OSError as err:
        _warn(
            f"could not persist calibration profile at {path} ({err}); "
            "using the in-memory measurement for this process only"
        )
    return profile


def active_profile() -> Optional[HostProfile]:
    """The profile the process-wide planner should use: ``None`` when
    the ``REPRO_CALIBRATION`` switch is off, else the ensured profile
    for the resolved path.  Swallows measurement failures (warn + fall
    back to assumed constants) -- calibration is an optimization, not
    a dependency."""
    path = calibration_mode()
    if path is None:
        return None
    try:
        return ensure_profile(path=path)
    except Exception as err:  # pragma: no cover - depends on host state
        _warn(
            f"host calibration failed ({err}); falling back to the "
            "assumed cost model"
        )
        return None
