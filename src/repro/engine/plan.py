"""The engine planner: one :class:`EngineConfig`, one cost model, one factory.

Four PRs grew five evaluation tiers -- scalar deciders, the batched
:class:`~repro.engine.context.EvalContext`, the delta-maintained
:class:`~repro.engine.incremental.IncrementalEvalContext`, the
horizontally partitioned :class:`~repro.engine.shard.ShardedEvalContext`
(optionally fanned out over a
:class:`~repro.engine.parallel.ParallelExecutor`), and the durable
:class:`~repro.engine.net.ReproService` -- and tier choice used to be
hand-plumbed per call site through ``backend=``/``shards=``/``workers=``
kwargs chains.  This module inverts that layering: policy lives in one
place and flows *down*.

* :class:`EngineConfig` is the single user-facing configuration object:
  a tier request (``engine="auto"`` or a pinned tier) plus optional
  pinned knobs (backend, shards, workers, durability, cache budgets).
  Everything left ``None`` is resolved by the planner.
* :class:`Workload` describes the job: ground-set size ``n``, constraint
  count, expected delta rate, live-density size, query count, and the
  host CPU budget.
* :class:`Planner` maps ``(Workload, EngineConfig)`` to a :class:`Plan`
  through an explicit, documented cost model (thresholds are instance
  attributes, overridable for tests and unusual hosts).
* :func:`build_context` is the **only** place evaluation contexts are
  constructed from a plan; every consumer (CLI, stream sessions, basket
  databases, FD checkers, the network service) routes through it.

The cost model
--------------

Tier (cheapest adequate tier wins; ``engine=`` pins it):

========== ==========================================================
scalar      ``n > DENSE_LIMIT`` (dense ``2^n`` tables impossible) or a
            degenerate ground set (``n <= SCALAR_MAX_N``: at most two
            subsets, table machinery cannot pay for itself).
batched     One-shot questions (no deltas expected): build tables once
            through the batched engine, memoize by fingerprint.
incremental Streaming instances (``streaming`` or a nonzero
            ``delta_rate``): ``O(2^n)`` per delta beats ``O(n * 2^n)``
            rebuilds as soon as anything changes twice.
sharded     Streaming *and* worth fanning out: at least
            ``SHARD_MIN_CPUS`` CPUs, per-shard table work big enough to
            amortize the fan-out (``n >= SHARD_MIN_N``), and a live
            instance that is actually loaded (``density_size >=
            SHARD_MIN_DENSITY`` or ``delta_rate >=
            SHARD_MIN_DELTA_RATE``).
========== ==========================================================

Backend (``backend=`` pins it) -- a three-rung ladder: ``exact``
(python lists) for tiny tables (``n < VEC_MIN_N`` -- python numbers
are cheap at this size and numpy call overhead is not); ``exact-vec``
(int64 ndarrays with overflow-checked promotion to object dtype) from
``VEC_MIN_N`` up, where the vectorized butterflies win *without*
giving up exactness -- it is also what ``tol == 0`` resolves to at
those sizes, since its zero tests are exact; ``float`` once ``n >=
FLOAT_MIN_N`` with a nonzero tolerance, where float64 butterflies are
marginally leaner (no promotion checks) and the default tolerance
absorbs representation error.  The bar is tier-aware: the incremental
tier is per-delta dominated (``2^|mask|`` subset gather/scatters,
where python lists beat numpy call overhead), so its vectorization
bar is the higher ``VEC_STREAM_MIN_N``; batched and sharded work is
rebuild-dominated, where the butterflies win from ``VEC_MIN_N`` up
(E20 measures both crossovers).

Shards/workers (``shards=``/``workers=`` pin them): ``shards =
min(cpus, MAX_SHARDS)`` and ``workers = min(cpus, shards)`` -- workers
beyond the shard count idle, shards beyond the CPU count just queue.

Implication methods reuse the same brain: :meth:`Planner.decide_method`
resolves ``method="auto"`` for :func:`repro.core.implication.decide`
(``fd`` fragment -> attribute closure, dense-capable -> batched engine,
otherwise -> SAT refutation), so the decider and the context factory can
never disagree about the dense limit again.

Like the rest of the engine this module imports nothing from
:mod:`repro.core`; ground sets are duck-typed (``.size``).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.calibrate import effective_cpus
from repro.engine.context import EvalContext
from repro.engine.incremental import DEFAULT_TOLERANCE
from repro.errors import EngineDeprecationWarning, PlanError

__all__ = [
    "EngineConfig",
    "Workload",
    "Plan",
    "Planner",
    "TIERS",
    "build_context",
    "default_fleet_workers",
    "default_planner",
    "plan_of_context",
    "warn_deprecated_kwargs",
]

#: The tiers, cheapest first.  ``auto`` is a request, not a tier.
TIERS = ("scalar", "batched", "incremental", "sharded")

#: Tiers that own live delta-maintained state (accept density/constraints).
LIVE_TIERS = ("incremental", "sharded")

#: Mirrors ``repro.core.ground.MAX_DENSE_SIZE`` (engine layering keeps
#: this module from importing core; the test suite asserts agreement).
DENSE_LIMIT = 22

_UNSET = object()


def warn_deprecated_kwargs(names, where: str, stacklevel: int = 3) -> None:
    """Emit the engine-kwargs deprecation warning, attributed to the
    caller of the deprecated API (so the test suite's gate fires on
    internal repro callers but merely warns external ones)."""
    joined = ", ".join(f"{name}=" for name in names)
    warnings.warn(
        f"{where}: the {joined} kwarg(s) are deprecated; pass "
        f"config=EngineConfig(...) and let the planner resolve the tier "
        f"(see repro.engine.plan)",
        EngineDeprecationWarning,
        stacklevel=stacklevel,
    )


@dataclass(frozen=True)
class EngineConfig:
    """One configuration object for the whole engine stack.

    ``engine`` requests a tier (``"auto"`` lets the planner choose);
    every other evaluation knob is either pinned here or left ``None``
    for the planner to resolve.  Durability (``durable`` /
    ``snapshot_every`` / ``fsync``) and cache budgets ride along so a
    service boots from exactly one object.
    """

    engine: str = "auto"
    backend: Optional[str] = None
    shards: Optional[int] = None
    workers: Optional[int] = None
    durable: Optional[str] = None
    snapshot_every: Optional[int] = None
    fsync: str = "always"
    tol: float = DEFAULT_TOLERANCE
    #: LRU budget for memoized server answers (ConstraintServer).
    cache_size: int = 4096
    #: Use a private ImplicationCache instead of the process-wide one.
    private_cache: bool = False

    def __post_init__(self):
        if self.engine not in ("auto",) + TIERS:
            raise PlanError(
                f"unknown engine tier {self.engine!r}; expected 'auto' "
                f"or one of {', '.join(TIERS)}"
            )
        if self.backend is not None and self.backend not in (
            "exact",
            "exact-vec",
            "float",
        ):
            raise PlanError(
                f"unknown backend {self.backend!r}; expected 'exact', "
                "'exact-vec' or 'float'"
            )
        if self.shards is not None and self.shards < 1:
            raise PlanError(f"shards must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise PlanError(f"workers must be >= 1, got {self.workers}")
        if self.fsync not in ("always", "never"):
            raise PlanError(
                f"unknown fsync policy {self.fsync!r}; "
                "expected 'always' or 'never'"
            )
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise PlanError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.cache_size < 1:
            raise PlanError(f"cache_size must be >= 1, got {self.cache_size}")

    def replace(self, **changes) -> "EngineConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_legacy(
        cls,
        backend=None,
        shards=None,
        workers=None,
        durable=None,
        **extra,
    ) -> "EngineConfig":
        """The deprecation shim's translation: pre-planner kwargs become
        a fully pinned config reproducing the historic behavior exactly
        (``shards > 1`` forced the sharded tier, anything else the plain
        incremental one; an unset ``backend`` meant exact)."""
        shards = 1 if shards is None else shards
        return cls(
            engine="sharded" if shards > 1 else "incremental",
            backend=backend or "exact",
            shards=shards,
            workers=workers,
            durable=durable,
            **extra,
        )


@dataclass(frozen=True)
class Workload:
    """What the planner knows about the job.

    ``delta_rate`` is the expected density deltas per committed
    transaction (live sessions measure it online and re-plan);
    ``density_size`` the number of distinct nonzero density masks;
    ``queries`` the expected implication/check query volume.  ``cpus``
    defaults to the host CPU count.
    """

    n: int
    constraints: int = 0
    delta_rate: float = 0.0
    density_size: int = 0
    queries: int = 0
    streaming: bool = False
    cpus: Optional[int] = None

    def __post_init__(self):
        if self.n < 0:
            raise PlanError(f"ground-set size must be >= 0, got {self.n}")
        if self.cpus is not None and self.cpus < 1:
            raise PlanError(f"cpus must be >= 1, got {self.cpus}")

    @property
    def host_cpus(self) -> int:
        """The CPU budget the cost model sees: an explicit ``cpus`` pin,
        else the affinity-aware :func:`~repro.engine.calibrate.effective_cpus`
        (``os.cpu_count()`` overstates parallelism under CPU pinning and
        container quotas, which used to route constrained hosts onto the
        strictly-slower sharded tier)."""
        return self.cpus if self.cpus is not None else effective_cpus()


@dataclass(frozen=True)
class Plan:
    """A fully resolved evaluation plan (every knob concrete except
    ``workers``, whose ``None`` means "inline until fanned out" --
    :func:`build_context` then defers executor creation).
    """

    tier: str
    backend: str
    shards: int
    workers: Optional[int]
    config: EngineConfig
    reasons: Tuple[str, ...] = ()
    #: Sharded-tier transport knobs (``None`` on unsharded plans and on
    #: plans built before the transport term existed): the executor
    #: sync strategy (``"delta"``/``"reship"``), the per-shard delta
    #: journal capacity, and whether table returns ride shared memory.
    sync: Optional[str] = None
    journal_bound: Optional[int] = None
    shm: Optional[bool] = None

    @property
    def effective_workers(self) -> int:
        """The worker count the plan will actually run with (``None``
        workers fall back to single-process inline execution)."""
        return self.workers if self.workers is not None else 1

    def stamp(self) -> str:
        """The one-line configuration stamp (CLI output, /stats)."""
        return (
            f"tier={self.tier}, backend={self.backend}, "
            f"shards={self.shards}, workers={self.effective_workers}"
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (the service's ``/stats`` block)."""
        out = {
            "tier": self.tier,
            "backend": self.backend,
            "shards": self.shards,
            "workers": self.effective_workers,
            "durable": bool(self.config.durable),
        }
        if self.sync is not None:
            out["sync"] = self.sync
            out["journal_bound"] = self.journal_bound
            out["shm"] = self.shm
        return out

    def explain(self) -> str:
        """Multi-line cost-model reasoning (``repro plan --explain``)."""
        lines = [f"plan: {self.stamp()}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


class Planner:
    """The cost model.  Thresholds are instance attributes so tests (and
    unusual deployments) can move every boundary; the defaults encode
    the measured crossovers from the E5/E16/E17 benchmarks.
    """

    #: Ground sets this small have at most two subsets: stay scalar.
    SCALAR_MAX_N = 1
    #: From here up, the vectorized exact backend's int64 butterflies
    #: beat python-list loops (below, numpy call overhead dominates).
    VEC_MIN_N = 8
    #: The incremental tier's higher vectorization bar: per-delta
    #: maintenance is 2^|mask| gather/scatter-dominated, where python
    #: lists stay ahead until tables reach this size (the E20 per-delta
    #: rows measure the crossover at |S| = 16: ~1.1x for exact-vec).
    VEC_STREAM_MIN_N = 14
    #: From here up, float64 tables edge out int64+promotion checks
    #: whenever a nonzero tolerance licenses lossy storage.
    FLOAT_MIN_N = 14
    #: Fanning out needs parallel hardware...
    SHARD_MIN_CPUS = 4
    #: ...and per-shard tables big enough to amortize the fan-out...
    SHARD_MIN_N = 12
    #: ...and an instance that is actually loaded:
    SHARD_MIN_DENSITY = 50_000
    SHARD_MIN_DELTA_RATE = 2_000.0
    #: Shards beyond this just queue behind the worker pools.
    MAX_SHARDS = 8
    #: Shared-memory table returns pay a flat publish+attach cost per
    #: segment; below this table size a pickle is smaller than the
    #: setup, so returns stay pickled.  Calibration moves the bar from
    #: the measured pickle-bytes vs shm-roundtrip race.
    SHM_MIN_N = 15
    #: Clamps on the planner-chosen delta-journal capacity: one noisy
    #: transport measurement must not produce a journal that is useless
    #: (every sync overflows) or unbounded (the parent hoards records).
    JOURNAL_MIN = 256
    JOURNAL_MAX = 65_536
    #: Fleet workers beyond this just multiply idle event loops: each
    #: worker process pins (at most) one core, so the fleet size is
    #: CPU-bound the same way the shard worker pool is.
    FLEET_MAX_WORKERS = 8
    #: Live auto sessions re-consult the planner this often (in
    #: committed transactions).
    REPLAN_EVERY = 64

    def __init__(self, profile=None, **overrides):
        #: The measured :class:`~repro.engine.calibrate.HostProfile`
        #: behind this planner's thresholds, or ``None`` for the stock
        #: (assumed) cost model.  Plans built with a profile carry
        #: measured-vs-assumed reason lines; without one the output is
        #: byte-identical to the uncalibrated planner's.
        self.profile = profile
        for name, value in overrides.items():
            if not hasattr(type(self), name) or name.startswith("_"):
                raise PlanError(f"unknown planner threshold {name!r}")
            setattr(self, name, value)

    @classmethod
    def calibrated(cls, profile) -> "Planner":
        """A planner whose thresholds come from a measured
        :class:`~repro.engine.calibrate.HostProfile` (bars the profile
        cannot derive keep the class defaults)."""
        return cls(profile=profile, **profile.thresholds())

    # ------------------------------------------------------------------
    def plan(self, workload: Workload, config: Optional[EngineConfig] = None) -> Plan:
        """Resolve a :class:`Plan` for ``workload`` under ``config``."""
        if config is None:
            config = EngineConfig()
        n = workload.n
        cpus = workload.host_cpus
        reasons = []

        tier = self._resolve_tier(workload, config, cpus, reasons)
        self._check_tier(tier, workload, config)

        # the vectorization bar is tier-aware: incremental sessions are
        # per-delta dominated (2^|mask| gather/scatters, where python
        # lists beat numpy call overhead), so their bar sits higher than
        # the rebuild-dominated batched/sharded tiers'
        vec_min = (
            self.VEC_STREAM_MIN_N if tier == "incremental" else self.VEC_MIN_N
        )
        bar = (
            f"the incremental tier's per-delta vectorization bar {vec_min}"
            if tier == "incremental"
            else f"the vectorization bar {vec_min}"
        )
        backend = config.backend
        if backend is not None:
            reasons.append(f"backend={backend}: pinned by config")
        elif config.tol == 0:
            if n >= vec_min:
                backend = "exact-vec"
                reasons.append(
                    "backend=exact-vec: tol=0 demands exact zero tests; "
                    f"|S|={n} >= {vec_min}, int64 butterflies with "
                    "overflow-checked promotion keep them exact and fast"
                )
            else:
                backend = "exact"
                reasons.append(
                    "backend=exact: tol=0 demands exact zero tests and "
                    f"|S|={n} is below {bar}"
                )
        elif n >= self.FLOAT_MIN_N:
            backend = "float"
            reasons.append(
                f"backend=float: |S|={n} >= {self.FLOAT_MIN_N}, vectorized "
                f"2^n tables win and tol={config.tol:g} absorbs fp error"
            )
        elif n >= vec_min:
            backend = "exact-vec"
            reasons.append(
                f"backend=exact-vec: {vec_min} <= |S|={n} < "
                f"{self.FLOAT_MIN_N}, vectorized int64 butterflies win "
                "while staying exact (object-dtype promotion on overflow)"
            )
        else:
            backend = "exact"
            reasons.append(
                f"backend=exact: |S|={n} is below {bar}; python numbers "
                "are cheap and lossless at this size"
            )

        sync = journal_bound = shm = None
        if tier == "sharded":
            shards = config.shards
            if shards is None:
                shards = max(2, min(cpus, self.MAX_SHARDS))
                reasons.append(
                    f"shards={shards}: min(cpus={cpus}, "
                    f"max_shards={self.MAX_SHARDS})"
                )
            else:
                reasons.append(f"shards={shards}: pinned by config")
            workers = config.workers
            if workers is None and config.shards is None:
                # a planner-chosen fan-out resolves its worker pool too
                workers = min(cpus, shards)
                reasons.append(f"workers={workers}: min(cpus={cpus}, shards)")
            elif workers is None:
                reasons.append(
                    "workers=inline: unpinned on a pinned shard count -- "
                    "single-process until an executor is attached"
                )
            else:
                workers = min(workers, max(1, shards))
                reasons.append(
                    f"workers={workers}: pinned by config, capped by shards"
                )
            sync, journal_bound, shm = self._transport_term(
                workload, n, shards, reasons
            )
        else:
            shards, workers = 1, 1
            reasons.append(f"shards=1, workers=1: {tier} tier is unsharded")

        if self.profile is not None:
            reasons.extend(self._calibration_reasons())

        return Plan(
            tier=tier,
            backend=backend,
            shards=shards,
            workers=workers,
            config=config,
            reasons=tuple(reasons),
            sync=sync,
            journal_bound=journal_bound,
            shm=shm,
        )

    def _transport_term(self, workload, n, shards, reasons):
        """The sharded tier's transport decision: sync strategy, delta
        journal capacity and shared-memory table returns.

        With a measured profile the journal bound is the gap at which
        shipping journal records costs as much as the full reship it
        replaces (payload pickle at ``pickle_item_s`` per item plus one
        table rebuild at ``predict_vec_s``), clamped to
        [:attr:`JOURNAL_MIN`, :attr:`JOURNAL_MAX`]; a host whose
        records cost more than whole reships (never seen in practice,
        but measurable) falls back to ``sync="reship"``.  Without a
        profile the bound stays on the assumed
        :data:`~repro.engine.shard.DEFAULT_JOURNAL_BOUND` so CI plans
        remain deterministic.
        """
        from repro.engine.shard import DEFAULT_JOURNAL_BOUND

        profile = self.profile
        measured = (
            profile is not None
            and profile.pickle_item_s is not None
            and profile.delta_record_s is not None
        )
        sync = "delta"
        if measured:
            per_shard_nnz = max(1, workload.density_size // max(shards, 1))
            reship_s = (
                per_shard_nnz * profile.pickle_item_s
                + profile.predict_vec_s(n)
            )
            raw_bound = int(reship_s / profile.delta_record_s)
            if raw_bound < 1:
                sync = "reship"
                journal_bound = self.JOURNAL_MIN
                reasons.append(
                    "transport: sync=reship measured -- one journal record "
                    f"({profile.delta_record_s:.2e}s) costs more than a "
                    f"full payload reship ({reship_s:.2e}s)"
                )
            else:
                journal_bound = max(
                    self.JOURNAL_MIN, min(self.JOURNAL_MAX, raw_bound)
                )
                reasons.append(
                    f"transport: sync=delta, journal_bound={journal_bound} "
                    f"measured (reship {reship_s:.2e}s / record "
                    f"{profile.delta_record_s:.2e}s, clamped to "
                    f"[{self.JOURNAL_MIN}, {self.JOURNAL_MAX}])"
                )
        else:
            journal_bound = DEFAULT_JOURNAL_BOUND
            reasons.append(
                f"transport: sync=delta, journal_bound={journal_bound} "
                "assumed (no transport calibration)"
            )
        shm = n >= self.SHM_MIN_N
        bar_kind = (
            "measured"
            if profile is not None and "SHM_MIN_N" in profile.thresholds()
            else "assumed"
        )
        if shm:
            reasons.append(
                f"transport: shm table returns -- |S|={n} >= shm bar "
                f"{self.SHM_MIN_N} {bar_kind} (pickling 2^{n} entries "
                "dwarfs a segment publish+attach)"
            )
        else:
            reasons.append(
                f"transport: pickled table returns -- |S|={n} < shm bar "
                f"{self.SHM_MIN_N} {bar_kind}"
            )
        return sync, journal_bound, shm

    def _calibration_reasons(self):
        """The measured-vs-assumed lines ``plan --explain`` prints when
        the planner runs on a :class:`~repro.engine.calibrate.HostProfile`:
        which bars the host measurement moved (and from where), which
        still ride on the stock constants."""
        defaults = type(self)
        measured = set(self.profile.thresholds())

        def bar(name: str) -> str:
            value = getattr(self, name)
            if name in measured:
                return (
                    f"{name.lower()}={value} measured "
                    f"(assumed {getattr(defaults, name)})"
                )
            return f"{name.lower()}={value} assumed"

        names = (
            "VEC_MIN_N",
            "VEC_STREAM_MIN_N",
            "FLOAT_MIN_N",
            "SHARD_MIN_N",
            "SHM_MIN_N",
        )
        return [
            f"calibration: {self.profile.describe()}",
            "calibration: " + ", ".join(bar(name) for name in names),
        ]

    def _resolve_tier(self, workload, config, cpus, reasons) -> str:
        n = workload.n
        if config.engine != "auto":
            reasons.append(f"tier={config.engine}: pinned by config")
            return config.engine
        live = workload.streaming or workload.delta_rate > 0
        if n > DENSE_LIMIT:
            reasons.append(
                f"tier=scalar: |S|={n} > dense limit {DENSE_LIMIT}, "
                "2^n tables are impossible (scalar/SAT paths only)"
            )
            return "scalar"
        if not live:
            if n <= self.SCALAR_MAX_N:
                reasons.append(
                    f"tier=scalar: |S|={n} <= {self.SCALAR_MAX_N}, the "
                    "table machinery cannot pay for itself"
                )
                return "scalar"
            reasons.append(
                "tier=batched: one-shot workload (no deltas expected); "
                "build tables once, memoize by fingerprint"
            )
            return "batched"
        loaded = (
            workload.density_size >= self.SHARD_MIN_DENSITY
            or workload.delta_rate >= self.SHARD_MIN_DELTA_RATE
        )
        if cpus >= self.SHARD_MIN_CPUS and n >= self.SHARD_MIN_N and loaded:
            reasons.append(
                f"tier=sharded: streaming with cpus={cpus} >= "
                f"{self.SHARD_MIN_CPUS}, |S|={n} >= {self.SHARD_MIN_N} and "
                f"load (density={workload.density_size}, "
                f"delta_rate={workload.delta_rate:g}) past the fan-out bar"
            )
            return "sharded"
        reasons.append(
            "tier=incremental: streaming workload below the fan-out bar "
            f"(cpus={cpus}, |S|={n}, density={workload.density_size}, "
            f"delta_rate={workload.delta_rate:g})"
        )
        return "incremental"

    @staticmethod
    def _check_tier(tier, workload, config) -> None:
        if tier in ("batched",) + tuple(LIVE_TIERS) and workload.n > DENSE_LIMIT:
            raise PlanError(
                f"tier {tier!r} builds dense 2^|S| tables; |S| = "
                f"{workload.n} exceeds the dense limit {DENSE_LIMIT} "
                "(use engine='scalar' / method='sat')"
            )
        if tier != "sharded" and config.shards is not None and config.shards > 1:
            raise PlanError(
                f"shards={config.shards} pinned on the unsharded tier "
                f"{tier!r}; pin engine='sharded' (or leave it auto)"
            )

    # ------------------------------------------------------------------
    def decide_method(
        self, n: int, fd_fragment: bool = False
    ) -> Tuple[str, str]:
        """Resolve ``method="auto"`` for the implication decider.

        Returns ``(method, reason)``.  One brain for the whole stack:
        the dense cutoff here is the same :data:`DENSE_LIMIT` the tier
        model uses, so the decider and the context factory cannot
        disagree.
        """
        if fd_fragment:
            return (
                "fd",
                "every family is a singleton: the P-time FD fragment "
                "(attribute closure)",
            )
        if n <= DENSE_LIMIT:
            return (
                "engine",
                f"|S|={n} <= dense limit {DENSE_LIMIT}: batched "
                "fingerprint-memoized table containment",
            )
        return (
            "sat",
            f"|S|={n} > dense limit {DENSE_LIMIT}: DPLL refutation "
            "(Prop 5.4) scales past dense tables",
        )

    def replan_due(self, transactions: int) -> bool:
        """Whether a live auto session should re-consult the planner."""
        return transactions > 0 and transactions % self.REPLAN_EVERY == 0

    def __repr__(self) -> str:
        return (
            f"Planner(vec>={self.VEC_MIN_N} "
            f"(stream>={self.VEC_STREAM_MIN_N}), "
            f"float>={self.FLOAT_MIN_N}, "
            f"shard>=({self.SHARD_MIN_CPUS}cpu,{self.SHARD_MIN_N}n,"
            f"{self.SHARD_MIN_DENSITY}nnz|{self.SHARD_MIN_DELTA_RATE:g}/tx))"
        )


_DEFAULT_PLANNER = Planner()

#: Calibrated planners cached per resolved profile path, so flipping
#: ``REPRO_CALIBRATION`` between values (hermetic tests do) cannot
#: leak one host profile into another's planner.
_CALIBRATED_PLANNERS: dict = {}


def default_planner() -> Planner:
    """The process-wide planner.

    With calibration disabled (``REPRO_CALIBRATION`` unset/off -- the
    default, and what CI runs with) this is the stock cost model and
    plans are fully deterministic.  With it enabled, the per-host
    profile is loaded (measured on first use) and the returned planner
    carries thresholds fitted to this machine; a failed calibration
    warns and falls back to the stock planner.
    """
    from repro.engine import calibrate

    key = calibrate.calibration_mode()
    if key is None:
        return _DEFAULT_PLANNER
    planner = _CALIBRATED_PLANNERS.get(key)
    if planner is None:
        profile = calibrate.active_profile()
        planner = (
            _DEFAULT_PLANNER if profile is None else Planner.calibrated(profile)
        )
        _CALIBRATED_PLANNERS[key] = planner
    return planner


def default_fleet_workers(cpus: Optional[int] = None) -> int:
    """The worker-process count ``repro fleet`` defaults to.

    One :class:`~repro.engine.net.ReproService` event loop saturates
    one core, so the natural fleet size is the affinity-aware
    :func:`~repro.engine.calibrate.effective_cpus` count, capped at
    :attr:`Planner.FLEET_MAX_WORKERS` (past the cap extra processes
    only add restart surface and memory).  Pass ``cpus`` to plan for a
    different host.
    """
    if cpus is None:
        cpus = effective_cpus()
    return max(1, min(cpus, Planner.FLEET_MAX_WORKERS))


def build_context(
    plan: Plan,
    ground,
    density=None,
    constraints=(),
    cache=None,
    executor=None,
    shard_plan=None,
):
    """The one context factory: a resolved :class:`Plan` becomes the
    matching evaluation context.  Nothing else in the library (CLI,
    sessions, databases, checkers, services) constructs contexts.

    ``scalar``/``batched`` plans yield a stateless
    :class:`~repro.engine.context.EvalContext` (scalar plans force no
    backend so operands keep their own storage); live plans yield an
    :class:`~repro.engine.incremental.IncrementalEvalContext` or
    :class:`~repro.engine.shard.ShardedEvalContext` seeded with
    ``density``/``constraints``.  ``shard_plan`` passes a custom
    :class:`~repro.engine.shard.ShardPlan` (mask routing) through;
    ``executor`` a shared :class:`~repro.engine.parallel.ParallelExecutor`.
    """
    config = plan.config
    if plan.tier not in TIERS:
        raise PlanError(f"unknown plan tier {plan.tier!r}")
    if plan.tier not in LIVE_TIERS:
        if density or tuple(constraints):
            raise PlanError(
                f"plan tier {plan.tier!r} builds a stateless context; "
                "live density/constraints need the incremental or "
                "sharded tier"
            )
        return EvalContext(
            backend=None if plan.tier == "scalar" else plan.backend,
            cache=cache,
            private_cache=config.private_cache,
        )
    common = dict(
        density=density,
        constraints=constraints,
        backend=plan.backend,
        tol=config.tol,
        cache=cache,
        private_cache=config.private_cache,
    )
    if plan.tier == "sharded":
        from repro.engine.shard import ShardedEvalContext

        transport = {}
        if plan.sync is not None:
            transport["sync"] = plan.sync
        if plan.journal_bound is not None:
            transport["journal_bound"] = plan.journal_bound
        if plan.shm is not None:
            transport["shm_tables"] = plan.shm
        return ShardedEvalContext(
            ground,
            shards=plan.shards,
            plan=shard_plan,
            workers=plan.workers,
            executor=executor,
            **transport,
            **common,
        )
    from repro.engine.incremental import IncrementalEvalContext

    return IncrementalEvalContext(ground, **common)


def plan_of_context(context, config: Optional[EngineConfig] = None) -> Plan:
    """Describe an existing context as a :class:`Plan` (for stamping and
    ``/stats`` on sessions built through the legacy kwargs shims)."""
    from repro.engine.incremental import IncrementalEvalContext
    from repro.engine.shard import ShardedEvalContext

    backend = context.backend.name if context.backend is not None else "inherit"
    if isinstance(context, ShardedEvalContext):
        executor = context.executor
        workers = executor.workers if executor is not None else None
        tier, shards = "sharded", context.shards
    elif isinstance(context, IncrementalEvalContext):
        tier, shards, workers = "incremental", 1, 1
    else:
        tier = "batched" if context.backend is not None else "scalar"
        shards, workers = 1, 1
    if config is None:
        config = EngineConfig(
            engine=tier,
            backend=None if backend == "inherit" else backend,
            shards=shards,
            workers=workers,
        )
    return Plan(
        tier=tier,
        backend=backend,
        shards=shards,
        workers=workers,
        config=config,
        reasons=(f"described from a live {type(context).__name__}",),
    )
