"""Batched whole-table evaluation of lattices and differentials.

The scalar evaluation of ``D_f^Y(X)`` from Definition 2.1 costs
``O(2^|Y|)`` evaluations of ``f`` *per subset* ``X``; evaluating the
whole differential that way costs ``O(4^n)`` and worse.  Proposition 2.9
rewrites the differential as a density sum over the lattice
decomposition::

    D_f^Y(X) = sum_{U in L(X, Y)}  d_f(U)
             = sum_{X subseteq U}  d_f(U) * [no member of Y inside U]

which factors into three whole-table passes, each ``O(n * 2^n)`` or
cheaper:

1. the density table ``d_f`` (one superset Moebius butterfly);
2. a *blocked* indicator ``B[U] = [some member of Y is a subset of U]``
   (a subset-zeta over the family's member indicator);
3. zero the density at blocked masks and run one superset zeta
   butterfly -- the result table holds ``D_f^Y(X)`` for **every** ``X``.

Structural (boolean) tables are always numpy -- they encode subset
combinatorics, not function values, so exactness is not at stake.
Numeric tables go through the caller's :class:`~repro.engine.backends.
Backend`, preserving exact arithmetic end to end when requested.

This module is deliberately duck-typed over the core objects (a family
is anything with ``.members``; a function anything with ``.ground``,
``.table()`` / ``.density_items()``): it imports nothing from
:mod:`repro.core`, so core modules may import it freely.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.engine.backends import (
    Backend,
    Table,
    backend_by_name,
    backend_for_table,
    EXACT,
    FLOAT,
)

__all__ = [
    "superset_indicator",
    "blocked_table",
    "lattice_table",
    "joint_lattice_table",
    "density_table_of",
    "differential_table",
    "batched_differential",
]


def superset_indicator(n: int, lhs_mask: int) -> np.ndarray:
    """Boolean table ``T[U] = [lhs subseteq U]`` over all ``2^n`` masks."""
    masks = np.arange(1 << n, dtype=np.int64)
    return (masks & lhs_mask) == lhs_mask


def blocked_table(n: int, members: Sequence[int]) -> np.ndarray:
    """Boolean table ``B[U] = [some member is a subset of U]``.

    Computed as a subset-zeta of the member indicator: an upward closure
    over the subset order, ``O(n * 2^n)`` vectorized bit-ors.
    """
    table = np.zeros(1 << n, dtype=bool)
    for m in members:
        table[m] = True
    for i in range(n):
        view = table.reshape(-1, 2, 1 << i)
        view[:, 1, :] |= view[:, 0, :]
    return table


def lattice_table(n: int, lhs_mask: int, members: Sequence[int]) -> np.ndarray:
    """Boolean table of ``L(X, Y)``: supersets of ``X`` blocked by no member."""
    return superset_indicator(n, lhs_mask) & ~blocked_table(n, members)


def joint_lattice_table(
    n: int, constraints: Iterable[Tuple[int, Sequence[int]]]
) -> np.ndarray:
    """Boolean table of ``L(C)`` for ``constraints`` given as
    ``(lhs_mask, members)`` pairs -- the union of the per-constraint
    lattice decompositions (Theorem 3.5's containment target)."""
    out = np.zeros(1 << n, dtype=bool)
    for lhs_mask, members in constraints:
        out |= lattice_table(n, lhs_mask, members)
    return out


def density_table_of(f, backend: Optional[Backend] = None) -> Table:
    """A fresh density table ``d_f`` in ``backend`` storage.

    Dense functions hand over their (cached) density table; sparse
    density functions scatter their nonzero entries -- the density-sum
    evaluation path of Proposition 2.9.
    """
    if backend is None:
        backend = EXACT if getattr(f, "exact", True) else FLOAT
    size = 1 << f.ground.size
    if hasattr(f, "density") and hasattr(f, "table"):
        # .table() already hands back a fresh copy; adopt avoids a second
        return backend.adopt(f.density().table())
    return backend.scatter(size, f.density_items())


def differential_table(
    density: Table, members: Sequence[int], backend: Optional[Backend] = None
) -> Table:
    """One-pass evaluation of ``D_f^Y(X)`` for all ``X`` from ``d_f``.

    Consumes ``density`` (modified in place when owned by the caller --
    pass a fresh copy).  ``O(n * 2^n)`` total, vs ``O(4^n * 2^|Y|)`` for
    the scalar inclusion-exclusion loop.
    """
    if backend is None:
        backend = backend_for_table(density)
    n = len(density).bit_length() - 1
    backend.zero_where(density, blocked_table(n, members))
    backend.superset_zeta_inplace(density)
    return density


def batched_differential(f, family, backend: Optional[Backend] = None) -> Table:
    """``D_f^Y`` as a whole table, for any dense-capable set function."""
    if backend is None:
        backend = EXACT if getattr(f, "exact", True) else FLOAT
    density = density_table_of(f, backend)
    return differential_table(density, family.members, backend)
