"""repro: a reproduction of "Differential Constraints" (Sayrafi & Van
Gucht, PODS 2005).

The package implements the paper's primary contribution and every
substrate it touches:

``repro.core``
    Differentials and density functions, witness sets, lattice
    decompositions, differential constraints, the Theorem 3.5 implication
    deciders, and the Figure 1/2 inference system with constructive
    completeness (explicit machine-checked derivations).

``repro.logic``
    Propositional formulas, a from-scratch DPLL solver, minterms/minsets
    and the Definition 5.2 implication constraints, plus the
    Proposition 5.5 DNF-tautology reduction.

``repro.fis``
    Basket databases and support/frequency functions, Apriori with its
    negative border, disjunctive constraints and disjunctive-free
    itemsets, the (FDFree, Bd-) concise representation with lossless
    derivation, and inference-based pruning of disjunctive sets.

``repro.relational``
    Relations and probabilistic relations, Simpson functions with their
    pairwise densities, positive boolean dependencies, functional
    dependencies with the P-time closure decision, and Shannon-entropy
    probes for the paper's open problem.

``repro.equivalence``
    Theorem 8.1 evaluated through nine independent code paths.

Quick start::

    >>> from repro import GroundSet, ConstraintSet
    >>> S = GroundSet("ABC")
    >>> C = ConstraintSet.of(S, "A -> B", "B -> C")
    >>> C.implies("A -> C")
    True
"""

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    Proof,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
    atom,
    atoms,
    check_proof,
    decide,
    decomp,
    derive,
    refute,
)
from repro.errors import (
    GroundSetMismatchError,
    InvalidConstraintError,
    InvalidProofError,
    NotAFrequencyFunctionError,
    NotApplicableError,
    NotImpliedError,
    ReproError,
    UnknownElementError,
)

__version__ = "1.0.0"

__all__ = [
    "ConstraintSet",
    "DifferentialConstraint",
    "GroundSet",
    "Proof",
    "SetFamily",
    "SetFunction",
    "SparseDensityFunction",
    "atom",
    "atoms",
    "check_proof",
    "decide",
    "decomp",
    "derive",
    "refute",
    "GroundSetMismatchError",
    "InvalidConstraintError",
    "InvalidProofError",
    "NotAFrequencyFunctionError",
    "NotApplicableError",
    "NotImpliedError",
    "ReproError",
    "UnknownElementError",
    "__version__",
]
