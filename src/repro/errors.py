"""Exception types shared across the :mod:`repro` package.

The library raises narrowly-typed errors so callers can distinguish
user mistakes (e.g. a label that is not in the ground set) from internal
invariant violations (which raise plain :class:`AssertionError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GroundSetMismatchError",
    "UnknownElementError",
    "InvalidConstraintError",
    "InvalidProofError",
    "NotAFrequencyFunctionError",
    "NotApplicableError",
    "NotImpliedError",
    "PersistenceError",
    "CorruptWalError",
    "CorruptSnapshotError",
    "WalGapError",
    "PlanError",
    "CalibrationWarning",
    "EngineDeprecationWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GroundSetMismatchError(ReproError):
    """Raised when two objects defined over different ground sets are mixed.

    Every constraint, set function, family and relation is bound to one
    :class:`~repro.core.ground.GroundSet`; operations across distinct
    ground sets are rejected rather than silently re-interpreted.
    """


class UnknownElementError(ReproError, KeyError):
    """Raised when a label is not an element of the ground set."""


class InvalidConstraintError(ReproError, ValueError):
    """Raised when a differential constraint is syntactically malformed."""


class InvalidProofError(ReproError):
    """Raised by the proof checker when a derivation step is not a valid
    application of the inference rules of Figure 1 (or, in macro mode,
    Figure 2) of the paper."""


class NotAFrequencyFunctionError(ReproError, ValueError):
    """Raised when a set function expected to lie in ``positive(S)``
    (nonnegative density; Section 6 of the paper) does not."""


class NotApplicableError(ReproError):
    """Raised when a specialized decision procedure (e.g. the P-time
    functional-dependency decider for singleton right-hand sides) is asked
    to decide an instance outside its fragment."""


class PersistenceError(ReproError):
    """Base class for durability errors (write-ahead log / snapshots).

    Recovery never silently diverges: any data-directory state that
    cannot be reconstructed exactly raises a subclass of this error
    instead of producing a plausible-but-wrong instance."""


class CorruptWalError(PersistenceError):
    """Raised when a write-ahead-log record fails its CRC or framing
    check *before* the final record.  A torn final record (truncated
    mid-write by a crash) is not corruption -- that transaction never
    committed and recovery drops it -- but damage anywhere earlier
    means committed transactions are unrecoverable."""


class CorruptSnapshotError(PersistenceError):
    """Raised when a snapshot file cannot be decoded or the state it
    seeds fails its recorded consistency counters (density fingerprint,
    support size, violation counts)."""


class WalGapError(PersistenceError):
    """Raised when the write-ahead log is missing transactions: record
    sequence numbers must continue contiguously from the snapshot's
    coverage point.  A snapshot *ahead* of the log (records already
    compacted away) is fine; a gap means lost commits."""


class PlanError(ReproError, ValueError):
    """Raised by the engine planner when a requested configuration is
    unsatisfiable (e.g. a forced live tier over a ground set too large
    for dense tables, or contradictory pinned knobs)."""


class CalibrationWarning(UserWarning):
    """Category for host-calibration fallbacks (:mod:`repro.engine.calibrate`).

    A damaged, stale or foreign per-host profile never crashes and is
    never silently reused: the calibrator warns with this category,
    names the reason, and re-measures the host from scratch.  The same
    category flags a calibration attempt that could not persist its
    profile (the measured thresholds still apply for the process).
    """


class EngineDeprecationWarning(DeprecationWarning):
    """Category for the engine-configuration deprecation shims.

    The pre-planner kwargs (``backend=``, ``shards=``, ``workers=``,
    ``durable=`` on the high-level entry points, and the CLI's
    ``--backend/--shards/--workers`` flags) keep working but warn with
    this category; the canonical path is one
    :class:`repro.engine.EngineConfig` handed to the planner.  The test
    suite escalates this warning to an error *when it originates from
    inside repro itself* (see ``[tool.pytest.ini_options]``), so internal
    code can never regress onto the deprecated plumbing while external
    callers only see a warning.
    """


class NotImpliedError(ReproError):
    """Raised by the derivation engine when asked to derive a constraint
    that is *not* implied (completeness only promises derivations for
    implied constraints).  Carries the uncovered lattice element that
    certifies non-implication via Theorem 3.5."""

    def __init__(self, message: str, uncovered_mask: int):
        super().__init__(message)
        self.uncovered_mask = uncovered_mask
