"""Seeded random-instance generators shared by tests and benchmarks.

Every generator takes an explicit :class:`random.Random`; experiments are
reproducible from their seeds.  The generators cover the paper's whole
object zoo: subsets, families, constraints and constraint sets, set
functions of each class (general / nonnegative-density / support), DNF
formulas for the Proposition 5.5 reduction, and planted *implied* pairs
``(C, target)`` for exercising the completeness engine on positive
instances.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.decomposition import atoms, decomp
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.setfunction import SetFunction
from repro.logic.tautology import DnfTerm

__all__ = [
    "random_mask",
    "random_nonempty_mask",
    "random_family",
    "random_constraint",
    "random_constraint_set",
    "random_implied_pair",
    "random_set_function",
    "random_nonneg_density_function",
    "random_satisfying_function",
    "random_dnf",
]


def random_mask(rng: random.Random, ground: GroundSet, p: float = 0.5) -> int:
    """A random subset: each element included with probability ``p``."""
    mask = 0
    for bit in range(ground.size):
        if rng.random() < p:
            mask |= 1 << bit
    return mask


def random_nonempty_mask(
    rng: random.Random, ground: GroundSet, p: float = 0.5
) -> int:
    """A random nonempty subset."""
    mask = random_mask(rng, ground, p)
    if mask == 0:
        mask = 1 << rng.randrange(ground.size)
    return mask


def random_family(
    rng: random.Random,
    ground: GroundSet,
    max_members: int = 3,
    min_members: int = 0,
    allow_empty_member: bool = False,
    member_p: float = 0.5,
) -> SetFamily:
    """A random family with ``min_members..max_members`` member subsets."""
    count = rng.randint(min_members, max_members)
    members: List[int] = []
    for _ in range(count):
        if allow_empty_member:
            members.append(random_mask(rng, ground, member_p))
        else:
            members.append(random_nonempty_mask(rng, ground, member_p))
    return SetFamily(ground, members)


def random_constraint(
    rng: random.Random,
    ground: GroundSet,
    max_members: int = 3,
    min_members: int = 0,
    lhs_p: float = 0.35,
    allow_empty_member: bool = False,
) -> DifferentialConstraint:
    """A random differential constraint (possibly trivial)."""
    lhs = random_mask(rng, ground, lhs_p)
    family = random_family(
        rng,
        ground,
        max_members=max_members,
        min_members=min_members,
        allow_empty_member=allow_empty_member,
    )
    return DifferentialConstraint(ground, lhs, family)


def random_constraint_set(
    rng: random.Random,
    ground: GroundSet,
    n_constraints: int,
    max_members: int = 3,
    min_members: int = 0,
    allow_empty_member: bool = False,
) -> ConstraintSet:
    """A random set of ``n_constraints`` constraints."""
    constraints = [
        random_constraint(
            rng,
            ground,
            max_members=max_members,
            min_members=min_members,
            allow_empty_member=allow_empty_member,
        )
        for _ in range(n_constraints)
    ]
    return ConstraintSet(ground, constraints)


def random_implied_pair(
    rng: random.Random,
    ground: GroundSet,
    max_members: int = 3,
    noise_constraints: int = 2,
    mode: str = "atoms",
) -> Tuple[ConstraintSet, DifferentialConstraint]:
    """A pair ``(C, target)`` with ``C |= target`` guaranteed.

    ``C`` is built from a decomposition of the target (Remark 4.5 makes
    either ``decomp`` or ``atoms`` equivalent to it) plus random noise
    constraints; useful for stressing the derivation engine on positive
    instances of controlled shape.
    """
    target = random_constraint(rng, ground, max_members=max_members, min_members=1)
    if mode == "atoms":
        base = atoms(target)
    elif mode == "decomp":
        base = decomp(target)
    elif mode == "self":
        base = [target]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    extras = [
        random_constraint(rng, ground, max_members=max_members)
        for _ in range(noise_constraints)
    ]
    if not base:
        # trivial target: anything implies it
        base = extras or [target]
    return ConstraintSet(ground, list(base) + extras), target


def random_set_function(
    rng: random.Random,
    ground: GroundSet,
    low: float = -1.0,
    high: float = 1.0,
    exact: bool = False,
) -> SetFunction:
    """A dense function with independent uniform values."""
    if exact:
        values = [rng.randint(int(low * 10), int(high * 10)) for _ in ground.all_masks()]
        return SetFunction(ground, values, exact=True)
    values = [rng.uniform(low, high) for _ in ground.all_masks()]
    return SetFunction(ground, values)


def random_nonneg_density_function(
    rng: random.Random,
    ground: GroundSet,
    zero_probability: float = 0.6,
    integral: bool = False,
) -> SetFunction:
    """A random member of ``positive(S)`` (sparse nonnegative density).

    With ``integral=True`` the density is integer-valued, i.e. the result
    is a support function.
    """
    density = {}
    for mask in ground.all_masks():
        if rng.random() >= zero_probability:
            density[mask] = rng.randint(1, 5) if integral else rng.uniform(0.1, 2.0)
    return SetFunction.from_density(ground, density, exact=integral)


def random_satisfying_function(
    rng: random.Random,
    cset: ConstraintSet,
    zero_probability: float = 0.3,
    integral: bool = True,
) -> SetFunction:
    """A random frequency function satisfying every constraint of ``C``.

    By Theorem 3.5 the models of ``C`` in ``positive(S)`` are exactly the
    nonnegative densities vanishing on ``L(C)``, so sampling is direct:
    random mass on a random selection of subsets *outside* ``L(C)``.
    With ``integral=True`` the result is a support function (realizable
    as a basket list).  Note a function sampled this way satisfies ``C``
    but usually also violates non-consequences (its mass spreads over
    the whole complement of ``L(C)``), making it useful as a randomized
    quasi-Armstrong witness in Monte-Carlo experiments.
    """
    ground = cset.ground
    density = {}
    for mask in ground.all_masks():
        if cset.lattice_contains(mask):
            continue
        if rng.random() < zero_probability:
            continue
        density[mask] = (
            rng.randint(1, 5) if integral else rng.uniform(0.1, 2.0)
        )
    return SetFunction.from_density(ground, density, exact=integral)


def random_dnf(
    rng: random.Random,
    ground: GroundSet,
    n_terms: int,
    literal_p: float = 0.4,
) -> List[DnfTerm]:
    """A random DNF formula as ``(P_mask, Q_mask)`` terms."""
    terms: List[DnfTerm] = []
    for _ in range(n_terms):
        pos = random_mask(rng, ground, literal_p)
        neg = random_mask(rng, ground, literal_p) & ~pos
        terms.append((pos, neg))
    return terms
