"""Measure-based constraints (the conclusion's research direction).

The paper's conclusion points to measure constraints arising in the
Dempster-Shafer theory of evidence; this subpackage supplies the theory
(mass/belief/plausibility/commonality, Dempster's rule) and the bridge:
commonality functions are frequency functions whose density is the mass,
so differential constraints speak directly about focal elements.
"""

from repro.measures.dempster_shafer import (
    MassFunction,
    bayesian_mass,
    random_mass,
    vacuous_mass,
)

__all__ = ["MassFunction", "bayesian_mass", "random_mass", "vacuous_mass"]
