"""Dempster-Shafer belief theory and its differential-constraint bridge.

The paper's conclusion points at the authors' measure-constraint research
and notes that such constraints "occur naturally in ... the
Dempster-Shafer theory of reasoning about uncertainty" (citing Halpern's
exposition).  This module supplies that substrate from scratch and makes
the bridge precise:

* a *mass function* (basic probability assignment) is an
  ``m : 2^S -> [0, 1]`` with ``sum m = 1`` and ``m(emptyset) = 0``;
* belief ``Bel(X) = sum over U subseteq X of m(U)`` (subset zeta of
  ``m``), plausibility ``Pl(X) = 1 - Bel(S - X)``;
* the *commonality function* ``Q(X) = sum over U superseteq X of m(U)``
  is exactly a set function whose **density is the mass** -- i.e. a
  frequency function in the paper's sense, normalized to ``Q((/)) = 1``.

Consequently a differential constraint ``X -> Y`` holds of the
commonality function iff the mass vanishes on the lattice decomposition
``L(X, Y)`` -- Theorem 3.5's machinery transfers verbatim to reasoning
about which focal elements a belief state may carry.

Two facts about Dempster's rule of combination sharpen the picture and
are locked in by the tests:

* commonalities multiply (Shafer): ``Q_12 = K * Q_1 * Q_2`` pointwise,
  so the *zero set of the commonality function* only grows under
  combination -- support-style constraints ``f(X) = 0`` (the
  Calders-Paredaens end of the spectrum) are preserved;
* differential constraints are **not** preserved: focal elements of the
  combination are intersections of focal elements, and an intersection
  can fall into ``L(X, Y)`` even when neither operand's focal elements
  do (masses on ``AB`` and on ``AC`` both satisfy ``A -> {B, C}``, their
  combination is focal on ``A`` and violates it).  Evidence fusion can
  thus *create* violations of structural constraints -- a concrete
  observation for the conclusion's measure-constraint program.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core import subsets as sb
from repro.core import transforms
from repro.core.constraint import DifferentialConstraint
from repro.core.ground import GroundSet
from repro.core.setfunction import DEFAULT_TOLERANCE, SetFunction

__all__ = ["MassFunction", "vacuous_mass", "bayesian_mass", "random_mass"]


class MassFunction:
    """A basic probability assignment over a ground set (the frame).

    Parameters
    ----------
    ground:
        The frame of discernment ``S``.
    masses:
        Mapping of focal elements (masks or parseable labels) to masses.
        Must be nonnegative, sum to 1, and give the empty set no mass.
    """

    __slots__ = ("_ground", "_masses")

    def __init__(self, ground: GroundSet, masses: Mapping):
        clean: Dict[int, float] = {}
        for key, value in masses.items():
            mask = key if isinstance(key, int) else ground.parse(key)
            ground._check_mask(mask)
            value = float(value)
            if value < -DEFAULT_TOLERANCE:
                raise ValueError(f"negative mass {value} at {mask:#x}")
            if value > 0:
                clean[mask] = clean.get(mask, 0.0) + value
        if clean.get(0, 0.0) > DEFAULT_TOLERANCE:
            raise ValueError("a normalized mass function gives (/) no mass")
        clean.pop(0, None)
        total = sum(clean.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"masses must sum to 1 (got {total})")
        self._ground = ground
        self._masses = clean

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    def mass(self, mask: int) -> float:
        """``m(U)``."""
        self._ground._check_mask(mask)
        return self._masses.get(mask, 0.0)

    def focal_elements(self) -> Tuple[int, ...]:
        """The subsets with positive mass, sorted by mask."""
        return tuple(sorted(self._masses))

    def items(self):
        return sorted(self._masses.items())

    def __repr__(self) -> str:
        return (
            f"MassFunction({len(self._masses)} focal elements over "
            f"|S|={self._ground.size})"
        )

    # ------------------------------------------------------------------
    # the three classic set functions
    # ------------------------------------------------------------------
    def belief(self, mask: int) -> float:
        """``Bel(X) = sum of m(U) over U subseteq X``."""
        self._ground._check_mask(mask)
        return sum(v for u, v in self._masses.items() if sb.is_subset(u, mask))

    def plausibility(self, mask: int) -> float:
        """``Pl(X) = sum of m(U) over U intersecting X = 1 - Bel(S - X)``."""
        self._ground._check_mask(mask)
        return sum(v for u, v in self._masses.items() if u & mask)

    def commonality(self, mask: int) -> float:
        """``Q(X) = sum of m(U) over U superseteq X``."""
        self._ground._check_mask(mask)
        return sum(v for u, v in self._masses.items() if sb.is_subset(mask, u))

    def belief_function(self) -> SetFunction:
        """``Bel`` as a dense set function (subset zeta of the mass)."""
        table = [0.0] * (1 << self._ground.size)
        for u, v in self._masses.items():
            table[u] += v
        transforms.subset_zeta_inplace(table)
        return SetFunction(self._ground, table)

    def commonality_function(self) -> SetFunction:
        """``Q`` as a dense set function -- a *frequency function* whose
        density is exactly the mass (the bridge to the paper)."""
        return SetFunction.from_density(
            self._ground, dict(self._masses), exact=False
        )

    @classmethod
    def from_belief(cls, bel: SetFunction) -> "MassFunction":
        """Recover the mass from a belief function (subset Moebius)."""
        table = bel.table()
        if not isinstance(table, list):
            table = list(table)
        transforms.subset_mobius_inplace(table)
        masses = {
            mask: value
            for mask, value in enumerate(table)
            if abs(value) > DEFAULT_TOLERANCE
        }
        return cls(bel.ground, masses)

    @classmethod
    def from_commonality(cls, q: SetFunction) -> "MassFunction":
        """Recover the mass from a commonality function (its density)."""
        density = q.density()
        masses = {
            mask: density.value(mask)
            for mask in q.ground.all_masks()
            if abs(density.value(mask)) > DEFAULT_TOLERANCE
        }
        return cls(q.ground, masses)

    # ------------------------------------------------------------------
    # Dempster's rule of combination
    # ------------------------------------------------------------------
    def combine(self, other: "MassFunction") -> "MassFunction":
        """Dempster's rule: ``m12(Z)  proportional to  sum over
        X cap Y = Z, Z != (/) of m1(X) m2(Y)``.

        Raises :class:`ValueError` on total conflict (all product mass on
        the empty intersection).
        """
        self._ground.check_same(other._ground)
        raw: Dict[int, float] = {}
        conflict = 0.0
        for x, mx in self._masses.items():
            for y, my in other._masses.items():
                z = x & y
                if z == 0:
                    conflict += mx * my
                else:
                    raw[z] = raw.get(z, 0.0) + mx * my
        if conflict >= 1.0 - 1e-12:
            raise ValueError("total conflict: Dempster combination undefined")
        scale = 1.0 / (1.0 - conflict)
        return MassFunction(
            self._ground, {z: v * scale for z, v in raw.items()}
        )

    def conflict_with(self, other: "MassFunction") -> float:
        """The conflict mass ``K`` absorbed by normalization."""
        self._ground.check_same(other._ground)
        return sum(
            mx * my
            for x, mx in self._masses.items()
            for y, my in other._masses.items()
            if x & y == 0
        )

    # ------------------------------------------------------------------
    # the differential-constraint bridge
    # ------------------------------------------------------------------
    def satisfies(
        self,
        constraint: DifferentialConstraint,
        tol: float = DEFAULT_TOLERANCE,
    ) -> bool:
        """Whether the commonality function satisfies ``constraint``.

        Equivalent (Theorem 3.5 + the density-equals-mass identity) to:
        no focal element lies in ``L(X, Y)`` -- a structural statement
        about where belief may be committed.
        """
        self._ground.check_same(constraint.ground)
        return not any(
            constraint.lattice_contains(u)
            for u in self._masses
        )


def vacuous_mass(ground: GroundSet) -> MassFunction:
    """Total ignorance: all mass on the frame ``S``."""
    return MassFunction(ground, {ground.universe_mask: 1.0})


def bayesian_mass(ground: GroundSet, probabilities: Mapping) -> MassFunction:
    """A probability distribution as a mass on singletons."""
    masses = {}
    for key, value in probabilities.items():
        mask = key if isinstance(key, int) else ground.parse(key)
        if sb.popcount(mask) != 1:
            raise ValueError("bayesian masses live on singletons")
        masses[mask] = value
    return MassFunction(ground, masses)


def random_mass(
    ground: GroundSet,
    rng: random.Random,
    n_focal: int = 4,
) -> MassFunction:
    """A random mass with ``n_focal`` (attempted) focal elements."""
    weights: Dict[int, float] = {}
    universe = ground.universe_mask
    for _ in range(n_focal):
        mask = rng.randrange(1, universe + 1)
        weights[mask] = weights.get(mask, 0.0) + rng.random() + 0.05
    total = sum(weights.values())
    return MassFunction(
        ground, {m: w / total for m, w in weights.items()}
    )
