"""Disjunctive constraints over basket lists (Definition 6.1, Props 6.3-6.4).

A basket list ``B`` satisfies ``X =>disj Y`` iff
``B(X) = union over Y in Y of B(X union Y)`` -- every basket containing
``X`` also contains ``X union Y`` for some member ``Y``.  Proposition 6.3
identifies this with the support function satisfying the differential
constraint ``X -> Y``; Proposition 6.4 collapses the implication problems
over ``F(S)``, ``positive(S)``, ``support(S)`` and the disjunctive world.

:class:`DisjunctiveConstraint` shares its ``(X, Y)`` data with
:class:`~repro.core.constraint.DifferentialConstraint` and converts both
ways.  :func:`implies_disjunctive` decides implication by any of the core
deciders (justified by Prop 6.4);
:func:`semantic_implies_over_single_basket_lists` re-decides it purely
through basket *satisfaction* scans (the ``f^U = s_(U)`` argument in the
paper's proof), giving the tests an independent code path.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import decide
from repro.fis.baskets import BasketDatabase

__all__ = [
    "DisjunctiveConstraint",
    "implies_disjunctive",
    "semantic_implies_over_single_basket_lists",
]


class DisjunctiveConstraint:
    """``X =>disj Y`` over a ground set of items.

    Unlike the disjunctive rules of Bykowski-Rigotti and the generalized
    rules of Kryszkiewicz-Gajek, the right-hand side may be empty and may
    contain non-singleton itemsets (the paper generalizes both).
    """

    __slots__ = ("_constraint",)

    def __init__(self, ground: GroundSet, lhs_mask: int, family: SetFamily):
        self._constraint = DifferentialConstraint(ground, lhs_mask, family)

    @classmethod
    def of(cls, ground: GroundSet, lhs, *members) -> "DisjunctiveConstraint":
        """Build from labels: ``DisjunctiveConstraint.of(S, "A", "B", "CD")``."""
        return cls(ground, ground.parse(lhs), SetFamily.of(ground, *members))

    @classmethod
    def from_differential(
        cls, constraint: DifferentialConstraint
    ) -> "DisjunctiveConstraint":
        """The disjunctive reading of a differential constraint."""
        return cls(constraint.ground, constraint.lhs, constraint.family)

    def to_differential(self) -> DifferentialConstraint:
        """The corresponding differential constraint (Prop 6.3)."""
        return self._constraint

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._constraint.ground

    @property
    def lhs(self) -> int:
        return self._constraint.lhs

    @property
    def family(self) -> SetFamily:
        return self._constraint.family

    @property
    def is_trivial(self) -> bool:
        """A member inside ``X`` makes the constraint hold in every list."""
        return self._constraint.is_trivial

    def support_set(self) -> int:
        """``X union (union of Y)`` -- the itemset this constraint marks
        disjunctive (Definition 6.2)."""
        return self.lhs | self.family.union_support()

    # ------------------------------------------------------------------
    def satisfied_by(self, db: BasketDatabase) -> bool:
        """Definition 6.1, decided on covers: ``B(X) = union B(X + Y)``."""
        self.ground.check_same(db.ground)
        base = db.cover_array(self.lhs)
        union = np.zeros(len(db), dtype=bool)
        for member in self.family:
            union |= db.cover_array(self.lhs | member)
        return bool(np.array_equal(base, union))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DisjunctiveConstraint)
            and self._constraint == other._constraint
        )

    def __hash__(self) -> int:
        return hash(("disj", self._constraint))

    def __repr__(self) -> str:
        ground = self.ground
        lhs = ground.format_mask(self.lhs)
        rhs = ground.format_family(self.family.members)
        return f"{lhs} =>disj {rhs}"


def implies_disjunctive(
    constraints: Iterable[DisjunctiveConstraint],
    target: DisjunctiveConstraint,
    method: str = "auto",
) -> bool:
    """``Cdisj |= X =>disj Y`` via the Prop 6.4 equivalence.

    Routed through the differential-constraint deciders, which Prop 6.4
    proves decide exactly the disjunctive implication problem.
    """
    diff_constraints = [c.to_differential() for c in constraints]
    cset = ConstraintSet(target.ground, diff_constraints)
    return decide(cset, target.to_differential(), method=method)


def semantic_implies_over_single_basket_lists(
    constraints: Iterable[DisjunctiveConstraint],
    target: DisjunctiveConstraint,
) -> bool:
    """Disjunctive implication decided by basket-satisfaction scans only.

    The paper's Prop 6.4 proof shows the one-basket lists ``(U)`` form a
    refutation-complete family; scanning all ``2^|S|`` of them decides
    implication through the *cover-based* satisfaction code path, fully
    independent of densities and lattices -- a genuine cross-check.
    """
    ground = target.ground
    clist = list(constraints)
    for u in ground.all_masks():
        db = BasketDatabase(ground, [u])
        if all(c.satisfied_by(db) for c in clist) and not target.satisfied_by(db):
            return False
    return True
