"""Synthetic basket workloads (the evaluation substrate for Section 6).

The paper reports no datasets; its application section leans on the
Bykowski-Rigotti observation that concise representations shrink
dramatically on *correlated* data.  These seeded generators provide the
three workload families the benchmarks sweep:

* :func:`random_baskets` -- independent Bernoulli items ("sparse" /
  "dense" by the item probability): the unstructured control.
* :func:`correlated_baskets` -- baskets drawn from a small pool of
  templates with add/drop noise (an IBM-Quest-style generator): many
  satisfied disjunctive rules, the regime where ``FDFree + Bd-`` wins.
* :func:`plant_disjunctive_rule` -- post-process a database so a given
  rule holds exactly (used to create ground-truth rule structure for the
  inference-pruning experiment E11).

All generators take an explicit :class:`random.Random` so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.fis.baskets import BasketDatabase
from repro.fis.disjunctive import DisjunctiveConstraint

__all__ = [
    "random_baskets",
    "correlated_baskets",
    "plant_disjunctive_rule",
]


def random_baskets(
    ground: GroundSet,
    n_baskets: int,
    item_probability: float,
    rng: random.Random,
) -> BasketDatabase:
    """Independent items: each of the ``|S|`` items joins each basket
    with probability ``item_probability``."""
    baskets: List[int] = []
    for _ in range(n_baskets):
        mask = 0
        for bit in range(ground.size):
            if rng.random() < item_probability:
                mask |= 1 << bit
        baskets.append(mask)
    return BasketDatabase(ground, baskets)


def correlated_baskets(
    ground: GroundSet,
    n_baskets: int,
    n_templates: int,
    template_size: int,
    drop_probability: float,
    add_probability: float,
    rng: random.Random,
) -> BasketDatabase:
    """Template-based correlated data.

    ``n_templates`` random itemsets of ``template_size`` items are drawn;
    each basket copies a random template, drops each template item with
    ``drop_probability`` and adds each outside item with
    ``add_probability``.  Low noise means strongly correlated items --
    the regime of Section 6.1.1 where disjunctive rules abound.
    """
    bits = list(range(ground.size))
    templates: List[int] = []
    for _ in range(n_templates):
        chosen = rng.sample(bits, min(template_size, len(bits)))
        templates.append(sb.mask_of_bits(chosen))
    baskets: List[int] = []
    for _ in range(n_baskets):
        template = rng.choice(templates)
        mask = 0
        for bit in range(ground.size):
            bit_mask = 1 << bit
            if template & bit_mask:
                if rng.random() >= drop_probability:
                    mask |= bit_mask
            elif rng.random() < add_probability:
                mask |= bit_mask
        baskets.append(mask)
    return BasketDatabase(ground, baskets)


def plant_disjunctive_rule(
    db: BasketDatabase,
    rule: DisjunctiveConstraint,
    rng: random.Random,
) -> BasketDatabase:
    """Rewrite baskets so that ``rule`` holds in the result.

    Every basket containing the rule's left-hand side but none of
    ``X union Y`` gets a uniformly chosen member ``Y`` added (the minimal
    edit that repairs the rule; a rule with an empty family instead drops
    one left-hand-side item, making the left side never occur).
    """
    ground = db.ground
    members = rule.family.members
    if not members and rule.lhs == 0:
        # "(/) =>disj {}" holds only in the empty list
        return BasketDatabase(ground, [])
    fixed: List[int] = []
    for basket in db:
        if not sb.is_subset(rule.lhs, basket):
            fixed.append(basket)
            continue
        if any(sb.is_subset(rule.lhs | m, basket) for m in members):
            fixed.append(basket)
            continue
        if members:
            fixed.append(basket | rng.choice(members))
        else:
            # empty right-hand side: the left side must never occur
            drop_bit = rng.choice(list(sb.iter_singletons(rule.lhs)))
            fixed.append(basket & ~drop_bit)
    return BasketDatabase(ground, fixed)
