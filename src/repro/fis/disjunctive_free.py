"""Disjunctive and disjunctive-free itemsets (Definition 6.2).

An itemset ``X`` is *disjunctive* in ``B`` when ``B`` satisfies some
nontrivial disjunctive constraint ``X' =>disj Y'`` whose support set
``X' union (union Y')`` fits inside ``X``; it is *disjunctive-free*
otherwise.  Bykowski-Rigotti's disjunctive rules (two singletons on the
right) and Kryszkiewicz-Gajek's generalized rules (any number of
singletons) are the special cases the paper names.

Two structural facts keep the search tractable and are verified by the
test suite:

* **Singleton reduction.**  For a fixed ``X' subset X`` the union
  ``union over Y of B(X' + Y)`` only grows as members are added, and
  every ``B(X' + Y)`` is contained in ``B(X' + {y})`` for ``y in Y``;
  hence *some* nontrivial constraint confined to ``X`` holds iff the
  all-singleton constraint ``X' =>disj {{y} | y in X - X'}`` holds.  The
  paper's arbitrary-family notion therefore coincides with the
  generalized-rule notion, and the search space is the subsets of ``X``.

* **Maximal-LHS reduction.**  Satisfied rules survive augmentation of the
  left-hand side (the Augmentation rule, sound over support functions),
  so a width-``k`` rule exists inside ``X`` iff one of the form
  ``(X - T) =>disj {{y} | y in T}`` with ``|T| <= k`` holds.

The decisive support-side identity (used by the concise-representation
miner, which never touches covers): for ``T = {y_1, ..., y_k}``::

    B(X') = union B(X' + {y_i})   iff   s(X') = -sum_{emptyset != T' subseteq T}
                                              (-1)^{|T'|} s(X' + T')

by inclusion-exclusion on the covers (all contained in ``B(X')``).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core import subsets as sb
from repro.core.family import SetFamily
from repro.fis.baskets import BasketDatabase
from repro.fis.disjunctive import DisjunctiveConstraint

__all__ = [
    "holds_singleton_rule",
    "find_disjunctive_rule",
    "is_disjunctive",
    "is_disjunctive_free",
    "iter_disjunctive_free",
    "is_disjunctive_bruteforce",
]


def holds_singleton_rule(db: BasketDatabase, lhs_mask: int, rhs_items: int) -> bool:
    """Whether ``B`` satisfies ``lhs =>disj {{y} | y in rhs_items}``.

    Decided on covers; ``rhs_items`` is a mask of the singleton members.
    """
    rule = DisjunctiveConstraint(
        db.ground, lhs_mask, SetFamily.singletons_of(db.ground, rhs_items)
    )
    return rule.satisfied_by(db)


def find_disjunctive_rule(
    db: BasketDatabase, x_mask: int, max_rhs: Optional[int] = None
) -> Optional[DisjunctiveConstraint]:
    """A nontrivial satisfied rule certifying that ``X`` is disjunctive.

    Searches rules of the form ``(X - T) =>disj {{y} | y in T}`` over the
    nonempty ``T subseteq X`` (with ``|T| <= max_rhs`` when given;
    ``max_rhs=1`` is the pure-association-rule case, ``max_rhs=2`` the
    Bykowski-Rigotti case, ``None`` the paper's general case).  Returns
    ``None`` when ``X`` is disjunctive-free at this width.

    Note ``y_1 = y_2`` rules of the two-singleton formulation are covered
    by ``|T| = 1``.
    """
    for t in sb.iter_subsets(x_mask):
        if t == 0:
            continue
        if max_rhs is not None and sb.popcount(t) > max_rhs:
            continue
        lhs = x_mask & ~t
        if holds_singleton_rule(db, lhs, t):
            return DisjunctiveConstraint(
                db.ground, lhs, SetFamily.singletons_of(db.ground, t)
            )
    return None


def is_disjunctive(
    db: BasketDatabase, x_mask: int, max_rhs: Optional[int] = None
) -> bool:
    """Definition 6.2 membership (at rule width ``max_rhs``)."""
    return find_disjunctive_rule(db, x_mask, max_rhs) is not None


def is_disjunctive_free(
    db: BasketDatabase, x_mask: int, max_rhs: Optional[int] = None
) -> bool:
    """Whether ``X`` is disjunctive-free (Definition 6.2)."""
    return find_disjunctive_rule(db, x_mask, max_rhs) is None


def iter_disjunctive_free(
    db: BasketDatabase, max_rhs: Optional[int] = None
) -> Iterator[int]:
    """All disjunctive-free itemsets, ascending by mask (small ``|S|``)."""
    for mask in db.ground.all_masks():
        if is_disjunctive_free(db, mask, max_rhs):
            yield mask


def is_disjunctive_bruteforce(db: BasketDatabase, x_mask: int) -> bool:
    """Literal Definition 6.2: search *all* nontrivial constraints
    ``X' =>disj Y'`` with support set inside ``X``.

    Doubly exponential in ``|X|``; the oracle against which the singleton
    and maximal-LHS reductions are validated.
    """
    ground = db.ground
    for lhs in sb.iter_subsets(x_mask):
        # family members range over nonempty subsets of X (they may
        # overlap the LHS); enumerate all sub-collections
        members = [m for m in sb.iter_subsets(x_mask) if m != 0]
        for pick in range(1, 1 << len(members)):
            family = SetFamily(
                ground,
                (members[i] for i in range(len(members)) if pick >> i & 1),
            )
            constraint = DisjunctiveConstraint(ground, lhs, family)
            if constraint.is_trivial:
                continue
            if constraint.satisfied_by(db):
                return True
    return False
