"""Concise representations of frequent itemsets (Section 6.1.1).

Implements the Bykowski-Rigotti style representation the paper builds
its application on: the *frequent disjunctive-free* sets ``FDFree(B, k)``
together with the negative border ``Bd-`` of that collection (the minimal
itemsets that are infrequent or disjunctive).  The pair is *lossless*:
the frequency status of **every** itemset, and the exact support of every
frequent itemset, is derivable without touching the data --
:meth:`ConciseRepresentation.derive` implements the derivation by
augmenting border rules and solving the inclusion-exclusion identity
(equivalently: the differential ``D^{T}_{s_B}`` vanishing, which is
Proposition 6.3 at work).

Note on the paper's text: the printed equation
``FDFree(B, k) = Infreq(B, k) union Disjunctive(B)`` garbles the cited
construction (it would make FDFree the *non*-free sets); we implement the
original semantics -- ``FDFree = frequent AND disjunctive-free`` -- whose
losslessness is the property the paper actually uses, and DESIGN.md
records the discrepancy.

The miner is levelwise like Apriori but prunes at *disjunctive* sets too:
both infrequent and disjunctive candidates stop expansion and enter the
border.  The disjunctive test is done purely on already-known supports
via the alternating-sum identity, never on covers -- that is the whole
point of the representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core import subsets as sb
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.fis.baskets import BasketDatabase
from repro.fis.disjunctive import DisjunctiveConstraint

__all__ = ["BorderEntry", "ConciseRepresentation", "mine_concise", "verify_lossless"]

#: Derivation statuses.
FREQUENT = "frequent"
INFREQUENT = "infrequent"


@dataclass(frozen=True)
class BorderEntry:
    """One minimal non-FDFree itemset.

    ``rule`` is the certifying disjunctive rule when the set is
    disjunctive; ``infrequent`` is set when its support fell below the
    threshold (a set may be both; infrequency is recorded as the primary
    reason because derivation can stop immediately on it).
    """

    mask: int
    support: int
    infrequent: bool
    rule: Optional[DisjunctiveConstraint]


class ConciseRepresentation:
    """``(FDFree, Bd-)`` with lossless support derivation."""

    def __init__(
        self,
        ground: GroundSet,
        kappa: int,
        max_rhs: Optional[int],
        elements: Dict[int, int],
        border: Dict[int, BorderEntry],
    ):
        self._ground = ground
        self._kappa = kappa
        self._max_rhs = max_rhs
        self._elements = dict(elements)
        self._border = dict(border)
        self._memo: Dict[int, Tuple[str, Optional[int]]] = {}

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def kappa(self) -> int:
        return self._kappa

    @property
    def elements(self) -> Dict[int, int]:
        """``FDFree``: itemset mask -> support."""
        return dict(self._elements)

    @property
    def border(self) -> Dict[int, BorderEntry]:
        """``Bd-``: minimal non-FDFree itemsets."""
        return dict(self._border)

    def size(self) -> int:
        """Representation size ``|FDFree| + |Bd-|``."""
        return len(self._elements) + len(self._border)

    def __repr__(self) -> str:
        return (
            f"ConciseRepresentation(|FDFree|={len(self._elements)}, "
            f"|Bd-|={len(self._border)}, kappa={self._kappa})"
        )

    # ------------------------------------------------------------------
    def derive(self, x_mask: int) -> Tuple[str, Optional[int]]:
        """Frequency status (and exact support when frequent) of any set.

        Returns ``("frequent", support)`` or ``("infrequent", support)``
        where the support of an infrequent set is reported when the
        derivation happened to compute it and ``None`` otherwise (the
        representation only promises supports of frequent sets).
        """
        if x_mask in self._memo:
            return self._memo[x_mask]

        if x_mask in self._elements:
            result: Tuple[str, Optional[int]] = (FREQUENT, self._elements[x_mask])
            self._memo[x_mask] = result
            return result

        entry = self._covering_border_entry(x_mask)
        if entry is None:
            raise LookupError(
                f"{self._ground.format_mask(x_mask)} is neither in FDFree "
                "nor above the border; the representation is inconsistent"
            )
        if entry.infrequent:
            result = (INFREQUENT, entry.support if entry.mask == x_mask else None)
            self._memo[x_mask] = result
            return result

        # lift the border rule to x: with T the rule's singleton items,
        # s(x) = -sum over proper T' of T of (-1)^{|T'|-|T|} s((x-T) + T')
        t = entry.rule.family.union_support()
        total = 0
        sign_t = sb.popcount(t)
        for t_prime in sb.iter_proper_subsets(t):
            sub_status, sub_support = self.derive((x_mask & ~t) | t_prime)
            if sub_status == INFREQUENT:
                # an infrequent subset makes x infrequent outright
                result = (INFREQUENT, None)
                self._memo[x_mask] = result
                return result
            parity = (sb.popcount(t_prime) - sign_t) % 2
            total += -sub_support if parity == 0 else sub_support
        support = total
        status = FREQUENT if support >= self._kappa else INFREQUENT
        result = (status, support)
        self._memo[x_mask] = result
        return result

    def _covering_border_entry(self, x_mask: int) -> Optional[BorderEntry]:
        best = None
        for mask, entry in self._border.items():
            if sb.is_subset(mask, x_mask):
                if entry.infrequent:
                    return entry  # infrequency short-circuits
                if best is None:
                    best = entry
        return best


def mine_concise(
    db: BasketDatabase, kappa: int, max_rhs: Optional[int] = 2
) -> ConciseRepresentation:
    """Levelwise mining of ``(FDFree, Bd-)``.

    ``max_rhs`` bounds the width of the disjunctive rules used (2 =
    Bykowski-Rigotti, ``None`` = the paper's general notion).  Every
    candidate has all proper subsets in FDFree, so minimal non-FDFree
    sets are exactly the failed candidates, and the disjunctive test only
    needs supports of already-mined subsets plus the candidate's own.
    """
    ground = db.ground
    elements: Dict[int, int] = {}
    border: Dict[int, BorderEntry] = {}
    supports: Dict[int, int] = {}

    def classify(mask: int) -> bool:
        """Count, classify, record; return True when FDFree (expandable)."""
        support = db.support(mask)
        supports[mask] = support
        if support < kappa:
            border[mask] = BorderEntry(mask, support, True, None)
            return False
        rule = _disjunctive_rule_from_supports(ground, mask, supports, max_rhs)
        if rule is not None:
            border[mask] = BorderEntry(mask, support, False, rule)
            return False
        elements[mask] = support
        return True

    if not classify(0):
        return ConciseRepresentation(ground, kappa, max_rhs, elements, border)

    current: List[int] = []
    for bit in range(ground.size):
        mask = 1 << bit
        if classify(mask):
            current.append(mask)

    level = 1
    while current:
        lookup: Set[int] = set(current)
        unions: Set[int] = set()
        ordered = sorted(current)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                u = a | b
                if sb.popcount(u) == level + 1:
                    unions.add(u)
        next_level: List[int] = []
        for u in sorted(unions):
            if not all(u & ~bit in lookup for bit in sb.iter_singletons(u)):
                continue
            if classify(u):
                next_level.append(u)
        current = next_level
        level += 1

    return ConciseRepresentation(ground, kappa, max_rhs, elements, border)


def _disjunctive_rule_from_supports(
    ground: GroundSet,
    x_mask: int,
    supports: Dict[int, int],
    max_rhs: Optional[int],
) -> Optional[DisjunctiveConstraint]:
    """A rule ``(X-T) =>disj T-singletons`` holding at ``X``, from supports.

    Uses the alternating-sum identity: the rule holds iff
    ``sum over T' of T of (-1)^{|T'|} s((X-T) + T') == 0``.  All needed
    supports are of subsets of ``X``, already counted by the levelwise
    order.
    """
    for t in sb.iter_subsets(x_mask):
        if t == 0:
            continue
        if max_rhs is not None and sb.popcount(t) > max_rhs:
            continue
        base = x_mask & ~t
        total = 0
        for t_prime in sb.iter_subsets(t):
            value = supports[base | t_prime]
            total += -value if sb.popcount(t_prime) & 1 else value
        if total == 0:
            return DisjunctiveConstraint(
                ground, base, SetFamily.singletons_of(ground, t)
            )
    return None


def verify_lossless(db: BasketDatabase, rep: ConciseRepresentation) -> bool:
    """Whether the representation derives every itemset's status (and
    every frequent itemset's exact support) correctly -- the Section 6.1.1
    losslessness claim, checked exhaustively (small ``|S|``)."""
    for mask in db.ground.all_masks():
        actual = db.support(mask)
        status, support = rep.derive(mask)
        actually_frequent = actual >= rep.kappa
        if status == FREQUENT:
            if not actually_frequent or support != actual:
                return False
        else:
            if actually_frequent:
                return False
            if support is not None and support != actual:
                return False
    return True
