"""Frequent-itemset substrate (Section 6 of the paper).

Basket databases and support functions, frequency functions
(``positive(S)``), the Apriori baseline with its negative border,
disjunctive constraints and disjunctive-free itemsets, the
``(FDFree, Bd-)`` concise representation with lossless support
derivation, inference-based pruning of disjunctive sets, and seeded
synthetic workload generators.
"""

from repro.fis.baskets import BasketDatabase
from repro.fis.frequency import (
    check_differentials_nonnegative,
    induce_basket_database,
    is_frequency_function,
    is_support_function,
    semantics_agree_on,
)
from repro.fis.apriori import (
    MiningResult,
    apriori,
    bruteforce_frequent,
    negative_border_of,
)
from repro.fis.disjunctive import (
    DisjunctiveConstraint,
    implies_disjunctive,
    semantic_implies_over_single_basket_lists,
)
from repro.fis.disjunctive_free import (
    find_disjunctive_rule,
    holds_singleton_rule,
    is_disjunctive,
    is_disjunctive_bruteforce,
    is_disjunctive_free,
    iter_disjunctive_free,
)
from repro.fis.concise import (
    BorderEntry,
    ConciseRepresentation,
    mine_concise,
    verify_lossless,
)
from repro.fis.inference_pruning import (
    derivable_beyond_support_sets,
    is_derivably_disjunctive,
    prune_redundant_rules,
    support_set_upclosure,
)
from repro.fis.datagen import (
    correlated_baskets,
    plant_disjunctive_rule,
    random_baskets,
)
from repro.fis.freqsat import (
    FrequencyConstraint,
    GeneralizedDensityConstraint,
    measure_sat,
    support_sat,
)
from repro.fis.discovery import (
    discover_cover,
    minimal_disjunctive_rules,
    theory_of,
    zero_set,
)

__all__ = [
    "BasketDatabase",
    "check_differentials_nonnegative",
    "induce_basket_database",
    "is_frequency_function",
    "is_support_function",
    "semantics_agree_on",
    "MiningResult",
    "apriori",
    "bruteforce_frequent",
    "negative_border_of",
    "DisjunctiveConstraint",
    "implies_disjunctive",
    "semantic_implies_over_single_basket_lists",
    "find_disjunctive_rule",
    "holds_singleton_rule",
    "is_disjunctive",
    "is_disjunctive_bruteforce",
    "is_disjunctive_free",
    "iter_disjunctive_free",
    "BorderEntry",
    "ConciseRepresentation",
    "mine_concise",
    "verify_lossless",
    "derivable_beyond_support_sets",
    "is_derivably_disjunctive",
    "prune_redundant_rules",
    "support_set_upclosure",
    "correlated_baskets",
    "plant_disjunctive_rule",
    "random_baskets",
    "FrequencyConstraint",
    "GeneralizedDensityConstraint",
    "measure_sat",
    "support_sat",
    "discover_cover",
    "minimal_disjunctive_rules",
    "theory_of",
    "zero_set",
]
