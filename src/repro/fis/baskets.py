"""Basket databases -- the lists ``B`` of the frequent itemset problem.

Section 6.1 of the paper: a *list of baskets* ``B`` over items ``S``
(duplicates allowed -- it is a list, not a set), the *cover*
``B(X) = {i | X subseteq B[i]}``, the *support* ``s_B(X) = |B(X)|`` and
the basket multiset count ``d^B(X) = |{i | B[i] = X}|``, which Remark 2.3
identifies as the density of the support function.

Supports are counted against a vertical bitmap (one boolean row per
item); intersecting rows answers a support query in ``O(|B|)`` numpy
words independent of how many itemsets have been queried before.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.core.setfunction import SetFunction, SparseDensityFunction

__all__ = ["BasketDatabase"]

_UNSET = object()


class BasketDatabase:
    """An immutable list of baskets over a ground set of items."""

    __slots__ = ("_ground", "_baskets", "_bitmap")

    def __init__(self, ground: GroundSet, baskets: Iterable):
        masks: List[int] = []
        for basket in baskets:
            mask = basket if isinstance(basket, int) else ground.parse(basket)
            ground._check_mask(mask)
            masks.append(mask)
        self._ground = ground
        self._baskets: Tuple[int, ...] = tuple(masks)
        self._bitmap: Optional[np.ndarray] = None

    @classmethod
    def of(cls, ground: GroundSet, *baskets) -> "BasketDatabase":
        """Build from baskets in the paper's shorthand.

        >>> S = GroundSet("ABC")
        >>> BasketDatabase.of(S, "AB", "AB", "C")
        BasketDatabase(3 baskets over |S|=3)
        """
        return cls(ground, baskets)

    # ------------------------------------------------------------------
    @property
    def ground(self) -> GroundSet:
        return self._ground

    @property
    def baskets(self) -> Tuple[int, ...]:
        """The basket masks in list order."""
        return self._baskets

    def __len__(self) -> int:
        return len(self._baskets)

    def __iter__(self) -> Iterator[int]:
        return iter(self._baskets)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BasketDatabase)
            and self._ground == other._ground
            and self._baskets == other._baskets
        )

    def __hash__(self) -> int:
        return hash((self._ground, self._baskets))

    def __repr__(self) -> str:
        return f"BasketDatabase({len(self._baskets)} baskets over |S|={self._ground.size})"

    # ------------------------------------------------------------------
    # covers and supports
    # ------------------------------------------------------------------
    def _bitmap_rows(self) -> np.ndarray:
        """items x baskets boolean matrix (built lazily)."""
        if self._bitmap is None:
            n_items = self._ground.size
            rows = np.zeros((n_items, len(self._baskets)), dtype=bool)
            for i, basket in enumerate(self._baskets):
                for bit in sb.iter_bits(basket):
                    rows[bit, i] = True
            self._bitmap = rows
        return self._bitmap

    def cover_array(self, x_mask: int) -> np.ndarray:
        """``B(X)`` as a boolean array over basket indices."""
        self._ground._check_mask(x_mask)
        rows = self._bitmap_rows()
        out = np.ones(len(self._baskets), dtype=bool)
        for bit in sb.iter_bits(x_mask):
            out &= rows[bit]
        return out

    def cover(self, x_mask: int) -> frozenset:
        """``B(X) = {i | X subseteq B[i]}`` as a set of indices."""
        return frozenset(np.flatnonzero(self.cover_array(x_mask)).tolist())

    def support(self, x_mask: int) -> int:
        """``s_B(X) = |B(X)|``."""
        return int(self.cover_array(x_mask).sum())

    def support_of(self, labels) -> int:
        """Support with the itemset given as labels/shorthand."""
        return self.support(self._ground.parse(labels))

    def is_frequent(self, x_mask: int, kappa: int) -> bool:
        """Whether ``s_B(X) >= kappa``."""
        return self.support(x_mask) >= kappa

    # ------------------------------------------------------------------
    # densities and support functions
    # ------------------------------------------------------------------
    def multiset_counts(self) -> Dict[int, int]:
        """``d^B``: how many times each distinct basket occurs."""
        return dict(Counter(self._baskets))

    def support_function(self) -> SparseDensityFunction:
        """``s_B`` as a sparse set function (density = ``d^B``; Section 6.1).

        Scales with the number of distinct baskets, not with ``2^|S|``.
        """
        return SparseDensityFunction(self._ground, self.multiset_counts())

    def dense_support_function(self) -> SetFunction:
        """``s_B`` as a dense exact set function (small ``|S|`` only)."""
        return SetFunction.from_density(
            self._ground, self.multiset_counts(), exact=True
        )

    # ------------------------------------------------------------------
    def items_present(self) -> int:
        """Mask of items occurring in at least one basket."""
        mask = 0
        for basket in self._baskets:
            mask |= basket
        return mask

    def extended(self, more_baskets: Iterable) -> "BasketDatabase":
        """A new database with extra baskets appended."""
        extra = [
            b if isinstance(b, int) else self._ground.parse(b)
            for b in more_baskets
        ]
        return BasketDatabase(self._ground, self._baskets + tuple(extra))

    def stream_session(self, constraints: Iterable = (), config=None, **kwargs):
        """A :class:`repro.engine.StreamSession` seeded with this database.

        The session's density starts at this database's multiset counts
        ``d^B`` (Section 6.1), so its live value table *is* the support
        function -- basket inserts/deletes are then ``O(2^n)``-per-row
        density deltas with per-delta constraint monitoring, instead of
        support recounts over a rebuilt database.  Mining entry points
        (:func:`repro.fis.discovery.zero_set` and friends) consume the
        session state directly.

        ``config`` is the :class:`repro.engine.EngineConfig` the planner
        resolves the session from (with ``engine="auto"`` the session
        re-plans and promotes tiers online as the instance grows); the
        pre-planner ``backend=``/``shards=``/``workers=``/``durable=``
        kwargs still pass through, shimmed with a deprecation warning.
        ``config.durable`` (or the deprecated ``durable=<data dir>``)
        makes the session crash-proof and *reopenable*: the first open
        records this database's counts as the seed (fingerprinted),
        later opens on the same directory verify the seed still matches
        and then recover the streamed state on top of it -- so a grown
        instance survives restarts while staying pinned to its source
        database.
        """
        from repro.engine.stream import StreamSession

        return StreamSession(
            self._ground,
            constraints=constraints,
            density=self.multiset_counts(),
            config=config,
            _depth=1,
            **kwargs,
        )

    def sharded_context(
        self,
        constraints: Iterable = (),
        config=None,
        shards=_UNSET,
        workers=_UNSET,
        backend=_UNSET,
        **kwargs,
    ):
        """A :class:`repro.engine.ShardedEvalContext` over this database.

        The baskets are partitioned by itemset mask across the plan's
        shards (default: planner-resolved from the host CPU budget), so
        the per-shard densities are the multiset counts of disjoint
        sublists of ``B`` -- Section 6.1's additivity made literal.  The
        context's merged state is the support function ``s_B``;
        discovery and satisfaction machinery consume it directly, and a
        plan with ``workers > 1`` attaches a process pool for fanned-out
        evaluation.  ``config`` pins the knobs
        (:class:`repro.engine.EngineConfig`; ``engine`` is forced to
        ``"sharded"`` here); the pre-planner ``shards=``/``workers=``/
        ``backend=`` kwargs are deprecated shims.
        """
        from repro.engine.plan import (
            EngineConfig,
            Workload,
            build_context,
            default_planner,
            warn_deprecated_kwargs,
        )

        legacy = {
            name: value
            for name, value in (
                ("backend", backend),
                ("shards", shards),
                ("workers", workers),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise ValueError(
                    "sharded_context: pass config=EngineConfig(...) or "
                    f"the deprecated {', '.join(sorted(legacy))} kwargs, "
                    "not both"
                )
            warn_deprecated_kwargs(
                sorted(legacy), "BasketDatabase.sharded_context"
            )
            config = EngineConfig(
                engine="sharded",
                backend=legacy.get("backend", "exact"),
                shards=legacy.get("shards"),
                workers=legacy.get("workers"),
            )
        elif config is None:
            config = EngineConfig(engine="sharded", backend="exact")
        elif config.engine != "sharded":
            config = config.replace(engine="sharded")
        if "plan" in kwargs:  # pre-planner name for a custom ShardPlan
            kwargs["shard_plan"] = kwargs.pop("plan")
        for field in ("tol", "private_cache"):
            if field in kwargs:
                config = config.replace(**{field: kwargs.pop(field)})
        constraints = tuple(constraints)
        counts = self.multiset_counts()
        plan = default_planner().plan(
            Workload(
                n=self._ground.size,
                constraints=len(constraints),
                density_size=len(counts),
                streaming=True,
            ),
            config,
        )
        return build_context(
            plan,
            self._ground,
            density=counts,
            constraints=constraints,
            **kwargs,
        )
