"""Frequency functions -- the class ``positive(S)`` (Section 6).

The paper defines a *frequency function* as an ``f : 2^S -> R`` all of
whose differentials ``D_f^Y`` are nonnegative, and shows (via
Proposition 2.9, since every density value is itself a differential and
every differential is a sum of density values) that this is equivalent to
the density ``d_f`` being nonnegative everywhere.  Support functions are
exactly the frequency functions with *integer* densities, and every
frequency function with integer density is induced by a basket list --
the "induce a basket space" remark of Section 6 made executable by
:func:`induce_basket_database`.

On ``positive(S)`` the density-based and differential-based semantics of
Remark 3.6 coincide; :func:`semantics_agree_on` lets tests and benches
measure exactly that.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.constraint import DENSITY, DIFFERENTIAL, DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.setfunction import (
    DEFAULT_TOLERANCE,
    SetFunction,
    SparseDensityFunction,
)
from repro.core.differential import differential_value
from repro.errors import NotAFrequencyFunctionError
from repro.fis.baskets import BasketDatabase

__all__ = [
    "is_frequency_function",
    "is_support_function",
    "check_differentials_nonnegative",
    "induce_basket_database",
    "semantics_agree_on",
]

AnySetFunction = Union[SetFunction, SparseDensityFunction]


def is_frequency_function(f: AnySetFunction, tol: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``f`` is in ``positive(S)`` (nonnegative density)."""
    return f.is_nonnegative_density(tol)


def is_support_function(f: AnySetFunction, tol: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``f`` is in ``support(S)``.

    Support functions are the frequency functions whose density is a
    nonnegative *integer* at every subset (Remark 2.3 + Section 6.1:
    the density of ``s_B`` counts basket multiplicities).
    """
    for _, value in f.density_items():
        if value < -tol:
            return False
        if abs(value - round(value)) > tol:
            return False
    return True


def check_differentials_nonnegative(
    f: AnySetFunction,
    families: Iterable[SetFamily],
    tol: float = DEFAULT_TOLERANCE,
) -> bool:
    """Definition-level check: ``D_f^Y >= 0`` for the supplied families.

    The definition quantifies over *all* families; by the density
    equivalence it suffices to check densities, but tests use this
    routine on sampled families to confirm the equivalence empirically.
    Each family is checked with one batched ``O(n * 2^n)`` engine pass
    (all subsets at once) when the ground set is dense-capable; the
    scalar Definition 2.1 loop remains as the fallback.
    """
    ground = f.ground
    if ground.is_dense_capable():
        from repro.engine import batch, default_context

        backend = default_context().backend_for(f)
        for family in families:
            table = batch.batched_differential(f, family, backend)
            if not backend.all_nonnegative(table, tol):
                return False
        return True
    for family in families:
        for x in ground.all_masks():
            if differential_value(f, family, x) < -tol:
                return False
    return True


def induce_basket_database(
    f: AnySetFunction, tol: float = DEFAULT_TOLERANCE
) -> BasketDatabase:
    """The basket list whose support function is ``f``.

    Requires ``f`` to be a support function (nonnegative integer
    density); each subset ``U`` contributes ``d_f(U)`` copies of the
    basket ``U``.  Together with
    :meth:`~repro.fis.baskets.BasketDatabase.support_function` this is the
    paper's bijection between ``support(S)`` and basket spaces (up to
    basket order).
    """
    if not is_support_function(f, tol):
        raise NotAFrequencyFunctionError(
            "only nonnegative-integer-density functions are induced by baskets"
        )
    baskets = []
    for mask, value in f.density_items():
        baskets.extend([mask] * int(round(value)))
    return BasketDatabase(f.ground, sorted(baskets))


def semantics_agree_on(
    f: AnySetFunction,
    constraint: DifferentialConstraint,
    tol: float = DEFAULT_TOLERANCE,
) -> bool:
    """Whether density- and differential-based satisfaction coincide on
    ``f`` for ``constraint`` (always true on ``positive(S)``; Remark 3.6
    shows it can fail outside)."""
    by_density = constraint.satisfied_by(f, semantics=DENSITY, tol=tol)
    by_diff = constraint.satisfied_by(f, semantics=DIFFERENTIAL, tol=tol)
    return by_density == by_diff
