"""Frequency constraints and satisfiability (the Calders-Paredaens bridge).

The introduction contrasts the paper's differential constraints with the
*frequency constraints* ``k <= f(X) <= l`` of Calders and Paredaens, and
the conclusion proposes "more general differential constraints" that pin
density values to ranges rather than to zero.  This module supplies both
ends and their combination:

* :class:`FrequencyConstraint` -- ``k <= f(X) <= l`` on the function
  (support) side;
* :class:`GeneralizedDensityConstraint` -- ``lo <= d_f(U) <= hi`` for
  every ``U in L(X, Y)``; the paper's ``X -> Y`` is the ``lo = hi = 0``
  special case;
* :func:`measure_sat` -- joint satisfiability over ``positive(S)``
  (rational relaxation) or ``support(S)`` (integral), decided by linear
  programming over the density coordinates: by Remark 2.3 the map
  ``d -> f`` is linear and triangular, so ``f(X) = sum of d(U) over
  U superseteq X`` turns every frequency bound into one linear row, and
  density constraints are variable bounds.  Integral mode asks HiGHS for
  an integer point, whose basket database witness is returned via
  :func:`repro.fis.frequency.induce_basket_database`.

The LP view makes the FREQSAT connection exact for ``positive(S)``:
a frequency-constraint system is satisfiable by a frequency function iff
the LP is feasible (densities *are* the free coordinates), and by a
basket list iff the integer program is.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.lattice import iter_lattice
from repro.core.setfunction import DEFAULT_TOLERANCE, SetFunction

__all__ = [
    "FrequencyConstraint",
    "GeneralizedDensityConstraint",
    "measure_sat",
    "support_sat",
]


@dataclass(frozen=True)
class FrequencyConstraint:
    """``lower <= f(X) <= upper`` (Calders-Paredaens style).

    ``upper=None`` means unbounded above.  ``X`` is a mask; use
    :meth:`of` for label shorthand.
    """

    x_mask: int
    lower: float = 0.0
    upper: Optional[float] = None

    @classmethod
    def of(
        cls, ground: GroundSet, x, lower: float = 0.0, upper: Optional[float] = None
    ) -> "FrequencyConstraint":
        return cls(ground.parse(x), lower, upper)

    def satisfied_by(self, f, tol: float = DEFAULT_TOLERANCE) -> bool:
        value = f.value(self.x_mask)
        if value < self.lower - tol:
            return False
        if self.upper is not None and value > self.upper + tol:
            return False
        return True


@dataclass(frozen=True)
class GeneralizedDensityConstraint:
    """``lower <= d_f(U) <= upper`` for every ``U in L(X, Y)``.

    The conclusion's generalization: the classical differential
    constraint is :meth:`from_differential` (``lower = upper = 0``).
    """

    lhs_mask: int
    family: SetFamily
    lower: float = 0.0
    upper: Optional[float] = 0.0

    @classmethod
    def from_differential(
        cls, constraint: DifferentialConstraint
    ) -> "GeneralizedDensityConstraint":
        return cls(constraint.lhs, constraint.family, 0.0, 0.0)

    @classmethod
    def of(
        cls,
        ground: GroundSet,
        lhs,
        members: Sequence,
        lower: float = 0.0,
        upper: Optional[float] = 0.0,
    ) -> "GeneralizedDensityConstraint":
        family = SetFamily(ground, (ground.parse(m) for m in members))
        return cls(ground.parse(lhs), family, lower, upper)

    def region(self, ground: GroundSet) -> List[int]:
        """The lattice decomposition the bounds apply to."""
        return list(iter_lattice(self.lhs_mask, self.family, ground))

    def satisfied_by(self, f, tol: float = DEFAULT_TOLERANCE) -> bool:
        ground = f.ground
        for u in iter_lattice(self.lhs_mask, self.family, ground):
            value = f.density_value(u)
            if value < self.lower - tol:
                return False
            if self.upper is not None and value > self.upper + tol:
                return False
        return True


def _build_lp(
    ground: GroundSet,
    frequency_constraints: Sequence[FrequencyConstraint],
    density_constraints: Sequence[GeneralizedDensityConstraint],
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[float, Optional[float]]]]:
    size = 1 << ground.size
    rows: List[np.ndarray] = []
    rhs: List[float] = []

    for fc in frequency_constraints:
        ground._check_mask(fc.x_mask)
        indicator = np.zeros(size)
        for u in ground.iter_supersets(fc.x_mask):
            indicator[u] = 1.0
        if fc.upper is not None:
            rows.append(indicator)
            rhs.append(float(fc.upper))
        if fc.lower > 0:
            rows.append(-indicator)
            rhs.append(-float(fc.lower))

    bounds: List[Tuple[float, Optional[float]]] = [(0.0, None)] * size
    for dc in density_constraints:
        for u in dc.region(ground):
            lo, hi = bounds[u]
            lo = max(lo, float(dc.lower))
            if dc.upper is not None:
                hi = float(dc.upper) if hi is None else min(hi, float(dc.upper))
            bounds[u] = (lo, hi)

    matrix = np.vstack(rows) if rows else np.zeros((0, size))
    return matrix, np.asarray(rhs), bounds


def measure_sat(
    ground: GroundSet,
    frequency_constraints: Iterable[FrequencyConstraint] = (),
    constraints: Iterable[
        Union[DifferentialConstraint, GeneralizedDensityConstraint]
    ] = (),
    integral: bool = False,
) -> Optional[SetFunction]:
    """A frequency function satisfying all the constraints, or ``None``.

    ``constraints`` may mix plain differential constraints (treated as
    zero-density bounds) and generalized density constraints.  With
    ``integral=True`` the witness has integer density -- i.e. it is a
    support function, realizable as a basket list.

    Completeness: over ``positive(S)`` the density coordinates are free
    nonnegative reals, so LP feasibility is *equivalent* to
    satisfiability (``None`` is a proof of unsatisfiability, not a
    heuristic failure); likewise the integer program for ``support(S)``.
    """
    from scipy.optimize import linprog

    freq = list(frequency_constraints)
    dens: List[GeneralizedDensityConstraint] = []
    for c in constraints:
        if isinstance(c, DifferentialConstraint):
            dens.append(GeneralizedDensityConstraint.from_differential(c))
        else:
            dens.append(c)
    matrix, rhs, bounds = _build_lp(ground, freq, dens)
    for lo, hi in bounds:
        if hi is not None and lo > hi:
            return None
    size = 1 << ground.size
    result = linprog(
        c=np.zeros(size),
        A_ub=matrix if matrix.size else None,
        b_ub=rhs if matrix.size else None,
        bounds=bounds,
        method="highs",
        integrality=np.ones(size) if integral else None,
    )
    if not result.success:
        return None
    density = {
        mask: (round(v) if integral else v)
        for mask, v in enumerate(result.x)
        if abs(v) > 1e-9
    }
    witness = SetFunction.from_density(ground, density, exact=integral)
    return witness


def support_sat(
    ground: GroundSet,
    frequency_constraints: Iterable[FrequencyConstraint] = (),
    constraints: Iterable[
        Union[DifferentialConstraint, GeneralizedDensityConstraint]
    ] = (),
):
    """Like :func:`measure_sat` with ``integral=True``, returning the
    witness *basket database* (or ``None``)."""
    from repro.fis.frequency import induce_basket_database

    witness = measure_sat(
        ground, frequency_constraints, constraints, integral=True
    )
    if witness is None:
        return None
    return induce_basket_database(witness)
