"""The Apriori algorithm and the negative border (Section 6.1.1).

The paper positions Apriori [Agrawal-Srikant 1994] as the baseline
deduction machinery for the FIS problem: the monotonicity ("Apriori")
rule prunes every superset of an infrequent itemset, and the algorithm's
failed candidates are exactly the *negative border* -- the minimal
infrequent itemsets, a concise representation of all infrequent sets.

This module implements levelwise Apriori over
:class:`~repro.fis.baskets.BasketDatabase` with candidate generation by
prefix join and subset pruning, plus a brute-force miner used as the test
oracle.  The result object also reports how many support counts were
performed -- the cost currency of Section 6.1.1's deduction-vs-counting
discussion and of experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core import subsets as sb
from repro.core.ground import GroundSet
from repro.fis.baskets import BasketDatabase

__all__ = ["MiningResult", "apriori", "bruteforce_frequent", "negative_border_of"]


@dataclass(frozen=True)
class MiningResult:
    """Outcome of a frequent-itemset mining run.

    Attributes
    ----------
    frequent:
        ``{mask: support}`` for every frequent itemset.
    negative_border:
        ``{mask: support}`` for the minimal infrequent itemsets.
    kappa:
        The support threshold used.
    support_counts:
        Number of itemsets whose support was counted against the data.
    """

    frequent: Dict[int, int]
    negative_border: Dict[int, int]
    kappa: int
    support_counts: int

    def is_frequent(self, mask: int) -> bool:
        return mask in self.frequent

    def status_by_border(self, mask: int) -> bool:
        """Frequency status deduced from the negative border alone
        (monotonicity: infrequent iff some border set is contained)."""
        return not any(
            sb.is_subset(border, mask) for border in self.negative_border
        )

    def max_level(self) -> int:
        return max((sb.popcount(m) for m in self.frequent), default=0)


def apriori(db: BasketDatabase, kappa: int) -> MiningResult:
    """Levelwise Apriori: returns frequent sets, border, and count cost."""
    ground = db.ground
    frequent: Dict[int, int] = {}
    border: Dict[int, int] = {}
    counts = 0

    # level 0: the empty itemset (support = |B|)
    empty_support = len(db)
    counts += 1
    if empty_support >= kappa:
        frequent[0] = empty_support
    else:
        border[0] = empty_support
        return MiningResult(frequent, border, kappa, counts)

    # level 1: single items
    current: List[int] = []
    for bit in range(ground.size):
        mask = 1 << bit
        support = db.support(mask)
        counts += 1
        if support >= kappa:
            frequent[mask] = support
            current.append(mask)
        else:
            border[mask] = support

    level = 1
    while current:
        candidates = _generate_candidates(current, set(current), level)
        level += 1
        next_level: List[int] = []
        for mask in candidates:
            support = db.support(mask)
            counts += 1
            if support >= kappa:
                frequent[mask] = support
                next_level.append(mask)
            else:
                border[mask] = support
        current = next_level
    return MiningResult(frequent, border, kappa, counts)


def _generate_candidates(
    level_sets: List[int], level_lookup: Set[int], level: int
) -> List[int]:
    """Join + prune candidate generation.

    Joins pairs of frequent ``level``-sets whose union has ``level + 1``
    elements, then prunes candidates having an infrequent ``level``-subset.
    """
    unions: Set[int] = set()
    sorted_sets = sorted(level_sets)
    for i, a in enumerate(sorted_sets):
        for b in sorted_sets[i + 1 :]:
            u = a | b
            if sb.popcount(u) == level + 1:
                unions.add(u)
    candidates = []
    for u in sorted(unions):
        if all(u & ~bit in level_lookup for bit in sb.iter_singletons(u)):
            candidates.append(u)
    return candidates


def bruteforce_frequent(db: BasketDatabase, kappa: int) -> Dict[int, int]:
    """All frequent itemsets by exhaustive enumeration (test oracle)."""
    out = {}
    for mask in db.ground.all_masks():
        support = db.support(mask)
        if support >= kappa:
            out[mask] = support
    return out


def negative_border_of(frequent: Dict[int, int], ground: GroundSet) -> Set[int]:
    """Minimal non-frequent itemsets given the (downward-closed) frequent
    collection -- computed directly from the definition (test oracle)."""
    border: Set[int] = set()
    for mask in ground.all_masks():
        if mask in frequent:
            continue
        if all(
            (mask & ~bit) in frequent for bit in sb.iter_singletons(mask)
        ):
            border.add(mask)
    return border
