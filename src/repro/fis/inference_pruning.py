"""Inference over disjunctive itemsets (end of Section 6).

The paper closes Section 6 by observing that the Section 4 inference
system licenses *extra* reasoning about disjunctive sets: if
``{A,B,D}`` and ``{B,C,D}`` are disjunctive on account of the rules
``A -> {B,D}`` and ``B -> {C,D}``, transitivity yields ``A -> {C,D}``,
so ``{A,C,D}`` is disjunctive *without storing any rule for it* -- a
representation can drop it.  This module makes that executable:

* :func:`is_derivably_disjunctive` -- whether a set ``W`` is certified
  disjunctive by the *closure* of a rule set under implication.  By the
  singleton-reduction argument (see
  :mod:`repro.fis.disjunctive_free`), it suffices to test, for each
  ``X' subseteq W``, the weakest confined constraint
  ``X' -> {{y} | y in W - X'}``; the check is an implication query.
* :func:`prune_redundant_rules` -- greedy removal of rules implied by the
  remaining ones (the representation-shrinking step).
* :func:`derivable_beyond_support_sets` -- the sets the closure certifies
  that no stored rule's support set reaches directly; the quantity
  experiment E11 reports.

The paper also notes that deciding disjunctiveness *according to a rule
set* sits in Sigma-2; the implementation is accordingly exponential and
meant for the moderate sizes of the experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.implication import decide
from repro.fis.disjunctive import DisjunctiveConstraint

__all__ = [
    "is_derivably_disjunctive",
    "prune_redundant_rules",
    "support_set_upclosure",
    "derivable_beyond_support_sets",
]


def _to_constraint_set(
    rules: Iterable[DisjunctiveConstraint], ground: GroundSet
) -> ConstraintSet:
    return ConstraintSet(ground, (r.to_differential() for r in rules))


def is_derivably_disjunctive(
    rules: Iterable[DisjunctiveConstraint],
    w_mask: int,
    ground: GroundSet,
    method: str = "auto",
) -> bool:
    """Whether the rule closure certifies ``W`` as a disjunctive set.

    ``W`` is derivably disjunctive iff some nontrivial constraint with
    support set inside ``W`` is implied; for each left-hand side
    ``X' subseteq W`` the all-singleton constraint over ``W - X'`` is the
    weakest such (smallest lattice decomposition), so testing those
    ``2^|W|`` implication queries is complete.
    """
    cset = _to_constraint_set(rules, ground)
    for lhs in sb.iter_subsets(w_mask):
        family = SetFamily.singletons_of(ground, w_mask & ~lhs)
        candidate = DifferentialConstraint(ground, lhs, family)
        if candidate.is_trivial:
            continue
        if decide(cset, candidate, method=method):
            return True
    return False


def prune_redundant_rules(
    rules: Iterable[DisjunctiveConstraint], ground: GroundSet
) -> List[DisjunctiveConstraint]:
    """Drop rules implied by the remaining ones (order: last added first).

    The surviving list has the same implication closure, hence certifies
    exactly the same derivably-disjunctive sets.
    """
    kept = list(rules)
    for rule in list(reversed(kept)):
        rest = [r for r in kept if r != rule]
        cset = _to_constraint_set(rest, ground)
        if decide(cset, rule.to_differential()):
            kept = rest
    return kept


def support_set_upclosure(
    rules: Iterable[DisjunctiveConstraint], ground: GroundSet
) -> Set[int]:
    """Sets marked disjunctive *directly*: supersets of some stored
    rule's support set (the augmentation-only reasoning already present
    in Bykowski-Rigotti)."""
    out: Set[int] = set()
    supports = [r.support_set() for r in rules]
    for mask in ground.all_masks():
        if any(sb.is_subset(s, mask) for s in supports):
            out.add(mask)
    return out


def derivable_beyond_support_sets(
    rules: Iterable[DisjunctiveConstraint], ground: GroundSet
) -> Set[int]:
    """Sets certified only by *inference* (the paper's ``{A,C,D}``
    phenomenon): derivably disjunctive but above no stored support set."""
    rules = list(rules)
    direct = support_set_upclosure(rules, ground)
    extra: Set[int] = set()
    for mask in ground.all_masks():
        if mask in direct:
            continue
        if is_derivably_disjunctive(rules, mask, ground):
            extra.add(mask)
    return extra
