"""Discovering the differential theory of a function or basket database.

The satisfaction of every differential constraint by a fixed ``f`` is
determined by the *zero set* ``Z(f) = {U : d_f(U) = 0}`` (Definition 3.1:
``f |= X -> Y`` iff ``L(X, Y) subseteq Z(f)``).  The set
``{atom(U) | U in Z(f)}`` therefore axiomatizes the complete theory of
``f`` (Remark 4.5), and redundancy elimination yields compact covers --
the differential-constraint analogue of functional-dependency discovery.

For basket databases the module also surfaces the *minimal disjunctive
rules* (Section 6.1.1's mining view): inclusion-minimal satisfied rules
``X' =>disj {singletons of T}``, which are the irredundant certificates
of the disjunctive itemsets.

Everything here is exponential in ``|S|`` (the theory itself is); the
intended regime is schema-sized ground sets, like FD discovery.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Union

from repro.core import subsets as sb
from repro.core.constraint import DifferentialConstraint
from repro.core.constraint_set import ConstraintSet
from repro.core.decomposition import atom
from repro.core.family import SetFamily
from repro.core.ground import GroundSet
from repro.core.lattice import iter_lattice
from repro.core.setfunction import (
    DEFAULT_TOLERANCE,
    SetFunction,
    SparseDensityFunction,
)
from repro.fis.baskets import BasketDatabase
from repro.fis.disjunctive import DisjunctiveConstraint
from repro.fis.disjunctive_free import holds_singleton_rule

__all__ = [
    "zero_set",
    "theory_of",
    "discover_cover",
    "minimal_disjunctive_rules",
]

AnySetFunction = Union[SetFunction, SparseDensityFunction]


def _as_function(source, config=None):
    """Unwrap mining sources: stream sessions expose their live context
    (which itself implements the set-function protocol).  Incremental
    and sharded contexts (:class:`repro.engine.ShardedEvalContext`)
    pass through directly -- discovery over a partitioned instance
    reads the merged live state, so ``db.sharded_context()`` mines
    without materializing an unsharded copy.

    ``config`` (an :class:`repro.engine.EngineConfig`) routes a basket
    database through the engine planner instead of the plain sparse
    support function: the planner picks the tier for the database's
    size and the mining runs over the resulting live context (with
    cached, delta-invalidated zero sets) -- the single
    :func:`repro.engine.plan.build_context` factory is the only place
    the context is constructed.
    """
    from repro.engine.stream import StreamSession

    if isinstance(source, StreamSession):
        return source.context
    if isinstance(source, BasketDatabase):
        if config is not None:
            from repro.engine.plan import (
                Workload,
                build_context,
                default_planner,
            )

            counts = source.multiset_counts()
            plan = default_planner().plan(
                Workload(
                    n=source.ground.size,
                    density_size=len(counts),
                    streaming=True,
                ),
                config,
            )
            return build_context(plan, source.ground, density=counts)
        return source.support_function()
    return source


def zero_set(f, tol: float = DEFAULT_TOLERANCE, config=None) -> Set[int]:
    """``Z(f)``: the subsets where the density vanishes.

    Accepts set functions, basket databases, stream sessions, and
    incremental contexts.  Incremental state answers from its cached
    zero set -- invalidated only when a density entry actually crosses
    zero, so discovery over a growing instance reuses work across
    deltas instead of rescanning per query.  ``config`` routes a basket
    database through the engine planner (see :func:`_as_function`).
    """
    f = _as_function(f, config)
    cached = getattr(f, "zero_set", None)
    if cached is not None:
        return set(cached(tol))
    ground = f.ground
    nonzero = {
        mask for mask, value in f.density_items() if abs(value) > tol
    }
    return {mask for mask in ground.all_masks() if mask not in nonzero}


def theory_of(f, tol: float = DEFAULT_TOLERANCE, config=None) -> ConstraintSet:
    """The atomic axiomatization of all constraints ``f`` satisfies.

    Returns ``{atom(U) | U in Z(f)}``; a constraint is satisfied by ``f``
    iff this set implies it (tested property).  Accepts the same sources
    (and the same planner ``config`` routing) as :func:`zero_set`.
    """
    f = _as_function(f, config)
    ground = f.ground
    return ConstraintSet(
        ground, (atom(ground, u) for u in sorted(zero_set(f, tol)))
    )


def discover_cover(
    source: Union[AnySetFunction, BasketDatabase],
    tol: float = DEFAULT_TOLERANCE,
    config=None,
) -> ConstraintSet:
    """A compact cover of the source's differential theory.

    Accepts a set function, a basket database (whose support function is
    used -- or, with a planner ``config``, a live context built through
    :func:`repro.engine.plan.build_context`), or a stream session /
    incremental context (whose live density
    state is read in place).  Atoms are pairwise irredundant (each covers exactly one
    zero), so compression requires *growing* constraints instead of
    pruning them: starting from the atom of an uncovered zero, the
    left-hand side is shrunk and family members dropped as long as the
    lattice decomposition stays inside the zero set ``Z(f)`` -- every
    enlargement keeps the constraint satisfied while covering more zeros.
    Greedy set cover over the grown constraints, followed by redundancy
    pruning, yields a set equivalent to the full theory (tested) that is
    typically far smaller than the atomic axiomatization.
    """
    f = _as_function(source, config)
    ground = f.ground
    zeros = zero_set(f, tol)
    remaining = set(zeros)
    grown: List[DifferentialConstraint] = []
    while remaining:
        seed = min(remaining)
        constraint = _grow_constraint(ground, seed, zeros)
        grown.append(constraint)
        remaining -= constraint.lattice_set()
    return ConstraintSet(ground, grown).minimal_cover()


def _grow_constraint(
    ground: GroundSet, seed: int, zeros: Set[int]
) -> DifferentialConstraint:
    """Maximally weaken ``atom(seed)`` while ``L`` stays inside ``zeros``.

    Dropping a family member or shrinking the left-hand side both enlarge
    the lattice decomposition; each candidate enlargement is accepted
    when the new ``L`` is still all-zero.  The loop alternates the two
    moves until neither applies.
    """

    def lattice_ok(lhs: int, family: SetFamily) -> bool:
        return all(u in zeros for u in iter_lattice(lhs, family, ground))

    lhs = seed
    members = list(sb.iter_singletons(ground.complement(seed)))
    changed = True
    while changed:
        changed = False
        for member in list(members):
            trial = [m for m in members if m != member]
            if lattice_ok(lhs, SetFamily(ground, trial)):
                members = trial
                changed = True
        for bit in list(sb.iter_singletons(lhs)):
            trial_lhs = lhs & ~bit
            if lattice_ok(trial_lhs, SetFamily(ground, members)):
                lhs = trial_lhs
                changed = True
    return DifferentialConstraint(ground, lhs, SetFamily(ground, members))


def minimal_disjunctive_rules(
    db: BasketDatabase, max_rhs: Optional[int] = None
) -> List[DisjunctiveConstraint]:
    """Inclusion-minimal satisfied singleton rules of ``db``.

    A rule ``X' =>disj {singletons of T}`` is *minimal* when no satisfied
    rule has a smaller left-hand side with the same right side, nor a
    proper subset of its right side with the same left side (smaller
    rules are strictly stronger: shrinking ``T`` shrinks the allowed
    union, and shrinking ``X'``... is handled by the augmentation order).
    Minimal rules generate all satisfied singleton rules under
    augmentation/addition, so they are the natural stored certificates.
    """
    ground = db.ground
    universe = ground.universe_mask
    found: List[DisjunctiveConstraint] = []
    satisfied: Set[tuple] = set()

    def dominated(lhs: int, rhs: int) -> bool:
        return any(
            sb.is_subset(prev_lhs, lhs) and sb.is_subset(prev_rhs, rhs)
            for prev_lhs, prev_rhs in satisfied
        )

    # enumerate right sides by size, left sides by size: minimal first
    rhs_candidates = sorted(
        (m for m in range(1, universe + 1)),
        key=lambda m: (sb.popcount(m), m),
    )
    for rhs in rhs_candidates:
        if max_rhs is not None and sb.popcount(rhs) > max_rhs:
            continue
        lhs_candidates = sorted(
            sb.iter_subsets(universe & ~rhs),
            key=lambda m: (sb.popcount(m), m),
        )
        for lhs in lhs_candidates:
            if dominated(lhs, rhs):
                continue
            if holds_singleton_rule(db, lhs, rhs):
                satisfied.add((lhs, rhs))
                found.append(
                    DisjunctiveConstraint(
                        ground, lhs, SetFamily.singletons_of(ground, rhs)
                    )
                )
    return found
