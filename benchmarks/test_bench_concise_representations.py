"""E7 -- Section 6.1.1: concise representations of frequent itemsets.

The paper motivates differential constraints with the Bykowski-Rigotti
result: on correlated data, the frequent disjunctive-free sets plus
their border form a *much* smaller lossless representation than the full
frequent collection.  This bench regenerates that shape on three seeded
workloads (sparse independent, dense independent, correlated templates)
across a threshold sweep, reporting::

    |Frequent|   |NegBorder|   |FDFree|+|Bd-|   ratio   counts(Apriori vs concise)

Expected shape (asserted): on the correlated workload the concise
representation is a small fraction of the frequent collection and the
miner performs no more support counts than Apriori; on sparse
uncorrelated data the two are comparable (the representation cannot
lose, but has little to win).  Losslessness is verified exhaustively on
a down-scaled copy of each workload.
"""

import random

import pytest

from repro.core import GroundSet
from repro.fis import (
    apriori,
    correlated_baskets,
    mine_concise,
    random_baskets,
    verify_lossless,
)

from _harness import format_table, report

GROUND = GroundSet("ABCDEFGHIJKL")  # |S| = 12
SMALL_GROUND = GroundSet("ABCDEF")


def _workloads(rng):
    return {
        "sparse": random_baskets(GROUND, 400, 0.12, rng),
        "dense": random_baskets(GROUND, 400, 0.5, rng),
        "correlated": correlated_baskets(GROUND, 400, 3, 8, 0.02, 0.01, rng),
    }


def _small_workloads(rng):
    return {
        "sparse": random_baskets(SMALL_GROUND, 80, 0.2, rng),
        "dense": random_baskets(SMALL_GROUND, 80, 0.55, rng),
        "correlated": correlated_baskets(SMALL_GROUND, 80, 2, 4, 0.05, 0.02, rng),
    }


class TestConciseRepresentations:
    def test_representation_size_table(self, benchmark):
        rng = random.Random(707)
        rows = []
        correlated_ratios = []
        for name, db in _workloads(rng).items():
            for kappa in (20, 70, 110):
                full = apriori(db, kappa)
                rep = mine_concise(db, kappa, max_rhs=2)
                n_freq = len(full.frequent)
                n_border = len(full.negative_border)
                ratio = rep.size() / max(1, n_freq + n_border)
                rows.append(
                    (
                        name,
                        kappa,
                        n_freq,
                        n_border,
                        len(rep.elements),
                        len(rep.border),
                        f"{ratio:.2f}",
                        full.support_counts,
                    )
                )
                if name == "correlated":
                    correlated_ratios.append(rep.size() / max(1, n_freq))
        report(
            "E7_concise_representations",
            "(FDFree, Bd-) vs full frequent collection (|S|=12, 400 baskets)",
            format_table(
                [
                    "workload", "kappa", "|Freq|", "|NegBd|", "|FDFree|",
                    "|Bd-|", "size ratio", "Apriori counts",
                ],
                rows,
            ),
        )
        # the paper's shape: concise representation wins on correlated data
        assert min(correlated_ratios) < 0.5

        db = _workloads(random.Random(707))["correlated"]
        size = benchmark(lambda: mine_concise(db, 70, max_rhs=2).size())
        assert size > 0

    def test_losslessness_verified_exhaustively(self, benchmark):
        """Down-scaled workloads (|S|=6) verified over all 2^|S| sets."""
        rng = random.Random(708)
        checked = 0
        for name, db in _small_workloads(rng).items():
            for kappa in (4, 12):
                rep = mine_concise(db, kappa, max_rhs=2)
                assert verify_lossless(db, rep), (name, kappa)
                checked += 1
        assert checked == 6

        db = _small_workloads(random.Random(708))["correlated"]
        rep = mine_concise(db, 4, max_rhs=2)
        assert benchmark(lambda: verify_lossless(db, rep))

    def test_rule_width_ablation(self, benchmark):
        """Wider disjunctive rules can only shrink FDFree (Kryszkiewicz-
        Gajek generalization; the paper's Def 6.1 allows arbitrary
        right-hand sides)."""
        rng = random.Random(709)
        db = correlated_baskets(GROUND, 300, 3, 7, 0.05, 0.02, rng)
        kappa = 20
        sizes = {}
        for max_rhs in (1, 2, 3):
            rep = mine_concise(db, kappa, max_rhs)
            sizes[max_rhs] = len(rep.elements)
        report(
            "E7b_rule_width_ablation",
            "|FDFree| as the rule-width budget grows (correlated, kappa=20)",
            format_table(
                ["max rule width", "|FDFree|"],
                [(k, v) for k, v in sorted(sizes.items())],
            ),
        )
        assert sizes[2] <= sizes[1]
        assert sizes[3] <= sizes[2]

        assert benchmark(lambda: mine_concise(db, kappa, 1).size()) > 0
