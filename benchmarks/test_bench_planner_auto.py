"""E19 -- planner-auto vs hand-tuned tiers, and plan-decision overhead.

Three workload shapes mirror the engine benchmarks: E5's implication
queries (one constraint set, many ``decide`` calls), E16's streaming
transactions (delta-maintained constraint monitoring), and E17's
scale-out evaluation loop (delta bursts followed by verdict + support
probes over a loaded instance).  For each shape, every hand-tunable
configuration a user could pin is timed, then ``engine=auto`` (the
planner's choice for the measured workload on this host) is timed the
same way.

Acceptance (asserted):

* the planner itself is free: **< 1 ms per plan()** decision;
* ``auto`` achieves **>= 0.9x the throughput of the best hand-tuned
  configuration** on every shape (one remeasure absorbs scheduler
  noise -- auto resolves to one of the candidate configurations, so
  the true ratio is ~1.0).

Row keys are host-independent (fixed candidate labels; the auto rows
record which tier the planner picked on the fixed workload descriptors,
which do not depend on the measuring host's CPU count).
"""

from __future__ import annotations

import random
import time

from repro.core import ConstraintSet, GroundSet, decide
from repro.engine import (
    EngineConfig,
    EvalContext,
    StreamSession,
    Workload,
    default_planner,
)
from repro.instances import random_constraint

from _harness import format_table, report

N_QUERY = 12
N_STREAM = 12
N_SCALE = 14
QUERIES = 60
STREAM_TXS = 250
SCALE_ROUNDS = 40
SCALE_SEED_ROWS = 2_000
PLAN_CALLS = 2_000
FLOOR = 0.9


def _best_of(fn, rounds=5):
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _query_workload():
    from repro.core import DifferentialConstraint, SetFamily

    rng = random.Random(1900)
    ground = GroundSet([f"x{i}" for i in range(N_QUERY)])
    # two-member families keep the set out of the FD fragment (general
    # differential constraints, the E5 regime): auto dispatches every
    # query to the memoized engine decider, same as the hand-tuned pin
    cset = ConstraintSet(
        ground,
        [
            random_constraint(rng, ground, max_members=2, min_members=2)
            for _ in range(6)
        ],
    )
    # small left-hand sides make L(X, Y) exponentially large -- the E5
    # regime where table containment beats scalar lattice enumeration
    targets = []
    for _ in range(QUERIES):
        lhs = 1 << rng.randrange(N_QUERY) if rng.random() < 0.8 else 0
        members = [
            1 << b
            for b in rng.sample(
                [i for i in range(N_QUERY) if not (lhs >> i) & 1], 2
            )
        ]
        targets.append(
            DifferentialConstraint(ground, lhs, SetFamily(ground, members))
        )
    return ground, cset, targets


def _time_queries(cset, targets, method, repeats=10):
    context = EvalContext(private_cache=True)  # no cross-candidate reuse
    decide(cset, targets[0], method=method, context=context)  # warm caches

    def run():
        for _ in range(repeats):
            for target in targets:
                decide(cset, target, method=method, context=context)

    return QUERIES * repeats / _best_of(run)


def _stream_ops(n, txs, seed):
    rng = random.Random(seed)
    return [
        [(rng.randrange(1 << n), rng.choice((1, 1, 1, -1))) for _ in range(3)]
        for _ in range(txs)
    ]


def _time_stream(ground, constraints, transactions, config):
    def run():
        session = StreamSession(ground, constraints, config=config)
        for tx in transactions:
            session.apply(tx)
        session.close()

    return len(transactions) / _best_of(run)


def _time_scale(ground, constraints, seed_density, bursts, probes, config):
    session = StreamSession(
        ground, constraints, density=dict(seed_density), config=config
    )

    def run():
        for burst in bursts:
            session.apply(burst)
            session.violated_constraints()
            for mask in probes:
                session.value(mask)

    throughput = len(bursts) / _best_of(run)
    session.close()
    return throughput


class TestPlannerAuto:
    def test_auto_within_floor_of_best_hand_tuned(self, benchmark):
        planner = default_planner()
        rows = []
        ratios = {}

        # --- planner decision overhead --------------------------------
        workloads = [
            Workload(n=N_QUERY, constraints=6, queries=QUERIES),
            Workload(n=N_STREAM, constraints=4, streaming=True,
                     delta_rate=3.0, density_size=500),
            Workload(n=N_SCALE, constraints=4, streaming=True,
                     delta_rate=8.0, density_size=SCALE_SEED_ROWS),
        ]
        t0 = time.perf_counter()
        for _ in range(PLAN_CALLS):
            for workload in workloads:
                planner.plan(workload)
        per_plan = (time.perf_counter() - t0) / (PLAN_CALLS * len(workloads))
        assert per_plan < 1e-3, f"plan() took {per_plan * 1e6:.1f} us"
        rows.append(
            ("plan-overhead", "auto", "us/plan", f"{per_plan * 1e6:.2f}")
        )

        # --- E5 shape: implication queries ----------------------------
        ground, cset, targets = _query_workload()
        auto_method, _ = planner.decide_method(ground.size)
        # scalar methods do ~ms of real work per pass (one repeat is a
        # stable measurement); the memoized engine path answers in us,
        # so it is looped up to comparable wall time
        e5 = {
            "engine": _time_queries(cset, targets, "engine", repeats=10),
            "lattice": _time_queries(cset, targets, "lattice", repeats=1),
            "sat": _time_queries(cset, targets, "sat", repeats=1),
        }
        best_method = max(e5, key=e5.get)
        best_repeats = 10 if best_method == "engine" else 1
        self._emit(
            rows, ratios, "E5-implication", "q/s", e5,
            _time_queries(cset, targets, "auto", repeats=10),
            f"auto->{auto_method}",
            lambda: _time_queries(cset, targets, "auto", repeats=10),
            lambda: _time_queries(
                cset, targets, best_method, repeats=best_repeats
            ),
        )

        # --- E16 shape: streaming transactions ------------------------
        s_ground = GroundSet([f"x{i}" for i in range(N_STREAM)])
        rng = random.Random(1601)
        s_constraints = [
            random_constraint(rng, s_ground, max_members=2, min_members=1)
            for _ in range(4)
        ]
        transactions = _stream_ops(N_STREAM, STREAM_TXS, 1602)
        e16_configs = {
            "incremental-exact": EngineConfig(
                engine="incremental", backend="exact"
            ),
            "incremental-float": EngineConfig(
                engine="incremental", backend="float"
            ),
        }
        e16 = {
            label: _time_stream(s_ground, s_constraints, transactions, cfg)
            for label, cfg in e16_configs.items()
        }
        best_stream = max(e16, key=e16.get)
        auto_plan = planner.plan(workloads[1])
        self._emit(
            rows, ratios, "E16-streaming", "tx/s", e16,
            _time_stream(
                s_ground, s_constraints, transactions,
                EngineConfig(engine="auto"),
            ),
            f"auto->{auto_plan.tier}/{auto_plan.backend}",
            lambda: _time_stream(
                s_ground, s_constraints, transactions,
                EngineConfig(engine="auto"),
            ),
            lambda: _time_stream(
                s_ground, s_constraints, transactions,
                e16_configs[best_stream],
            ),
        )

        # --- E17 shape: delta bursts + verdict/probe reads ------------
        c_ground = GroundSet([f"x{i}" for i in range(N_SCALE)])
        rng = random.Random(1701)
        c_constraints = [
            random_constraint(rng, c_ground, max_members=2, min_members=1)
            for _ in range(4)
        ]
        seed = {}
        for _ in range(SCALE_SEED_ROWS):
            mask = rng.randrange(1 << N_SCALE)
            seed[mask] = seed.get(mask, 0) + 1
        bursts = _stream_ops(N_SCALE, SCALE_ROUNDS, 1702)
        probes = [rng.randrange(1 << N_SCALE) for _ in range(4)]
        e17_configs = {
            "incremental": EngineConfig(
                engine="incremental", backend="float"
            ),
            "sharded-K2": EngineConfig(
                engine="sharded", backend="float", shards=2, workers=1
            ),
        }
        e17 = {
            label: _time_scale(
                c_ground, c_constraints, seed, bursts, probes, cfg
            )
            for label, cfg in e17_configs.items()
        }
        best_scale = max(e17, key=e17.get)
        # the planner's decision for this shape's descriptor is
        # host-independent: the seed density sits below the fan-out bar,
        # so auto stays incremental on every host
        auto_plan = planner.plan(workloads[2])
        auto_cfg = EngineConfig(engine="auto", backend="float")
        self._emit(
            rows, ratios, "E17-scaleout", "rounds/s", e17,
            _time_scale(
                c_ground, c_constraints, seed, bursts, probes, auto_cfg
            ),
            f"auto->{auto_plan.tier}",
            lambda: _time_scale(
                c_ground, c_constraints, seed, bursts, probes, auto_cfg
            ),
            lambda: _time_scale(
                c_ground, c_constraints, seed, bursts, probes,
                e17_configs[best_scale],
            ),
        )

        # --- acceptance: auto within the floor everywhere -------------
        retried = []
        for shape, (ratio, rerun) in list(ratios.items()):
            for _ in range(2):
                if ratio >= FLOOR:
                    break
                # a remeasure absorbs scheduler noise (auto resolves to
                # one of the candidate configs, so the true ratio is ~1)
                ratio = rerun()
                if shape not in retried:
                    retried.append(shape)
            assert ratio >= FLOOR, (
                f"{shape}: auto reached only {ratio:.2f}x of the best "
                f"hand-tuned configuration (floor {FLOOR}x)"
            )

        lines = format_table(
            ("workload", "config", "metric", "value"), rows
        )
        lines.append(
            f"acceptance floor (auto vs best hand-tuned): {FLOOR}x, met on "
            f"all {len(ratios)} shapes"
            + (f" (remeasured: {', '.join(retried)})" if retried else "")
        )
        report(
            "E19_planner_auto",
            "engine=auto vs hand-tuned tiers (planner cost model)",
            lines,
        )
        benchmark(lambda: planner.plan(workloads[0]))

    @staticmethod
    def _emit(
        rows, ratios, shape, metric, hand_tuned, auto_thr, auto_label,
        measure_auto, measure_best,
    ):
        for label, thr in sorted(hand_tuned.items()):
            rows.append((shape, f"{label}(hand)", metric, f"{thr:.1f}"))
        rows.append((shape, auto_label, metric, f"{auto_thr:.1f}"))
        best = max(hand_tuned.values())
        rows.append((shape, "auto/best", "ratio", f"{auto_thr / best:.2f}x"))

        def remeasure():
            return measure_auto() / measure_best()

        ratios[shape] = (auto_thr / best, remeasure)
