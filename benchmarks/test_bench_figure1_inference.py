"""E1 -- Figure 1: the sound and complete inference system.

Regenerates the executable content of Figure 1: on randomized instance
sweeps, derivability (the constructive Theorem 4.8 engine producing
machine-checked Figure-1-only proofs) agrees exactly with semantic
implication (Theorem 3.5 lattice containment) and with the DPLL decider.
Also reports derivation-size statistics (macro vs expanded proofs).
"""

import random

import pytest

from repro.core import GroundSet, check_proof, derive
from repro.core.implication import implies_lattice, implies_sat
from repro.errors import NotImpliedError
from repro.instances import random_constraint, random_constraint_set

from _harness import format_table, report


def _sweep(ground, n_instances, seed):
    rng = random.Random(seed)
    implied = refuted = 0
    macro_sizes = []
    primitive_sizes = []
    for _ in range(n_instances):
        cset = random_constraint_set(
            rng, ground, rng.randint(1, 4), max_members=3
        )
        target = random_constraint(rng, ground, max_members=3)
        semantic = implies_lattice(cset, target)
        assert implies_sat(cset, target) == semantic
        if semantic:
            implied += 1
            macro = derive(cset, target, allow_derived=True, check=False)
            full = derive(cset, target, allow_derived=False, check=False)
            check_proof(full, cset.constraints, allow_derived=False)
            assert macro.conclusion == target == full.conclusion
            macro_sizes.append(macro.size())
            primitive_sizes.append(full.size())
        else:
            refuted += 1
            with pytest.raises(NotImpliedError):
                derive(cset, target)
    return implied, refuted, macro_sizes, primitive_sizes


class TestFigure1:
    def test_soundness_and_completeness_sweep(self, benchmark):
        ground = GroundSet("ABCD")
        implied, refuted, macro, primitive = _sweep(ground, 250, seed=101)
        assert implied > 30 and refuted > 30

        # and a second ground-set size for the table
        ground5 = GroundSet("ABCDE")
        implied5, refuted5, macro5, primitive5 = _sweep(ground5, 120, seed=102)

        rows = [
            (
                4, implied + refuted, implied, refuted,
                f"{sum(macro) / len(macro):.1f}",
                f"{sum(primitive) / len(primitive):.1f}",
                max(primitive),
            ),
            (
                5, implied5 + refuted5, implied5, refuted5,
                f"{sum(macro5) / len(macro5):.1f}",
                f"{sum(primitive5) / len(primitive5):.1f}",
                max(primitive5),
            ),
        ]
        report(
            "E1_figure1_inference",
            "|- agrees with |= on every instance (Figure 1 sound+complete)",
            format_table(
                [
                    "|S|", "instances", "implied(derived+checked)",
                    "refuted", "avg proof (macro)", "avg proof (Fig-1)",
                    "max proof",
                ],
                rows,
            ),
        )

        # benchmark: one representative full derivation, checked
        rng = random.Random(7)
        while True:
            cset = random_constraint_set(rng, ground, 3, max_members=2)
            target = random_constraint(rng, ground, max_members=2)
            if not target.is_trivial and implies_lattice(cset, target) \
                    and target not in cset:
                break

        def derive_and_check():
            proof = derive(cset, target, allow_derived=False, check=False)
            check_proof(proof, cset.constraints, allow_derived=False)
            return proof.size()

        size = benchmark(derive_and_check)
        assert size >= 1

    def test_derivation_engine_positive_instances(self, benchmark):
        """Derivations on planted implied pairs (atoms mode) at |S|=5."""
        from repro.instances import random_implied_pair

        ground = GroundSet("ABCDE")
        rng = random.Random(55)
        pairs = [random_implied_pair(rng, ground, max_members=2) for _ in range(10)]

        def derive_all():
            total = 0
            for cset, target in pairs:
                total += derive(cset, target, check=False).size()
            return total

        total = benchmark(derive_all)
        assert total > 0
