"""E12 -- implementation ablations for the design choices in DESIGN.md.

Three pairings, each timing the chosen implementation against the naive
alternative it replaced (agreement asserted first):

* lattice enumeration: closed-form membership filter vs the literal
  Definition 2.6 union-of-intervals over all witness sets;
* density computation: the O(n 2^n) butterfly vs the O(4^n) double sum;
* support counting: vertical-bitmap intersection vs per-basket subset
  scans.
"""

import random
import time

import pytest

from repro.core import GroundSet, SetFunction
from repro.core import subsets as sb
from repro.core import transforms as tr
from repro.core.lattice import iter_lattice, iter_lattice_by_witnesses
from repro.fis import random_baskets
from repro.instances import random_family, random_mask

from _harness import format_table, report


class TestAblations:
    def test_lattice_closed_form_vs_witness_union(self, benchmark):
        ground = GroundSet("ABCDEFGH")
        rng = random.Random(1212)
        cases = [
            (random_mask(rng, ground, 0.25), random_family(rng, ground, 3, 1))
            for _ in range(30)
        ]
        for lhs, fam in cases:
            assert set(iter_lattice(lhs, fam, ground)) == set(
                iter_lattice_by_witnesses(lhs, fam, ground)
            )

        t0 = time.perf_counter()
        for lhs, fam in cases:
            sum(1 for _ in iter_lattice(lhs, fam, ground))
        closed = time.perf_counter() - t0
        t0 = time.perf_counter()
        for lhs, fam in cases:
            sum(1 for _ in iter_lattice_by_witnesses(lhs, fam, ground))
        witness = time.perf_counter() - t0
        report(
            "E12a_lattice_ablation",
            "closed-form L(X,Y) vs Definition 2.6 witness union (|S|=8)",
            format_table(
                ["variant", "total ms", "speedup"],
                [
                    ("closed form", f"{closed * 1e3:.2f}", "1.0x"),
                    (
                        "witness union",
                        f"{witness * 1e3:.2f}",
                        f"{witness / max(closed, 1e-9):.1f}x slower",
                    ),
                ],
            ),
        )

        lhs, fam = cases[0]
        assert benchmark(
            lambda: sum(1 for _ in iter_lattice(lhs, fam, ground))
        ) >= 0

    def test_density_butterfly_vs_naive(self, benchmark):
        import numpy as np

        rng = random.Random(1313)
        n = 12
        values = np.array([rng.uniform(-1, 1) for _ in range(1 << n)])
        t0 = time.perf_counter()
        fast = tr.density_table(values)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = tr.naive_density_table(values.tolist())
        t_naive = time.perf_counter() - t0
        assert np.allclose(fast, naive)
        report(
            "E12b_transform_ablation",
            f"Moebius density over 2^{n} subsets",
            format_table(
                ["variant", "ms", "speedup"],
                [
                    ("O(n 2^n) butterfly", f"{t_fast * 1e3:.2f}", "1.0x"),
                    (
                        "O(4^n) double sum",
                        f"{t_naive * 1e3:.2f}",
                        f"{t_naive / max(t_fast, 1e-9):.0f}x slower",
                    ),
                ],
            ),
        )

        assert benchmark(lambda: tr.density_table(values)[0]) is not None

    def test_support_bitmap_vs_scan(self, benchmark):
        ground = GroundSet("ABCDEFGHIJKL")
        rng = random.Random(1414)
        db = random_baskets(ground, 4000, 0.4, rng)
        queries = [random_mask(rng, ground, 0.3) for _ in range(60)]

        def naive_support(x):
            return sum(1 for b in db if sb.is_subset(x, b))

        for x in queries[:10]:
            assert db.support(x) == naive_support(x)

        t0 = time.perf_counter()
        bitmap_total = sum(db.support(x) for x in queries)
        t_bitmap = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive_total = sum(naive_support(x) for x in queries)
        t_naive = time.perf_counter() - t0
        assert bitmap_total == naive_total
        report(
            "E12c_support_ablation",
            "support counting: vertical bitmap vs basket scan (4000 baskets)",
            format_table(
                ["variant", "ms / 60 queries", "speedup"],
                [
                    ("vertical bitmap", f"{t_bitmap * 1e3:.2f}", "1.0x"),
                    (
                        "basket scan",
                        f"{t_naive * 1e3:.2f}",
                        f"{t_naive / max(t_bitmap, 1e-9):.1f}x slower",
                    ),
                ],
            ),
        )

        assert benchmark(lambda: sum(db.support(x) for x in queries)) == bitmap_total
