"""E13/E14 -- the conclusion's research directions, implemented and measured.

E13 (**Armstrong witnesses + Dempster-Shafer**): the generic witness
function of a constraint set satisfies exactly its consequences (the
Armstrong property, verified on sweeps), and the Dempster-Shafer bridge:
commonality functions are frequency functions with density = mass,
Shafer's multiplicativity holds, support-style zero constraints survive
Dempster combination while differential constraints do not.

E14 (**frequency-constraint satisfiability**): the Calders-Paredaens
bridge -- joint satisfiability of frequency bounds, differential
constraints, and the conclusion's generalized density-range constraints,
decided exactly by LP over density coordinates (rational) and by MILP
(integral / basket-realizable), with the rational-vs-integral gap
exhibited.
"""

import random

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    armstrong_database,
    armstrong_function,
)
from repro.core.implication import implies_lattice
from repro.fis import (
    DisjunctiveConstraint,
    FrequencyConstraint,
    measure_sat,
    support_sat,
)
from repro.instances import random_constraint, random_constraint_set
from repro.measures import MassFunction, random_mass, vacuous_mass

from _harness import format_table, report

GROUND = GroundSet("ABCD")


class TestArmstrongAndDempsterShafer:
    def test_armstrong_property_sweep(self, benchmark):
        rng = random.Random(1313)
        checks = mistakes = 0
        csets = [
            random_constraint_set(rng, GROUND, rng.randint(1, 3), max_members=2)
            for _ in range(30)
        ]
        for cset in csets:
            f = armstrong_function(cset)
            db = armstrong_database(cset)
            for _ in range(10):
                c = random_constraint(rng, GROUND, max_members=2)
                want = implies_lattice(cset, c)
                checks += 1
                if c.satisfied_by(f) != want:
                    mistakes += 1
                disj = DisjunctiveConstraint.from_differential(c)
                if disj.satisfied_by(db) != want:
                    mistakes += 1
        assert mistakes == 0
        report(
            "E13a_armstrong",
            "generic witnesses satisfy exactly the consequences",
            format_table(
                ["constraint sets", "constraint checks", "mismatches"],
                [(len(csets), checks, mistakes)],
            ),
        )

        cset = csets[0]
        f = benchmark(lambda: armstrong_function(cset))
        assert cset.satisfied_by(f)

    def test_dempster_shafer_bridge(self, benchmark):
        rng = random.Random(1414)
        masses = [random_mass(GROUND, rng, n_focal=4) for _ in range(40)]
        bridge_checks = 0
        for m in masses:
            q = m.commonality_function()
            assert q.is_nonnegative_density(1e-9)
            assert abs(q.value(0) - 1.0) < 1e-9
            for _ in range(5):
                c = random_constraint(rng, GROUND, max_members=2, min_members=1)
                assert m.satisfies(c) == c.satisfied_by(q, tol=1e-9)
                bridge_checks += 1

        # the combination (non-)closure facts
        c = DifferentialConstraint.parse(GROUND, "A -> B, C")
        a = MassFunction(GROUND, {"AB": 1.0})
        b = MassFunction(GROUND, {"AC": 1.0})
        combined = a.combine(b)
        assert a.satisfies(c) and b.satisfies(c) and not combined.satisfies(c)

        zero_preserved = 0
        pairs = 0
        for i in range(0, len(masses) - 1, 2):
            m1, m2 = masses[i], masses[i + 1]
            if m1.conflict_with(m2) >= 1 - 1e-9:
                continue
            fused = m1.combine(m2)
            pairs += 1
            ok = all(
                fused.commonality(x) < 1e-9
                for x in GROUND.all_masks()
                if m1.commonality(x) < 1e-12 or m2.commonality(x) < 1e-12
            )
            zero_preserved += ok
        assert zero_preserved == pairs
        report(
            "E13b_dempster_shafer",
            "commonality = frequency function; combination (non-)closure",
            format_table(
                [
                    "masses", "bridge checks (Q vs mass semantics)",
                    "fusions with Q-zeros preserved",
                    "differential constraint broken by fusion",
                ],
                [(len(masses), bridge_checks, f"{zero_preserved}/{pairs}", "yes (A->{B,C})")],
            ),
        )

        m = masses[0]
        q = benchmark(lambda: m.commonality_function())
        assert abs(q.value(0) - 1.0) < 1e-9


class TestTheoryDiscovery:
    def test_discovery_compression(self, benchmark):
        """E15: discovered covers vs the atomic theory, per workload.

        The atomic theory has one constraint per zero-density subset;
        redundancy elimination compresses it, most strongly on correlated
        data (whose zero set has structure).  Minimal disjunctive rules
        are the human-readable face of the same theory.
        """
        import random as _random

        from repro.fis import (
            correlated_baskets,
            discover_cover,
            minimal_disjunctive_rules,
            random_baskets,
            theory_of,
        )

        rng = _random.Random(1717)
        workloads = {
            "sparse": random_baskets(GROUND, 30, 0.2, rng),
            "dense": random_baskets(GROUND, 30, 0.6, rng),
            "correlated": correlated_baskets(GROUND, 30, 2, 3, 0.05, 0.05, rng),
        }
        rows = []
        for name, db in workloads.items():
            atomic = theory_of(db.support_function())
            cover = discover_cover(db)
            rules = minimal_disjunctive_rules(db, max_rhs=2)
            assert cover.equivalent_to(atomic)
            rows.append((name, len(atomic), len(cover), len(rules)))
            assert len(cover) <= len(atomic)
        report(
            "E15_theory_discovery",
            "differential-theory discovery on basket workloads (|S|=4, 30 baskets)",
            format_table(
                ["workload", "atomic theory", "minimal cover", "minimal rules"],
                rows,
            ),
        )

        db = workloads["correlated"]
        count = benchmark(lambda: len(minimal_disjunctive_rules(db, max_rhs=2)))
        assert count >= 0


class TestFrequencySatisfiability:
    def test_freqsat_lp_and_milp(self, benchmark):
        rng = random.Random(1515)
        feasible = infeasible = realized = 0
        trials = 40
        for _ in range(trials):
            bounds = []
            total = rng.randint(5, 15)
            bounds.append(FrequencyConstraint(0, total, total))
            for _ in range(rng.randint(1, 4)):
                x = rng.randrange(1, 16)
                lo = rng.randint(0, total)
                hi = rng.randint(lo, total)
                bounds.append(FrequencyConstraint(x, lo, hi))
            witness = measure_sat(GROUND, bounds)
            if witness is None:
                infeasible += 1
                # the integral problem must also be infeasible
                assert support_sat(GROUND, bounds) is None
            else:
                feasible += 1
                assert all(b.satisfied_by(witness, tol=1e-6) for b in bounds)
                db = support_sat(GROUND, bounds)
                if db is not None:
                    realized += 1
                    for b in bounds:
                        assert b.lower - 1e-9 <= db.support(b.x_mask)
                        if b.upper is not None:
                            assert db.support(b.x_mask) <= b.upper + 1e-9

        # the rational-vs-integral gap (Calders' theme)
        gap_bounds = [
            FrequencyConstraint(0, 1, 1),
            FrequencyConstraint(GROUND.parse("A"), 0.4, 0.6),
        ]
        assert measure_sat(GROUND, gap_bounds) is not None
        assert support_sat(GROUND, gap_bounds) is None

        report(
            "E14_freqsat",
            "frequency-constraint satisfiability over positive(S) / support(S)",
            format_table(
                ["trials", "LP feasible", "LP infeasible",
                 "integrally realized", "rational-integral gap shown"],
                [(trials, feasible, infeasible, realized, "yes")],
            ),
        )

        bounds = [
            FrequencyConstraint(0, 10, 10),
            FrequencyConstraint(GROUND.parse("A"), 4, 6),
            FrequencyConstraint(GROUND.parse("AB"), 2, 3),
        ]
        witness = benchmark(lambda: measure_sat(GROUND, bounds))
        assert witness is not None

    def test_generalized_constraints_with_implication(self, benchmark):
        """Differential constraints inside the LP behave like Thm 3.5:
        adding C zeroes densities exactly on L(C)."""
        rng = random.Random(1616)
        agreements = 0
        for _ in range(25):
            # nonempty families keep S outside L(C), so mass can always
            # be parked on the full set: the system stays satisfiable
            cset = random_constraint_set(
                rng, GROUND, 2, max_members=2, min_members=1
            )
            witness = measure_sat(
                GROUND,
                [FrequencyConstraint(0, 5, 5)],
                list(cset.constraints),
            )
            assert witness is not None
            assert cset.satisfied_by(witness, tol=1e-7)
            agreements += 1
        assert agreements == 25

        cset = random_constraint_set(
            random.Random(1616), GROUND, 2, max_members=2, min_members=1
        )
        witness = benchmark(
            lambda: measure_sat(
                GROUND, [FrequencyConstraint(0, 5, 5)], list(cset.constraints)
            )
        )
        assert witness is not None
