"""E10 -- Remark 3.6: density-based vs differential-based semantics.

The paper's density semantics strictly refines the earlier differential
semantics of Sayrafi-Van Gucht-Gyssens: density satisfaction implies
``D^Y_f(X) = 0`` but not conversely, and the two coincide on
``positive(S)``.  This bench measures the gap: over random general
functions, how often a constraint is differential-satisfied but
density-violated; over nonnegative-density functions the divergence must
be exactly zero.
"""

import random

import pytest

from repro.core import DENSITY, DIFFERENTIAL, GroundSet
from repro.instances import (
    random_constraint,
    random_nonneg_density_function,
    random_set_function,
)

from _harness import format_table, report

GROUND = GroundSet("ABCD")


class TestSemanticsGap:
    def test_divergence_rates(self, benchmark):
        from repro.core import SetFunction

        rng = random.Random(1010)
        rows = []
        checks = 400
        one_way_violations = 0

        # continuous random values: exact cancellation of the alternating
        # differential sum is a measure-zero event, so divergence ~ 0
        continuous_diverged = 0
        pairs = []
        for _ in range(checks):
            f = random_set_function(rng, GROUND)
            c = random_constraint(rng, GROUND, max_members=2)
            pairs.append((f, c))
        for f, c in pairs:
            by_density = c.satisfied_by(f, semantics=DENSITY)
            by_diff = c.satisfied_by(f, semantics=DIFFERENTIAL)
            if by_density and not by_diff:
                one_way_violations += 1  # must never happen (Prop 2.9)
            if by_density != by_diff:
                continuous_diverged += 1
        rows.append(("continuous F(S)", checks, continuous_diverged))

        # integer-valued functions: ties make D^Y_f(X) = 0 with nonzero
        # densities routine -- the regime Remark 3.6 warns about
        integer_diverged = 0
        for _ in range(checks):
            f = SetFunction(
                GROUND, [rng.randint(-2, 2) for _ in range(16)], exact=True
            )
            c = random_constraint(rng, GROUND, max_members=2)
            by_density = c.satisfied_by(f, semantics=DENSITY)
            by_diff = c.satisfied_by(f, semantics=DIFFERENTIAL)
            if by_density and not by_diff:
                one_way_violations += 1
            if by_density != by_diff:
                integer_diverged += 1
        assert one_way_violations == 0
        assert integer_diverged > 0  # the gap is real on integer functions
        rows.append(("integer-valued F(S)", checks, integer_diverged))

        positive_diverged = 0
        for _ in range(checks):
            f = random_nonneg_density_function(rng, GROUND)
            c = random_constraint(rng, GROUND, max_members=2)
            by_density = c.satisfied_by(f, semantics=DENSITY)
            by_diff = c.satisfied_by(f, semantics=DIFFERENTIAL)
            if by_density != by_diff:
                positive_diverged += 1
        rows.append(("positive(S)", checks, positive_diverged))
        assert positive_diverged == 0

        report(
            "E10_semantics_gap",
            "density vs differential satisfaction (Remark 3.6)",
            format_table(
                ["function class", "checks", "semantics diverged"], rows
            ),
        )

        f, c = pairs[0]

        def both_semantics():
            return (
                c.satisfied_by(f, semantics=DENSITY),
                c.satisfied_by(f, semantics=DIFFERENTIAL),
            )

        density_ok, diff_ok = benchmark(both_semantics)
        assert isinstance(density_ok, bool) and isinstance(diff_ok, bool)

    def test_remark_36_witness_always_reproducible(self, benchmark):
        """The Remark 3.6 counterexample, at every ground-set size."""
        from repro.core import DifferentialConstraint, SetFamily, SetFunction

        def witness_gap(n):
            ground = GroundSet([f"a{i}" for i in range(n)])
            # f = 1 exactly on the full set, 0 elsewhere, evaluated at (/)
            values = [0] * (1 << n)
            values[ground.universe_mask] = 1
            f = SetFunction(ground, values, exact=True)
            c = DifferentialConstraint(ground, 0, SetFamily(ground))
            by_diff = c.satisfied_by(f, semantics=DIFFERENTIAL)
            by_density = c.satisfied_by(f, semantics=DENSITY)
            return by_diff, by_density

        for n in (1, 2, 3, 4, 5):
            by_diff, by_density = witness_gap(n)
            # D^{}_f((/)) = f((/)) = 0, yet the density (-1)^(n-|X|) is
            # nonzero everywhere: the gap appears at every ground-set size
            assert by_diff and not by_density

        result = benchmark(lambda: witness_gap(4))
        assert result[1] is False
