"""E5 -- Proposition 5.5: coNP-completeness, observable on a laptop.

Two regenerations:

1. **Reduction correctness.**  Random DNF formulas are decided for
   tautology three ways -- brute force, through the Prop 5.5 differential-
   constraint reduction with the lattice decider, and with the DPLL
   decider -- and must agree.

2. **Hardness shape.**  The exact deciders scale exponentially in
   ``|S|``; the table reports decision time vs ground-set size for the
   lattice decider and the DPLL decider on matched random instances.  No
   polynomial algorithm is expected (that is the theorem); the measured
   curves are the laptop-visible content of the claim.
"""

import random
import time

import pytest

from repro.core import GroundSet
from repro.core.implication import implies_lattice, implies_sat
from repro.instances import random_constraint, random_constraint_set, random_dnf
from repro.logic import is_tautology_bruteforce, is_tautology_via_differential

from _harness import format_table, report


class TestProp55:
    def test_reduction_correctness(self, benchmark):
        ground = GroundSet("PQRST")
        rng = random.Random(505)
        dnfs = [random_dnf(rng, ground, rng.randint(1, 6)) for _ in range(150)]
        tautologies = 0
        for terms in dnfs:
            want = is_tautology_bruteforce(terms, ground)
            assert is_tautology_via_differential(terms, ground, "lattice") == want
            assert is_tautology_via_differential(terms, ground, "sat") == want
            tautologies += want
        report(
            "E5_prop55_reduction",
            "DNF tautology == differential implication (Prop 5.5 reduction)",
            format_table(
                ["DNF instances", "tautologies", "non-tautologies", "agreement"],
                [(len(dnfs), tautologies, len(dnfs) - tautologies, "100%")],
            ),
        )

        def decide_all():
            return sum(
                is_tautology_via_differential(t, ground, "lattice")
                for t in dnfs
            )

        assert benchmark(decide_all) == tautologies

    def test_exponential_scaling_curves(self, benchmark):
        from repro.core import ConstraintSet
        from repro.core.implication import implies_engine
        from repro.engine import EvalContext

        rows = []
        engine_rows = []
        for n in (4, 6, 8, 10, 12, 14, 16):
            ground = GroundSet([f"x{i}" for i in range(n)])
            rng = random.Random(1000 + n)
            # *implied* instances with small left-hand sides: certifying
            # containment cannot short-circuit, so the decider sweeps the
            # near-full 2^n lattice -- the worst-case exponential regime
            instances = []
            for _ in range(20):
                target = random_constraint(
                    rng, ground, max_members=2, lhs_p=0.05
                )
                noise = random_constraint_set(rng, ground, 2, max_members=2)
                instances.append((noise.add(target), target))
            t0 = time.perf_counter()
            lat = [implies_lattice(c, t) for c, t in instances]
            t_lat = time.perf_counter() - t0
            t0 = time.perf_counter()
            sat = [implies_sat(c, t) for c, t in instances]
            t_sat = time.perf_counter() - t0
            assert lat == sat
            # batched engine decider: cold (fresh private cache) and warm
            # (second pass over the same instances hits the fingerprint
            # cache, so no lattice table is rebuilt)
            ctx = EvalContext(private_cache=True)
            t0 = time.perf_counter()
            eng = [implies_engine(c, t, context=ctx) for c, t in instances]
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            eng_warm = [implies_engine(c, t, context=ctx) for c, t in instances]
            t_warm = time.perf_counter() - t0
            assert eng == lat == eng_warm
            per = 1e3 / len(instances)
            rows.append((n, f"{t_lat * per:.3f}", f"{t_sat * per:.3f}"))
            engine_rows.append(
                (
                    n,
                    f"{t_lat * per:.3f}",
                    f"{t_cold * per:.3f}",
                    f"{t_warm * per:.3f}",
                    f"{t_lat / t_cold:.1f}x",
                )
            )
        report(
            "E5_prop55_scaling",
            "decision time vs |S| (ms/query; exact deciders grow with 2^n)",
            format_table(["|S|", "lattice (ms)", "DPLL (ms)"], rows),
        )
        report(
            "E5_prop55_engine",
            "scalar lattice decider vs batched engine (ms/query)",
            format_table(
                ["|S|", "lattice (ms)", "engine cold (ms)",
                 "engine warm (ms)", "speedup (cold)"],
                engine_rows,
            ),
        )
        # the lattice decider must show clear growth from n=4 to n=12
        assert float(rows[-1][1]) > float(rows[0][1])
        # the batched engine must beat the scalar decider at |S| >= 12
        for n, t_lat_s, t_cold_s, _, _ in engine_rows:
            if n >= 12:
                assert float(t_cold_s) < float(t_lat_s)

        # benchmark one mid-size decision through each decider
        ground = GroundSet([f"x{i}" for i in range(10)])
        rng = random.Random(77)
        cset = random_constraint_set(rng, ground, 3, max_members=2)
        target = random_constraint(rng, ground, max_members=2)

        def decide_both():
            return implies_lattice(cset, target), implies_sat(cset, target)

        a, b = benchmark(decide_both)
        assert a == b
