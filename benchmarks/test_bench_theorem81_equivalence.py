"""E6 -- Theorem 8.1: the nine-way equivalence, measured.

Runs the full nine-statement evaluator (nine *independent* code paths:
ideal-function scans under both semantics, one-basket support scans,
two-tuple Simpson scans, minset containment, cover-based disjunctive
scans, pair-based boolean scans, the constructive derivation engine, and
the lattice containment) over randomized instances and reports the
agreement matrix -- including the documented relational-vacuity edge when
``C`` contains empty-family constraints (see EXPERIMENTS.md).
"""

import random

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.equivalence import STATEMENT_NAMES, evaluate_theorem81
from repro.instances import random_constraint, random_constraint_set

from _harness import format_table, report

GROUND = GroundSet("ABCD")


class TestTheorem81:
    def test_agreement_matrix(self, benchmark):
        rng = random.Random(606)
        strict_agree = vacuous = 0
        per_statement_true = {name: 0 for name in STATEMENT_NAMES}
        instances = []
        for i in range(80):
            cset = random_constraint_set(
                rng, GROUND, rng.randint(1, 3), max_members=2, min_members=1
            )
            if i % 6 == 0:
                # inject an empty-family constraint to exercise the edge
                cset = cset.add(
                    DifferentialConstraint(
                        GROUND, rng.randrange(16), SetFamily(GROUND)
                    )
                )
            target = random_constraint(
                rng, GROUND, max_members=2, allow_empty_member=True
            )
            instances.append((cset, target))

        for cset, target in instances:
            rep = evaluate_theorem81(cset, target)
            assert rep.consistent_with_paper(), rep.statements
            if rep.all_agree():
                strict_agree += 1
            else:
                vacuous += 1
                assert rep.relational_vacuous
            for name, value in rep.statements.items():
                per_statement_true[name] += value

        rows = [(name, per_statement_true[name]) for name in STATEMENT_NAMES]
        rows.append(("-- strict 9-way agreement", strict_agree))
        rows.append(("-- relational-vacuity cases", vacuous))
        report(
            "E6_theorem81_equivalence",
            f"9 statements on {len(instances)} instances (|S|=4)",
            format_table(["statement", "decided true"], rows),
        )
        assert strict_agree + vacuous == len(instances)
        assert strict_agree > vacuous  # the edge is the exception

        # benchmark: one full nine-way evaluation
        cset, target = instances[0]
        rep = benchmark(lambda: evaluate_theorem81(cset, target))
        assert rep.consistent_with_paper()

    def test_nonempty_families_always_strict(self, benchmark):
        """Restricted to nonempty families the equivalence is exact."""
        rng = random.Random(607)
        instances = [
            (
                random_constraint_set(
                    rng, GROUND, rng.randint(1, 3), max_members=2, min_members=1
                ),
                random_constraint(rng, GROUND, max_members=2),
            )
            for _ in range(30)
        ]
        for cset, target in instances:
            assert evaluate_theorem81(cset, target).all_agree()

        def evaluate_some():
            return sum(
                evaluate_theorem81(c, t).value() for c, t in instances[:5]
            )

        assert benchmark(evaluate_some) >= 0
