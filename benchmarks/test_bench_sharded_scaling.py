"""E17 -- sharded scaling: parallel per-shard evaluation vs single-shard.

The workload is ingest-to-answer evaluation of a partitioned instance at
``|S| = 16``: each shard's resident rows are aggregated into a sparse
density (row-linear), scattered into a dense table (nnz-linear), support
-transformed, and the shard answers constraint verdicts plus support
probes; the master merges by ``any`` / scalar sum (exact under mask
routing).  The single-shard baseline runs the identical pipeline inline
on the whole instance (``K = 1``, no pool, no pickling).  Cold rounds
bump the shard version (full per-shard recompute); warm rounds hit the
workers' version-keyed table caches (the per-shard reuse fast path).

Acceptance floors: ``>= 2x`` cold speedup at 4 workers on the float
backend, and ``>= 1x`` (non-regression: sharding must not *lose* to a
single shard) on the vectorized exact backend, whose per-shard table
rebuilds are fast enough that the fan-out overhead no longer drowns the
parallelism the way it does for the list-exact backend.  A parallel
speedup needs parallel hardware, so both floors are asserted when the
host has at least 4 CPUs; on smaller hosts the rows are still
regenerated and the merged answers are still asserted equal to the
serial ones, and the host stamp in the result file records why the
floors were not asserted (the stamp exists precisely so that E17
numbers are comparable across machines).
"""

import os
import random
import time

from repro.core import GroundSet
from repro.engine import (
    EvalRequest,
    ParallelExecutor,
    ShardPlan,
    ShardedEvalContext,
    recompute_tables,
)
from repro.engine.backends import backend_by_name
from repro.instances import random_constraint

from _harness import format_table, report

N = 16
N_SHARDS = 4
N_WORKERS = 4
N_CONSTRAINTS = 4
N_PROBES = 8
#: Row counts per backend: float cost is row/nnz-dominated; list-exact
#: cost is butterfly-dominated, so fewer rows keep the bench affordable.
#: exact-vec runs the same workload as exact so its row is directly
#: comparable.
ROWS = {"float": 400_000, "exact": 60_000, "exact-vec": 60_000}
COLD_ROUNDS = {"float": 3, "exact": 2, "exact-vec": 3}
WARM_ROUNDS = 3

#: Cold-speedup floors asserted on >= 4-CPU hosts: float must win
#: outright; exact-vec must at least not regress vs a single shard.
FLOORS = {"float": 2.0, "exact-vec": 1.0}


def _instance(n_rows: int):
    rng = random.Random(1700)
    ground = GroundSet([f"x{i}" for i in range(N)])
    constraints = [
        random_constraint(rng, ground, max_members=2, min_members=1)
        for _ in range(N_CONSTRAINTS)
    ]
    specs = tuple((c.lhs, tuple(c.family.members)) for c in constraints)
    rows = [rng.randrange(1 << N) for _ in range(n_rows)]
    probes = tuple(rng.randrange(1 << N) for _ in range(N_PROBES))
    return ground, rows, specs, probes


def _requests(shard_ids, version, specs, probes, backend_name):
    return [
        EvalRequest(
            shard_id=k,
            version=version,
            n=N,
            backend=backend_name,
            tol=1e-9,
            constraints=specs,
            probes=probes,
            families=(),
            return_tables=False,
        )
        for k in shard_ids
    ]


def _merge(answers, specs, probes):
    verdicts = tuple(
        any(a.verdicts[i] for a in answers) for i in range(len(specs))
    )
    support = tuple(
        sum(a.probes[i] for a in answers) for i in range(len(probes))
    )
    return verdicts, support


def _time_system(executor, parts, specs, probes, backend_name, cold_rounds):
    """Best-of cold (version bumped per round) and warm wall times."""
    answers = None
    cold = []
    version = 0
    for version in range(cold_rounds):
        for shard_id, rows in parts.items():  # resync: invalidates caches
            executor.load_rows(shard_id, version, rows)
        requests = _requests(parts, version, specs, probes, backend_name)
        t0 = time.perf_counter()
        answers = executor.evaluate(requests)
        cold.append(time.perf_counter() - t0)
    warm = []
    for _ in range(WARM_ROUNDS):
        requests = _requests(parts, version, specs, probes, backend_name)
        t0 = time.perf_counter()
        answers = executor.evaluate(requests)
        warm.append(time.perf_counter() - t0)
    return min(cold), min(warm), _merge(answers, specs, probes)


class TestShardedScaling:
    def test_parallel_speedup_over_single_shard(self, benchmark):
        cpus = os.cpu_count() or 1
        plan = ShardPlan(N_SHARDS)
        rows_out = []
        speedups = {}
        for backend_name in ("float", "exact", "exact-vec"):
            ground, rows, specs, probes = _instance(ROWS[backend_name])
            parts = {
                k: part for k, part in enumerate(plan.partition_rows(rows))
            }
            with ParallelExecutor(workers=1) as serial, ParallelExecutor(
                workers=N_WORKERS
            ) as pool:
                t_serial, t_serial_warm, serial_answers = _time_system(
                    serial, {0: rows}, specs, probes, backend_name,
                    COLD_ROUNDS[backend_name],
                )
                t_par, t_par_warm, par_answers = _time_system(
                    pool, parts, specs, probes, backend_name,
                    COLD_ROUNDS[backend_name],
                )
                # noisy-neighbor guard (shared CI runners): a miss of
                # the asserted floor gets one clean re-measurement
                if (
                    backend_name in FLOORS
                    and cpus >= N_WORKERS
                    and t_serial / t_par < FLOORS[backend_name]
                ):
                    t_serial, t_serial_warm, serial_answers = _time_system(
                        serial, {0: rows}, specs, probes, backend_name,
                        COLD_ROUNDS[backend_name],
                    )
                    t_par, t_par_warm, par_answers = _time_system(
                        pool, parts, specs, probes, backend_name,
                        COLD_ROUNDS[backend_name],
                    )
            # sharded answers merge exactly to the single-shard ones
            assert par_answers == serial_answers
            speedup = t_serial / t_par
            speedups[backend_name] = speedup
            rows_out.append(
                (
                    backend_name,
                    len(rows),
                    f"{t_serial * 1e3:.1f}",
                    f"{t_par * 1e3:.1f}",
                    f"{speedup:.2f}x",
                    f"{t_serial_warm * 1e3:.2f}",
                    f"{t_par_warm * 1e3:.2f}",
                )
            )
        lines = format_table(
            [
                "backend",
                "rows",
                "1 shard (ms)",
                f"{N_SHARDS} shards/{N_WORKERS} workers (ms)",
                "cold speedup",
                "warm 1-shard (ms)",
                "warm sharded (ms)",
            ],
            rows_out,
        )
        lines.append(
            f"workload: |S|={N}, {N_CONSTRAINTS} constraint checks + "
            f"{N_PROBES} support probes per round; cold = shard version "
            "bumped, warm = worker table caches hit"
        )
        if cpus >= N_WORKERS:
            lines.append(
                f"acceptance floor (float, cold): >= 2x at {N_WORKERS} "
                f"workers -- measured {speedups['float']:.2f}x"
            )
            lines.append(
                "acceptance floor (exact-vec, cold): >= 1x (sharding "
                "must not regress vs single-shard) -- measured "
                f"{speedups['exact-vec']:.2f}x"
            )
        else:
            lines.append(
                f"acceptance floors (float >= 2x, exact-vec >= 1x at "
                f"{N_WORKERS} workers) not asserted: host has {cpus} "
                f"CPU(s) < {N_WORKERS}; merged answers still asserted "
                "equal to single-shard"
            )
        report(
            "E17_sharded_scaling",
            "sharded parallel evaluation vs single-shard",
            lines,
        )
        if cpus >= N_WORKERS:
            assert speedups["float"] >= 2.0
            # non-regression: the vectorized exact backend must make
            # sharding at worst free (list-exact famously loses here)
            assert speedups["exact-vec"] >= 1.0

        # pytest-benchmark row: the warm inline evaluate hot path
        ground, rows, specs, probes = _instance(20_000)
        with ParallelExecutor(workers=1) as ex:
            ex.load_rows(0, 0, rows)
            requests = _requests({0: rows}, 0, specs, probes, "float")
            benchmark(lambda: ex.evaluate(requests))

    def test_merge_exactness_at_scale(self):
        """|S| = 16 shard merge is exact on the exact backend: merged
        tables equal a from-scratch recompute, entry for entry."""
        ground, rows, specs, probes = _instance(2_000)
        ctx = ShardedEvalContext(ground, shards=N_SHARDS, backend="exact")
        for mask in rows:
            ctx.apply_delta(mask, 1)
        backend = backend_by_name("exact")
        density, support, _ = recompute_tables(
            N, ctx.density_items(), [], backend
        )
        assert list(ctx.merged_density_table()) == list(density)
        assert list(ctx.merged_support_table()) == list(support)
        # the vectorized exact backend merges to the same entries
        ctx_vec = ShardedEvalContext(ground, shards=N_SHARDS, backend="exact-vec")
        for mask in rows:
            ctx_vec.apply_delta(mask, 1)
        assert list(ctx_vec.merged_density_table()) == list(density)
        assert list(ctx_vec.merged_support_table()) == list(support)
