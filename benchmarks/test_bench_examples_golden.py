"""E3 -- the paper's worked examples, regenerated end to end.

Prints every concrete value the paper's running examples state
(Examples 2.2/2.4/2.7/2.10, 3.2/3.4, the Section 4.2 decompositions,
Example 4.3's derivation, the Section 5 negminset and Remark 3.6's
counterexample) and asserts each against the implementation.
"""

import random

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    atoms,
    decomp,
    derive,
    differential_value,
    lattice,
    witnesses,
)
from repro.logic import negminset_of_constraint

from _harness import report


class TestGoldenExamples:
    def test_regenerate_all_examples(self, benchmark):
        s4 = GroundSet("ABCD")
        s3 = GroundSet("ABC")
        s1 = GroundSet("A")
        lines = []

        # Example 2.7
        fam = SetFamily.of(s4, "B", "CD")
        ws = [s4.format_mask(w) for w in witnesses(fam)]
        lat = [s4.format_mask(u) for u in lattice(s4.parse("A"), fam, s4)]
        assert set(ws) == {"BC", "BD", "BCD"}
        assert set(lat) == {"A", "AC", "AD"}
        lines.append(f"Example 2.7   W({{B,CD}}) = {{{', '.join(sorted(ws))}}}")
        lines.append(f"              L(A, {{B,CD}}) = {{{', '.join(sorted(lat))}}}")

        fam2 = SetFamily.of(s4, "BC", "BD")
        lat2 = sorted(s4.format_mask(u) for u in lattice(s4.parse("A"), fam2, s4))
        assert set(lat2) == {"A", "AB", "AC", "AD", "ACD"}
        lines.append(f"              L(A, {{BC,BD}}) = {{{', '.join(lat2)}}}")

        # Example 3.2 density
        f32 = SetFunction.from_dict(s3, {"": 2, "C": 2}, default=1, exact=True)
        d32 = f32.density()
        assert d32("C") == 1 and d32("ABC") == 1
        lines.append(
            "Example 3.2   d_f(C) = d_f(ABC) = 1, d_f = 0 elsewhere  [OK]"
        )
        for text, want in (("A -> B", True), ("B -> C", True), ("C -> A", False)):
            c = DifferentialConstraint.parse(s3, text)
            assert c.satisfied_by(f32) == want
            lines.append(f"              f satisfies {text}: {want}  [OK]")

        # Example 3.4
        cset = ConstraintSet.of(s3, "A -> B", "B -> C")
        assert cset.implies("A -> C")
        lines.append("Example 3.4   {A->{B}, B->{C}} |= A->{C}  [OK]")

        # Section 4.2 decompositions
        c = DifferentialConstraint.parse(s4, "A -> B, CD")
        dec = sorted(repr(x) for x in decomp(c))
        ato = sorted(repr(x) for x in atoms(c))
        assert set(dec) == {"A -> {B, C}", "A -> {B, D}", "A -> {B, C, D}"}
        assert set(ato) == {"A -> {B, C, D}", "AC -> {B, D}", "AD -> {B, C}"}
        lines.append(f"Sect. 4.2     decomp(A->{{B,CD}}) = {dec}")
        lines.append(f"              atoms(A->{{B,CD}})  = {ato}")

        # Example 4.3 derivation
        cset43 = ConstraintSet.of(s4, "A -> BC, CD", "C -> D")
        t43 = DifferentialConstraint.parse(s4, "AB -> D")
        proof = derive(cset43, t43)
        lines.append("Example 4.3   derivation of AB -> {D}:")
        lines.extend("              " + line for line in proof.format().splitlines())

        # Section 5 example
        nm = sorted(s4.format_mask(u) for u in negminset_of_constraint(c))
        assert nm == ["A", "AC", "AD"]
        lines.append(f"Sect. 5       negminset(A => B or (C and D)) = {{{', '.join(nm)}}}")

        # Remark 3.6
        f36 = SetFunction.from_dict(s1, {"": 0, "A": 1}, exact=True)
        c36 = DifferentialConstraint(s1, 0, SetFamily(s1))
        assert differential_value(f36, c36.family, 0) == 0
        assert not c36.satisfied_by(f36)
        lines.append(
            "Remark 3.6    D^{}((/)) = 0 yet f violates (/) -> {} "
            "(density semantics is strictly stronger)  [OK]"
        )

        report("E3_examples_golden", "paper worked examples", lines)

        # benchmark: the Example 4.3 machine derivation
        result = benchmark(
            lambda: derive(cset43, t43, allow_derived=False, check=False).size()
        )
        assert result >= 5

    def test_example_22_numeric(self, benchmark):
        """Example 2.2 differential identity on random functions."""
        s4 = GroundSet("ABCD")
        rng = random.Random(33)
        fam = SetFamily.of(s4, "B", "CD")
        functions = [
            SetFunction(s4, [rng.uniform(-1, 1) for _ in range(16)])
            for _ in range(50)
        ]

        def check_all():
            a = s4.parse("A")
            for f in functions:
                got = differential_value(f, fam, a)
                want = f("A") - f("AB") - f("ACD") + f("ABCD")
                assert abs(got - want) < 1e-9
            return len(functions)

        assert benchmark(check_all) == 50
