"""E18 -- durable service: WAL on vs off on the serve path.

Durability costs one CRC-framed append (plus an optional fsync) per
committed transaction on the stream write path, and nothing at all on
the read paths (checks and probes read the live tables; the WAL is
write-only outside recovery).  The regenerated table measures streamed
transaction throughput on matched seeded workloads:

* ``session`` rows drive :class:`StreamSession.apply` directly -- the
  engine-side cost of the log (append + flush [+ fsync]);
* ``http`` rows drive the same transactions through the full serve
  path -- :class:`ReproService` over real sockets via
  :class:`ReproClient` -- so the WAL overhead is shown relative to the
  wire protocol's own cost, which is what a serving deployment pays.

The acceptance bound (stated in the result header and asserted):
with ``fsync=never`` the WAL keeps at least 10% of the in-memory
session throughput, and the durable HTTP path keeps at least 10% of
the non-durable HTTP path.  fsync="always" throughput is recorded but
not asserted -- it measures the host's disk, not the code.
"""

import random
import shutil
import tempfile
import time

from repro.core import ConstraintSet, GroundSet
from repro.engine import ReproService, StreamSession

from _harness import format_table, report

N = 12
N_TX = 120
SESSION_REPEATS = 3  # session path is fast; median-of-3 steadies it

#: Asserted floor: WAL-on throughput >= WAL-off throughput / MAX_SLOWDOWN.
MAX_SLOWDOWN = 10.0


def _workload():
    ground = GroundSet([chr(ord("A") + i) for i in range(N)])
    cset = ConstraintSet.of(ground, "A -> B", "B -> CD", "AC -> D")
    rng = random.Random(1800)
    transactions = [
        [
            (rng.randrange(1 << N), rng.choice([-1, 1, 1, 2]))
            for _ in range(rng.randint(1, 3))
        ]
        for _ in range(N_TX)
    ]
    return ground, cset, transactions


def _session_kwargs(ground, cset, variant, data_dir):
    kwargs = dict(constraints=cset.constraints)
    if variant != "off":
        kwargs.update(durable=data_dir, fsync=variant)
    return kwargs


def _time_session(ground, cset, transactions, variant) -> float:
    best = None
    for _ in range(SESSION_REPEATS):
        data_dir = tempfile.mkdtemp(prefix="e18-")
        try:
            session = StreamSession(
                ground, **_session_kwargs(ground, cset, variant, data_dir)
            )
            t0 = time.perf_counter()
            for deltas in transactions:
                session.apply(deltas)
            elapsed = time.perf_counter() - t0
            session.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        best = elapsed if best is None else min(best, elapsed)
    return best


def _time_http(ground, cset, transactions, variant) -> float:
    data_dir = tempfile.mkdtemp(prefix="e18-")
    try:
        session = StreamSession(
            ground, **_session_kwargs(ground, cset, variant, data_dir)
        )
        handle = ReproService(cset, session=session).start_in_thread()
        try:
            client = handle.client()
            ops_per_tx = [
                [
                    f"{'+' if delta >= 0 else '-'} "
                    f"{'0' if mask == 0 else ground.format_mask(mask)} "
                    f"{abs(delta)}"
                    for mask, delta in deltas
                ]
                for deltas in transactions
            ]
            t0 = time.perf_counter()
            for ops in ops_per_tx:
                client.delta(ops)
            elapsed = time.perf_counter() - t0
        finally:
            handle.stop()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    return elapsed


class TestDurableService:
    def test_wal_on_vs_off_throughput(self, benchmark):
        ground, cset, transactions = _workload()
        rows = []
        rates = {}
        for path, timer in (("session", _time_session), ("http", _time_http)):
            variants = (
                ("off", "-"),
                ("never", "on"),
                ("always", "on"),
            )
            if path == "http":
                # the wire protocol dominates; fsync=never adds nothing
                # measurable beyond the "always" row
                variants = (("off", "-"), ("always", "on"))
            for variant, wal in variants:
                elapsed = timer(ground, cset, transactions, variant)
                rate = N_TX / elapsed
                rates[(path, variant)] = rate
                baseline = rates[(path, "off")]
                rows.append(
                    (
                        path,
                        wal,
                        variant if variant != "off" else "-",
                        N_TX,
                        f"{elapsed * 1e3:.1f}",
                        f"{rate:.0f}",
                        f"{baseline / rate:.2f}x",
                    )
                )
        report(
            "E18_durable_service",
            "serve-path throughput: write-ahead log on vs off "
            f"(acceptance: fsync=never within {MAX_SLOWDOWN:.0f}x of "
            "WAL-off on both paths; fsync=always recorded, not asserted)",
            format_table(
                [
                    "path",
                    "wal",
                    "fsync",
                    "tx",
                    "total ms",
                    "tx/sec",
                    "slowdown",
                ],
                rows,
            ),
        )
        assert rates[("session", "never")] >= rates[("session", "off")] / MAX_SLOWDOWN
        assert rates[("http", "always")] >= rates[("http", "off")] / MAX_SLOWDOWN

        # pytest-benchmark row: the durable commit hot path (no fsync)
        data_dir = tempfile.mkdtemp(prefix="e18-bench-")
        session = StreamSession(
            ground, **_session_kwargs(ground, cset, "never", data_dir)
        )
        state = {"i": 0}

        def one_durable_tx():
            deltas = transactions[state["i"] % len(transactions)]
            state["i"] += 1
            session.apply(deltas)

        try:
            benchmark(one_durable_tx)
        finally:
            session.close()
            shutil.rmtree(data_dir, ignore_errors=True)

    def test_timed_workload_recovers_exactly(self):
        """The benchmark's own workload round-trips through recovery."""
        ground, cset, transactions = _workload()
        data_dir = tempfile.mkdtemp(prefix="e18-")
        try:
            session = StreamSession(
                ground, constraints=cset.constraints, durable=data_dir,
                fsync="never",
            )
            for deltas in transactions:
                session.apply(deltas)
            expected = (
                list(session.context.density_table()),
                session.violated_constraints(),
                session.transactions,
            )
            session.close()
            recovered = StreamSession(
                ground, constraints=cset.constraints, durable=data_dir
            )
            assert (
                list(recovered.context.density_table()),
                recovered.violated_constraints(),
                recovered.transactions,
            ) == expected
            recovered.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
