#!/usr/bin/env python
"""Fail CI when regenerated benchmark results drift from the committed ones.

Timing cells vary run to run and host to host, so a byte diff is
useless -- what must *not* drift silently is the experiment's
**structure**: its title, its table header (the measured columns), and
its row identities (the workload each row pins: ``|S|``, backend, shard
count, ...).  A benchmark change that adds/renames/retypes rows or
columns has to land together with the regenerated committed file; this
checker makes CI enforce that, where previously regenerated rows were
printed and never compared.

For every ``benchmarks/results/*.txt`` present in git HEAD, the
regenerated working-tree file is compared on:

* the ``== Exx: title ==`` line,
* the header row (column names),
* the ordered list of row keys -- each data row's leading cells up to
  its first numeric cell (numbers, including ``1.5x`` / ``12.3`` forms,
  are measurements; everything before them identifies the workload).

Annotation lines after the table (host stamps, acceptance notes) are
host-dependent and ignored.  A results file deleted from the working
tree, or an experiment whose structure changed, fails the check.

Committed ``benchmarks/results/BENCH_*.json`` files (the machine-readable
twins emitted by ``_harness.report``) are enforced the same way: their
``experiment`` / ``title`` / ``columns`` and the ordered row ``key``
lists must match the regenerated working-tree JSON -- measurement
values and the engine/host stamps are free to vary.

Timing-gate mode (``--timing``) additionally compares the *measurement*
cells of the committed ``BENCH_*.json`` files against the regenerated
ones, matched by row key and column, with a noise-tolerant ratio band
(default 3x, ``--timing-ratio``): speedup/agreement cells (``x``/``%``
units) must not fall below ``committed / ratio``, timing and
slowdown/overhead cells must not rise above ``committed * ratio``.
Deterministic cells (ints, non-timing stats) stay under the structure
check only.  Because sub-4-CPU hosts time too noisily to enforce
against numbers committed from another machine, the gate is
informational there (warnings, exit 0) and enforcing where the
effective CPU count is >= 4 -- ``--enforce-timing`` forces enforcement
anywhere.

Run:  python benchmarks/check_drift.py          (compares vs git HEAD)
      python benchmarks/check_drift.py --list   (prints the structures)
      python benchmarks/check_drift.py --timing (structure + timing gate)
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from typing import List, Optional, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join("benchmarks", "results")

#: A *measurement* cell: a decimal/scientific float, or a unit-suffixed
#: number (``61.5x``, ``12ms``).  Bare integers are workload parameters
#: and deterministic seeded counts -- part of the row's identity.
_MEASUREMENT = re.compile(
    r"^-?(\d+\.\d+(e-?\d+)?|\d+(\.\d+)?(x|ms|s|%))$", re.IGNORECASE
)

_TITLE = re.compile(r"^== (\S+): (.*) ==$")

#: Post-table annotation lines ("engine: ...", "host: ...",
#: "workload: ...", "acceptance floor (...): ...") -- prose keyed by a
#: colon inside the first cell, never a workload row identity.
_ANNOTATION = re.compile(r"^[^\s].*?\S: ")


def _cells(line: str) -> List[str]:
    """Split an aligned table row on 2+ space runs (the writer's idiom)."""
    return [cell for cell in re.split(r"\s{2,}", line.strip()) if cell]


def _row_key(line: str) -> Tuple[str, ...]:
    """A data row's identity: leading cells before the first measurement."""
    key: List[str] = []
    for cell in _cells(line):
        if _MEASUREMENT.match(cell):
            break
        key.append(cell)
    return tuple(key)


def structure(text: str) -> Optional[dict]:
    """Parse one result file into its comparable structure."""
    lines = [line.rstrip("\n") for line in text.splitlines() if line.strip()]
    if not lines:
        return None
    title = _TITLE.match(lines[0])
    if title is None:
        return None
    header: Optional[Tuple[str, ...]] = None
    rows: List[Tuple[str, ...]] = []
    in_table = False
    for line in lines[1:]:
        cells = _cells(line)
        if not in_table:
            # the header is the line right before the dashed rule
            if cells and all(set(c) == {"-"} for c in cells):
                in_table = True
            else:
                header = tuple(cells)
            continue
        if cells and all(set(c) <= set("-") for c in cells):
            continue
        if _ANNOTATION.match(line.strip()):
            break  # host stamps / acceptance notes: host-dependent
        key = _row_key(line)
        if not key:
            break  # annotation/stamp region begins
        rows.append(key)
    return {
        "experiment": title.group(1),
        "title": title.group(2),
        "header": header,
        "rows": rows,
    }


def json_structure(text: str) -> Optional[dict]:
    """Parse one BENCH_*.json file into the same comparable structure.

    Same fields as :func:`structure` so :func:`compare` diffs both file
    kinds with one code path: row identity is each row's ``key`` list,
    the header is the ``columns`` list.
    """
    try:
        data = json.loads(text)
    except ValueError:
        return None
    if not isinstance(data, dict) or "experiment" not in data:
        return None
    return {
        "experiment": data.get("experiment"),
        "title": data.get("title"),
        "header": tuple(data.get("columns") or ()),
        "rows": [tuple(row.get("key") or ()) for row in data.get("rows") or ()],
    }


def committed_files() -> List[str]:
    out = subprocess.run(
        ["git", "ls-tree", "-r", "--name-only", "HEAD", RESULTS],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return [
        path
        for path in out.stdout.splitlines()
        if path.endswith(".txt")
        or (os.path.basename(path).startswith("BENCH_") and path.endswith(".json"))
    ]


def committed_text(path: str) -> str:
    return subprocess.run(
        ["git", "show", f"HEAD:{path}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


def compare(path: str) -> List[str]:
    problems: List[str] = []
    work_path = os.path.join(ROOT, path)
    if not os.path.exists(work_path):
        return [f"{path}: regenerated file is missing from the working tree"]
    parse = json_structure if path.endswith(".json") else structure
    baseline = parse(committed_text(path))
    with open(work_path) as fh:
        regenerated = parse(fh.read())
    if baseline is None:
        return []  # unstructured committed file: nothing to enforce
    if regenerated is None:
        shape = (
            "its BENCH json shape"
            if path.endswith(".json")
            else "its '== Exx: title ==' shape"
        )
        return [f"{path}: regenerated file lost {shape}"]
    for field in ("experiment", "title", "header"):
        if baseline[field] != regenerated[field]:
            problems.append(
                f"{path}: {field} drifted\n"
                f"  committed:   {baseline[field]!r}\n"
                f"  regenerated: {regenerated[field]!r}"
            )
    if baseline["rows"] != regenerated["rows"]:
        problems.append(
            f"{path}: row keys drifted\n"
            f"  committed:   {baseline['rows']!r}\n"
            f"  regenerated: {regenerated['rows']!r}"
        )
    return problems


#: Measurement columns/rows where *smaller* is better even though the
#: cell carries a ratio unit (E18's service slowdown, E19's auto/best
#: ratio rows): gate them with a ceiling, not a floor.
_LOWER_BETTER = ("slowdown", "overhead", "ratio", "latency")


def _effective_cpus() -> int:
    """Affinity/quota-aware CPU budget (mirrors
    ``repro.engine.calibrate.effective_cpus``; duplicated so the checker
    keeps working without repro on ``sys.path``)."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    return affinity or os.cpu_count() or 1


def timing_cells(text: str) -> dict:
    """The gateable measurement cells of one BENCH json:
    ``{(row_key, column): (value, unit)}``.  Unit-suffixed cells carry
    their unit; bare floats are gated only when the column names a
    timing (contains ``ms``) -- deterministic float stats are not
    timings and belong to the structure check."""
    try:
        data = json.loads(text)
    except ValueError:
        return {}
    if not isinstance(data, dict):
        return {}
    out: dict = {}
    for row in data.get("rows") or ():
        key = tuple(row.get("key") or ())
        for col, val in (row.get("cells") or {}).items():
            if isinstance(val, dict) and "value" in val:
                out[(key, col)] = (float(val["value"]), str(val.get("unit", "")))
            elif isinstance(val, float) and "ms" in col.lower():
                out[(key, col)] = (val, "ms")
    return out


def compare_timing(path: str, ratio: float) -> List[str]:
    """Ratio-band regressions of ``path``'s regenerated measurement
    cells against the committed ones (missing cells are structure
    drift, not timing drift -- the structure check owns those)."""
    work_path = os.path.join(ROOT, path)
    if not os.path.exists(work_path):
        return []
    baseline = timing_cells(committed_text(path))
    with open(work_path) as fh:
        regenerated = timing_cells(fh.read())
    problems: List[str] = []
    for (key, col), (value, unit) in sorted(baseline.items()):
        cell = regenerated.get((key, col))
        if cell is None or value <= 0:
            continue
        new_value, new_unit = cell
        if new_unit != unit:
            continue
        where = f"{path}: {'/'.join(key)} [{col}]"
        lower_better = unit == "ms" or any(
            word in f"{' '.join(key)} {col}".lower() for word in _LOWER_BETTER
        )
        if lower_better:
            ceiling = value * ratio
            if new_value > ceiling:
                problems.append(
                    f"{where}: {new_value:g}{unit} rose above the noise "
                    f"ceiling {ceiling:g}{unit} (committed {value:g}{unit}, "
                    f"ratio {ratio:g})"
                )
        else:
            floor = value / ratio
            if new_value < floor:
                problems.append(
                    f"{where}: {new_value:g}{unit} fell below the noise "
                    f"floor {floor:g}{unit} (committed {value:g}{unit}, "
                    f"ratio {ratio:g})"
                )
    return problems


def main(argv: List[str]) -> int:
    paths = committed_files()
    if not paths:
        print("no committed result files under", RESULTS)
        return 1
    if "--list" in argv:
        for path in paths:
            parse = json_structure if path.endswith(".json") else structure
            print(path, parse(committed_text(path)))
        return 0
    ratio = 3.0
    if "--timing-ratio" in argv:
        ratio = float(argv[argv.index("--timing-ratio") + 1])
    if ratio <= 1:
        print(f"--timing-ratio must be > 1, got {ratio:g}")
        return 2
    failures: List[str] = []
    for path in paths:
        failures.extend(compare(path))
    if failures:
        print(f"benchmark drift detected in {len(failures)} place(s):\n")
        for failure in failures:
            print(failure)
        print(
            "\nIf the benchmark intentionally changed shape, regenerate and "
            "commit the result file in the same change."
        )
        return 1
    print(f"benchmark structure clean: {len(paths)} result file(s) match HEAD")
    if "--timing" not in argv:
        return 0
    regressions: List[str] = []
    json_paths = [path for path in paths if path.endswith(".json")]
    for path in json_paths:
        regressions.extend(compare_timing(path, ratio))
    cpus = _effective_cpus()
    enforcing = cpus >= 4 or "--enforce-timing" in argv
    if not regressions:
        print(
            f"benchmark timing clean: {len(json_paths)} BENCH file(s) "
            f"within {ratio:g}x of HEAD"
        )
        return 0
    print(f"\nbenchmark timing drift in {len(regressions)} cell(s):\n")
    for regression in regressions:
        print(regression)
    if not enforcing:
        print(
            f"\nWARNING only: {cpus} effective CPU(s) time too noisily to "
            "enforce (the gate enforces at >= 4, or with --enforce-timing)."
        )
        return 0
    print(
        "\nIf the slowdown is intended (or the host legitimately differs), "
        "regenerate and commit the BENCH_*.json files in the same change."
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
