"""E21 -- fleet mode: routed multi-worker throughput and latency.

Fleet mode multiplies the serve path across processes: a
:class:`FleetRouter` consistent-hashes tenants onto N supervised
``repro serve`` workers, each a separate python process with its own
GIL.  The regenerated table drives the same concurrent implication
workload -- ``THREADS`` client threads, one tenant each, every query a
*distinct* constraint so the decider's memo cannot answer for the wire
-- against fleets of 1, 2 and 4 workers, and records per-request p50 /
p99 latency plus saturation throughput.

Worker processes only help when the host can actually run them side by
side, so the scaling acceptance (4-worker throughput >= 2x 1-worker) is
asserted only where it is meaningful -- hosts with >= 4 effective CPUs
-- and is informational on smaller hosts, same policy as the
``check_drift.py --timing`` band that gates the committed numbers.

Latency columns ("p50 ms", "p99 ms") are ceiling-gated by the timing
band; the "speedup" column is floor-gated; raw req/s floats are
recorded ungated (they restate the speedup ratio).
"""

import os
import statistics
import sys
import threading
import time

from repro.engine import FleetService, effective_cpus

from _harness import format_table, report

FLEETS = (1, 2, 4)
THREADS = 8
REQUESTS_PER_THREAD = 24

#: Asserted on hosts with >= 4 effective CPUs: a 4-worker fleet must
#: at least double 1-worker saturation throughput.
MIN_SPEEDUP_4W = 2.0

N = 10
LETTERS = "ABCDEFGHIJ"
CONSTRAINTS = "ABCDEFGHIJ\nA -> B\nBC -> DE\nF -> GH\n"


def _queries():
    """A distinct implication per (thread, request): memoization inside
    one worker never answers twice, so every request pays the full
    routed round trip."""
    queries = []
    for t in range(THREADS):
        row = []
        for i in range(REQUESTS_PER_THREAD):
            k = t * REQUESTS_PER_THREAD + i
            lhs = LETTERS[k % N]
            rhs = LETTERS[(k // N) % N] + LETTERS[(k * 7 + 3) % N]
            row.append(f"{lhs} -> {rhs}")
        queries.append(row)
    return queries


def worker_command(constraint_path):
    return [
        sys.executable, "-m", "repro", "serve", str(constraint_path),
        "--port", "0", "--host", "127.0.0.1", "--queue-size", "128",
    ]


def fleet_env():
    """Worker subprocesses need ``repro`` importable regardless of cwd."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _drive(handle, queries):
    """All threads hammer the router at once; per-request wall times."""
    latencies = [[] for _ in range(THREADS)]
    barrier = threading.Barrier(THREADS + 1)

    def run(index):
        client = handle.client(tenant=f"tenant-{index}", timeout=60)
        barrier.wait()
        for constraint in queries[index]:
            t0 = time.perf_counter()
            client.implies(constraint)
            latencies[index].append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    flat = sorted(lat for row in latencies for lat in row)
    return elapsed, flat


def _percentile(sorted_values, q):
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class TestFleetScaling:
    def test_routed_fleet_throughput(self, benchmark, tmp_path):
        constraint_path = tmp_path / "constraints.txt"
        constraint_path.write_text(CONSTRAINTS)
        queries = _queries()
        total = THREADS * REQUESTS_PER_THREAD

        rows = []
        rates = {}
        for workers in FLEETS:
            service = FleetService(
                [worker_command(constraint_path) for _ in range(workers)],
                env=fleet_env(),
            )
            with service.start_in_thread(timeout=120) as handle:
                _drive(handle, queries)  # warm each worker's tables
                elapsed, latencies = _drive(handle, queries)
                stats = handle.client().stats()
                assert stats["relayed"] >= 2 * total
                routed = [w["routed"] for w in stats["workers"]]
                assert sum(routed) >= 2 * total
            rate = total / elapsed
            rates[workers] = rate
            rows.append(
                (
                    workers,
                    THREADS,
                    total,
                    f"{_percentile(latencies, 0.50) * 1e3:.1f}",
                    f"{_percentile(latencies, 0.99) * 1e3:.1f}",
                    f"{rate:.1f}",
                    f"{rate / rates[FLEETS[0]]:.2f}x",
                )
            )

        cpus = effective_cpus()
        report(
            "E21_fleet",
            "routed fleet saturation: concurrent implies across 1/2/4 "
            f"workers (acceptance: >= {MIN_SPEEDUP_4W:.0f}x at 4 workers, "
            f"asserted only on hosts with >= 4 effective CPUs; "
            f"this host: {cpus})",
            format_table(
                [
                    "workers",
                    "threads",
                    "requests",
                    "p50 ms",
                    "p99 ms",
                    "req/s",
                    "speedup",
                ],
                rows,
            )
            + [
                "workload: one distinct implication per request "
                "(memoization never short-circuits the wire)",
                f"acceptance floor (>= 4 CPUs): 4-worker >= "
                f"{MIN_SPEEDUP_4W:.0f}x 1-worker throughput",
            ],
        )
        assert statistics.median(rates.values()) > 0
        if cpus >= 4:
            assert rates[4] >= MIN_SPEEDUP_4W * rates[1], (
                f"4-worker fleet only {rates[4] / rates[1]:.2f}x of "
                f"1-worker on a {cpus}-CPU host"
            )

        # pytest-benchmark row: one routed implies round trip through a
        # single-worker fleet (router relay + worker decide, no memo)
        service = FleetService(
            [worker_command(constraint_path)], env=fleet_env()
        )
        with service.start_in_thread(timeout=120) as handle:
            client = handle.client(tenant="bench", timeout=60)
            state = {"i": 0}
            flat = [q for row in queries for q in row]

            def one_routed_implies():
                state["i"] += 1
                client.implies(flat[state["i"] % len(flat)])

            benchmark(one_routed_implies)

    def test_quota_throttling_is_a_429_not_a_503(self, tmp_path):
        """The quota layer the operator turns on for a fleet refuses
        with 429 (never client-retried) while saturation stays 503."""
        from repro.engine import QuotaPolicy
        from repro.engine.net import ServiceError

        constraint_path = tmp_path / "constraints.txt"
        constraint_path.write_text(CONSTRAINTS)
        service = FleetService(
            [worker_command(constraint_path)],
            quota=QuotaPolicy(rate=1.0, burst=2.0),
            env=fleet_env(),
        )
        with service.start_in_thread(timeout=120) as handle:
            client = handle.client(tenant="greedy", timeout=60)
            statuses = []
            for i in range(6):
                try:
                    client.implies(f"A -> {LETTERS[i % N]}B")
                    statuses.append(200)
                except ServiceError as exc:
                    statuses.append(exc.status)
            assert 429 in statuses and 503 not in statuses
            stats = handle.client().stats()
            assert stats["throttled"] >= statuses.count(429)
