"""E4 -- Theorem 3.5: the lattice characterization of implication.

Regenerates the theorem on randomized sweeps: the syntactic containment
``L(C) >= L(X, Y)`` agrees with semantic implication decided by
counterexample scans over the ``f^U`` family, and every refutation's
witness function genuinely separates ``C`` from the target.  Benchmarks
the per-query lattice decider against the cached-bitset variant (the
repeated-queries-on-one-C regime).
"""

import random

import pytest

from repro.core import GroundSet, refute
from repro.core.implication import (
    find_uncovered,
    implies_bitset,
    implies_lattice,
)
from repro.core.counterexample import semantic_implies_over_ideals
from repro.instances import random_constraint, random_constraint_set

from _harness import format_table, report

GROUND = GroundSet("ABCDE")


def _make_queries(seed, n):
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        cset = random_constraint_set(rng, GROUND, rng.randint(1, 4), max_members=3)
        target = random_constraint(rng, GROUND, max_members=3)
        queries.append((cset, target))
    return queries


class TestTheorem35:
    def test_syntactic_equals_semantic(self, benchmark):
        queries = _make_queries(404, 150)
        implied = 0
        for cset, target in queries:
            syntactic = implies_lattice(cset, target)
            semantic = semantic_implies_over_ideals(cset, target)
            assert syntactic == semantic
            implied += syntactic
            if not syntactic:
                f = refute(cset, target)
                assert cset.satisfied_by(f) and not target.satisfied_by(f)
                u = find_uncovered(cset, target)
                assert target.lattice_contains(u)
                assert not cset.lattice_contains(u)
        report(
            "E4_theorem35_lattice",
            "L(C) containment == semantic implication (150 sweeps, |S|=5)",
            format_table(
                ["instances", "implied", "refuted (with f^U certificate)"],
                [(len(queries), implied, len(queries) - implied)],
            ),
        )

        def decide_all():
            return sum(implies_lattice(c, t) for c, t in queries)

        assert benchmark(decide_all) == implied

    def test_bitset_variant_for_repeated_queries(self, benchmark):
        """Many targets against one cached C."""
        rng = random.Random(405)
        cset = random_constraint_set(rng, GROUND, 4, max_members=3)
        targets = [
            random_constraint(rng, GROUND, max_members=3) for _ in range(120)
        ]
        # agreement first
        for t in targets:
            assert implies_bitset(cset, t) == implies_lattice(cset, t)
        cset.lattice_bitset()  # warm the cache outside the timer

        def decide_all_bitset():
            return sum(implies_bitset(cset, t) for t in targets)

        count = benchmark(decide_all_bitset)
        assert 0 <= count <= len(targets)
