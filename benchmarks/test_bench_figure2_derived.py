"""E2 -- Figure 2: the derivable rules, machine-derived.

Regenerates Figure 2's claim executably: each of the five printed rules
(plus our absorption lemma) is expanded into Figure-1 primitives on
randomized instances; every expansion is validated by the independent
checker with derived rules *disallowed*.  The table reports the expansion
cost (primitive steps per macro step) per rule.
"""

import random

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily, check_proof
from repro.core import derived_rules as D
from repro.core import proofs as P
from repro.instances import random_family, random_mask

from _harness import format_table, report

GROUND = GroundSet("ABCDE")


def _random_cases(rng, rule, n):
    """Yield (expanded_proof, conclusion, hypotheses) for one rule."""
    for _ in range(n):
        if rule in ("projection", "separation", "absorption"):
            fam = random_family(rng, GROUND, max_members=3, min_members=1)
            lhs = random_mask(rng, GROUND)
            old = rng.choice(fam.members)
            premise = DifferentialConstraint(GROUND, lhs, fam)
            ax = P.axiom(premise)
            if rule == "projection":
                new = old & random_mask(rng, GROUND, 0.6)
                yield D.expand_projection(ax, old, new), [premise]
            elif rule == "separation":
                part1 = old & random_mask(rng, GROUND, 0.5)
                part2 = old & ~part1
                yield D.expand_separation(ax, old, part1, part2), [premise]
            else:
                new = old | (lhs & random_mask(rng, GROUND, 0.6))
                yield D.expand_absorption(ax, old, new), [premise]
        else:
            base = random_family(rng, GROUND, max_members=2)
            x = random_mask(rng, GROUND)
            y = random_mask(rng, GROUND)
            z = random_mask(rng, GROUND)
            if rule == "union":
                p1 = DifferentialConstraint(GROUND, x, base.add(y or 1))
                p2 = DifferentialConstraint(GROUND, x, base.add(z or 2))
                yield D.expand_union(
                    P.axiom(p1), P.axiom(p2), y or 1, z or 2, base
                ), [p1, p2]
            elif rule == "transitivity":
                p1 = DifferentialConstraint(GROUND, x, base.add(y))
                p2 = DifferentialConstraint(GROUND, y, base.add(z))
                yield D.expand_transitivity(
                    P.axiom(p1), P.axiom(p2), y, z, base
                ), [p1, p2]
            else:  # chain
                p1 = DifferentialConstraint(GROUND, x, base.add(y))
                p2 = DifferentialConstraint(GROUND, x | y, base.add(z))
                yield D.expand_chain(
                    P.axiom(p1), P.axiom(p2), y, z, base
                ), [p1, p2]


RULES = ("projection", "separation", "union", "transitivity", "chain", "absorption")


class TestFigure2:
    def test_all_rules_expand_and_check(self, benchmark):
        rng = random.Random(202)
        rows = []
        for rule in RULES:
            sizes = []
            for expanded, hypotheses in _random_cases(rng, rule, 120):
                assert expanded.uses_only_primitives()
                check_proof(expanded, hypotheses, allow_derived=False)
                sizes.append(expanded.size())
            rows.append(
                (
                    rule,
                    len(sizes),
                    f"{sum(sizes) / len(sizes):.2f}",
                    max(sizes),
                )
            )
        report(
            "E2_figure2_derived",
            "each Figure-2 rule expands into checked Figure-1 steps",
            format_table(
                ["rule", "instances", "avg Fig-1 steps", "max steps"], rows
            ),
        )

        # benchmark: expansion of a stacked macro proof
        given = DifferentialConstraint.parse(GROUND, "A -> BC, DE")
        def stacked():
            p = P.axiom(given)
            p = P.projection(p, GROUND.parse("DE"), GROUND.parse("D"))
            p = P.separation(p, GROUND.parse("BC"), GROUND.parse("B"), GROUND.parse("C"))
            p = P.augmentation(p, GROUND.parse("E"))
            return D.expand_proof(p).size()

        size = benchmark(stacked)
        assert size >= 5

    def test_expansion_constant_overhead(self, benchmark):
        """One macro step costs O(1) primitives (<= 4 incl. premise)."""
        rng = random.Random(203)
        cases = list(_random_cases(rng, "projection", 50))
        for expanded, _ in cases:
            assert expanded.size() <= 4

        def expand_many():
            total = 0
            for expanded, _ in cases:
                total += expanded.size()
            return total

        assert benchmark(expand_many) > 0
