"""E9 -- Section 7: Simpson functions and positive boolean dependencies.

Regenerates the section's three checkable claims on randomized
probabilistic relations:

* **Prop 7.2**: the pairwise density formula equals the Moebius density
  (max absolute deviation reported);
* **frequency**: every Simpson function has nonnegative density;
* **Prop 7.3 / Cor 7.4**: differential satisfaction by the Simpson
  function == boolean-dependency satisfaction by the relation, and the
  implication problems coincide across deciders.

Also probes the paper's open problem: the Shannon-entropy analogue
matches on functional dependencies but escapes ``positive(S)`` (the XOR
witness), so the Section 7 machinery cannot transfer unchanged.
"""

import random

import pytest

from repro.core import GroundSet
from repro.fis import is_frequency_function
from repro.instances import random_constraint
from repro.relational import (
    BooleanDependency,
    Distribution,
    FunctionalDependency,
    entropy_density_can_be_negative,
    fd_holds_by_entropy,
    implies_boolean,
    random_probabilistic_relation,
    random_relation,
    semantic_implies_over_two_tuple_relations,
    simpson_density_function_pairsum,
    simpson_function,
    simpson_satisfies,
)

from _harness import format_table, report

GROUND = GroundSet("ABCD")


class TestSimpsonRelational:
    def test_prop72_prop73_sweeps(self, benchmark):
        rng = random.Random(909)
        max_density_error = 0.0
        satisfaction_checks = 0
        dists = [
            random_probabilistic_relation(GROUND, rng.randint(1, 7), 3, rng)
            for _ in range(60)
        ]
        for dist in dists:
            f = simpson_function(dist)
            pair = simpson_density_function_pairsum(dist)
            mob = f.density()
            err = max(
                abs(mob.value(m) - pair.value(m)) for m in GROUND.all_masks()
            )
            max_density_error = max(max_density_error, err)
            assert is_frequency_function(f, tol=1e-9)
            for _ in range(6):
                c = random_constraint(rng, GROUND, max_members=2, min_members=1)
                bd = BooleanDependency.from_differential(c)
                assert simpson_satisfies(dist, c) == bd.satisfied_by(dist.relation)
                satisfaction_checks += 1
        report(
            "E9_simpson_relational",
            "Props 7.2/7.3 over random probabilistic relations (|S|=4)",
            format_table(
                ["relations", "max |pairwise - Moebius|", "Prop 7.3 checks", "agreement"],
                [(len(dists), f"{max_density_error:.2e}", satisfaction_checks, "100%")],
            ),
        )

        dist = dists[0]
        f = benchmark(lambda: simpson_function(dist))
        assert abs(f.value(0) - 1.0) < 1e-9

    def test_corollary74_implication(self, benchmark):
        rng = random.Random(910)
        agreements = 0
        instances = []
        for _ in range(40):
            deps = [
                BooleanDependency.from_differential(
                    random_constraint(rng, GROUND, max_members=2, min_members=1)
                )
                for _ in range(rng.randint(1, 3))
            ]
            target = BooleanDependency.from_differential(
                random_constraint(rng, GROUND, max_members=2, min_members=1)
            )
            instances.append((deps, target))
        for deps, target in instances:
            a = implies_boolean(deps, target, "lattice")
            b = semantic_implies_over_two_tuple_relations(deps, target)
            assert a == b
            agreements += 1
        assert agreements == 40

        deps, target = instances[0]
        assert benchmark(
            lambda: implies_boolean(deps, target, "lattice")
        ) in (True, False)

    def test_shannon_open_problem_probe(self, benchmark):
        """FD-level agreement holds; positivity fails (XOR witness)."""
        rng = random.Random(911)
        fd_agree = fd_total = 0
        for _ in range(60):
            r = random_relation(GROUND, rng.randint(1, 7), 2, rng)
            if r.is_empty():
                continue
            dist = Distribution.uniform(r)
            lhs = rng.randrange(16)
            rhs = rng.randrange(16)
            fd = FunctionalDependency(GROUND, lhs, rhs)
            fd_total += 1
            fd_agree += fd.satisfied_by(r) == fd_holds_by_entropy(dist, lhs, rhs)
        _, negative_value = entropy_density_can_be_negative(GROUND)
        report(
            "E9b_shannon_probe",
            "the open problem's boundary: entropy matches FDs, escapes positive(S)",
            format_table(
                ["FD checks", "entropy-FD agreement", "XOR entropy density"],
                [(fd_total, f"{fd_agree}/{fd_total}", f"{negative_value:.3f}")],
            ),
        )
        assert fd_agree == fd_total
        assert negative_value < -0.9

        assert benchmark(
            lambda: entropy_density_can_be_negative(GROUND)[1]
        ) == pytest.approx(-1.0)
