"""E22 -- zero-copy shard transport: delta shipping + shm table returns.

Two transport experiments at ``|S| = 16``, ``K = 4`` shards:

**Delta shipping.**  A streaming loop applies a handful of deltas per
round to a large-nnz instance and syncs the workers.  Under
``sync="reship"`` every dirty shard reships its full sparse payload
(O(nnz) pickled per round) and the worker rebuilds its tables from
scratch (scatter + zeta); under ``sync="delta"`` only the journalled
``(mask, delta)`` records travel (O(gap)) and the worker maintains its
cached tables in place.  Floor: ``>= 10x`` total streaming speedup on
the vectorized exact backend.

**Shared-memory returns.**  Warm ``return_tables=True`` evaluations on
a clean instance: with ``shm_tables=False`` every round pickles the
full ``2^16`` tables across the process boundary; with
``shm_tables=True`` the workers' published segments are reused and the
merge attaches ndarray views without copying a byte.  Floor: ``>= 2x``.

A transport speedup needs a real process boundary and parallel
hardware, so both floors are asserted when the host has at least
``N_WORKERS`` CPUs (with one clean re-measurement as a noisy-neighbor
guard); on smaller hosts the numbers are still reported -- the host
stamp records why the floors were not asserted -- and the answers are
asserted equal between the transports in every configuration.
"""

import os
import random
import time

from repro.core import GroundSet
from repro.engine import ParallelExecutor, ShardedEvalContext
from repro.instances import random_constraint

from _harness import format_table, report

N = 16
N_SHARDS = 4
N_WORKERS = 4
NNZ = 40_000
N_CONSTRAINTS = 2
N_PROBES = 4

STREAM_ROUNDS = 20
DELTAS_PER_ROUND = 8
SHM_ROUNDS = 6

#: floors asserted on >= N_WORKERS-CPU hosts (exact-vec backend)
FLOOR_DELTA = 10.0
FLOOR_SHM = 2.0


def _instance():
    rng = random.Random(2200)
    ground = GroundSet([f"x{i}" for i in range(N)])
    constraints = [
        random_constraint(rng, ground, max_members=2, min_members=1)
        for _ in range(N_CONSTRAINTS)
    ]
    seed = [(rng.randrange(1 << N), rng.choice([1, 2, 3])) for _ in range(NNZ)]
    stream = [
        [
            (rng.randrange(1 << N), rng.choice([-1, 1, 2]))
            for _ in range(DELTAS_PER_ROUND)
        ]
        for _ in range(STREAM_ROUNDS)
    ]
    probes = [rng.randrange(1 << N) for _ in range(N_PROBES)]
    return ground, constraints, seed, stream, probes


def _make_ctx(ground, seed, executor, **kwargs):
    ctx = ShardedEvalContext(
        ground, shards=N_SHARDS, backend="exact-vec", executor=executor, **kwargs
    )
    for mask, delta in seed:
        ctx.apply_delta(mask, delta)
    return ctx


def _stream(ctx, constraints, stream, probes):
    """Total sync+evaluate wall time over the streaming rounds."""
    ctx.evaluate(constraints=constraints, probes=probes)  # baseline load
    answers = []
    total = 0.0
    for batch in stream:
        for mask, delta in batch:
            ctx.apply_delta(mask, delta)
        t0 = time.perf_counter()
        result = ctx.evaluate(constraints=constraints, probes=probes)
        total += time.perf_counter() - t0
        answers.append((result.violated, tuple(sorted(result.support.items()))))
    return total, answers


def _measure_delta_shipping(ground, constraints, seed, stream, probes):
    with ParallelExecutor(workers=N_WORKERS) as ex_d, ParallelExecutor(
        workers=N_WORKERS
    ) as ex_r:
        delta_ctx = _make_ctx(ground, seed, ex_d, sync="delta")
        reship_ctx = _make_ctx(ground, seed, ex_r, sync="reship")
        t_delta, a_delta = _stream(delta_ctx, constraints, stream, probes)
        t_reship, a_reship = _stream(reship_ctx, constraints, stream, probes)
        assert a_delta == a_reship  # transport never changes an answer
        stats = delta_ctx.transport_stats()
        assert stats["deltas_shipped"] == STREAM_ROUNDS * DELTAS_PER_ROUND
        assert stats["full_resyncs"] == 0
        assert reship_ctx.transport_stats()["deltas_shipped"] == 0
    return t_delta, t_reship


def _warm_tables(ctx, constraints, probes, rounds):
    """Best-of warm wall time for full-table returns (density, support,
    and one differential table per constraint family)."""
    families = [c.family for c in constraints]
    ctx.evaluate(
        constraints=constraints, probes=probes, families=families,
        return_tables=True,
    )
    times = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = ctx.evaluate(
            constraints=constraints, probes=probes, families=families,
            return_tables=True,
        )
        times.append(time.perf_counter() - t0)
    return min(times), result


def _measure_shm_returns(ground, constraints, seed, probes):
    with ParallelExecutor(workers=N_WORKERS) as ex_s, ParallelExecutor(
        workers=N_WORKERS
    ) as ex_p:
        shm_ctx = _make_ctx(ground, seed, ex_s, shm_tables=True)
        pickle_ctx = _make_ctx(ground, seed, ex_p, shm_tables=False)
        t_shm, r_shm = _warm_tables(shm_ctx, constraints, probes, SHM_ROUNDS)
        t_pickle, r_pickle = _warm_tables(
            pickle_ctx, constraints, probes, SHM_ROUNDS
        )
        assert list(r_shm.density_table) == list(r_pickle.density_table)
        assert list(r_shm.support_table) == list(r_pickle.support_table)
        for members, table in r_shm.differential_tables.items():
            assert list(table) == list(r_pickle.differential_tables[members])
        assert r_shm.violated == r_pickle.violated
        assert shm_ctx.transport_stats()["shm_bytes"] > 0
        assert pickle_ctx.transport_stats()["shm_bytes"] == 0
    return t_shm, t_pickle


class TestShardTransport:
    def test_delta_shipping_and_shm_returns(self, benchmark):
        cpus = os.cpu_count() or 1
        ground, constraints, seed, stream, probes = _instance()

        t_delta, t_reship = _measure_delta_shipping(
            ground, constraints, seed, stream, probes
        )
        if cpus >= N_WORKERS and t_reship / t_delta < FLOOR_DELTA:
            # noisy-neighbor guard: one clean re-measurement
            t_delta, t_reship = _measure_delta_shipping(
                ground, constraints, seed, stream, probes
            )
        delta_speedup = t_reship / t_delta

        t_shm, t_pickle = _measure_shm_returns(ground, constraints, seed, probes)
        if cpus >= N_WORKERS and t_pickle / t_shm < FLOOR_SHM:
            t_shm, t_pickle = _measure_shm_returns(
                ground, constraints, seed, probes
            )
        shm_speedup = t_pickle / t_shm

        lines = format_table(
            ["experiment", "baseline (ms)", "zero-copy (ms)", "speedup"],
            [
                (
                    f"delta shipping ({STREAM_ROUNDS}x{DELTAS_PER_ROUND} deltas)",
                    f"{t_reship * 1e3:.1f}",
                    f"{t_delta * 1e3:.1f}",
                    f"{delta_speedup:.2f}x",
                ),
                (
                    "shm table returns (warm)",
                    f"{t_pickle * 1e3:.2f}",
                    f"{t_shm * 1e3:.2f}",
                    f"{shm_speedup:.2f}x",
                ),
            ],
        )
        lines.append(
            f"workload: |S|={N}, K={N_SHARDS} shards, {N_WORKERS} workers, "
            f"nnz={NNZ}, exact-vec backend; delta rows stream "
            f"{DELTAS_PER_ROUND} deltas/round vs full payload reship; shm "
            f"rows return density+support+{N_CONSTRAINTS} differential "
            "tables warm (published segments reused, nothing recomputed)"
        )
        if cpus >= N_WORKERS:
            lines.append(
                f"acceptance floors: delta shipping >= {FLOOR_DELTA:.0f}x "
                f"(measured {delta_speedup:.2f}x), shm returns >= "
                f"{FLOOR_SHM:.0f}x (measured {shm_speedup:.2f}x)"
            )
        else:
            lines.append(
                f"acceptance floors (delta >= {FLOOR_DELTA:.0f}x, shm >= "
                f"{FLOOR_SHM:.0f}x) not asserted: host has {cpus} CPU(s) < "
                f"{N_WORKERS}; answers still asserted equal across transports"
            )
        report(
            "E22_shard_transport",
            "zero-copy shard transport: delta shipping + shm returns",
            lines,
        )
        if cpus >= N_WORKERS:
            assert delta_speedup >= FLOOR_DELTA
            assert shm_speedup >= FLOOR_SHM

        # pytest-benchmark row: one inline delta-shipped sync+evaluate
        with ParallelExecutor(workers=1) as ex:
            ctx = _make_ctx(ground, seed[:4_000], ex, sync="delta")
            rng = random.Random(2201)
            ctx.evaluate(constraints=constraints, probes=probes)

            def round_trip():
                ctx.apply_delta(rng.randrange(1 << N), 1)
                return ctx.evaluate(constraints=constraints, probes=probes)

            benchmark(round_trip)
