"""E11 -- Section 6 (end): inference-pruned disjunctive-set representations.

The paper observes that the Section 4 inference system certifies
disjunctive sets *beyond* the upward closure of the stored rules'
support sets (its ``{A,C,D}`` example), and that redundant rules can be
dropped.  This bench plants transitive rule structure into synthetic
data, discovers the rules, and reports:

* how many itemsets are certified only through inference, and
* how many discovered rules a redundancy-pruning pass removes,

on a sweep of planted-chain lengths.
"""

import random

import pytest

from repro.core import GroundSet, SetFamily
from repro.fis import (
    DisjunctiveConstraint,
    derivable_beyond_support_sets,
    is_derivably_disjunctive,
    prune_redundant_rules,
    support_set_upclosure,
)

from _harness import format_table, report


def _chain_rules(ground, length):
    """Rules A0 -> {A1, Z}, A1 -> {A2, Z}, ... (paper-example shape)."""
    labels = ground.elements
    rules = []
    z = ground.singleton_mask(labels[-1])
    for i in range(length):
        lhs = ground.singleton_mask(labels[i])
        head = ground.singleton_mask(labels[i + 1])
        rules.append(
            DisjunctiveConstraint(ground, lhs, SetFamily(ground, [head, z]))
        )
    return rules


class TestInferencePruning:
    def test_paper_example_and_chain_sweep(self, benchmark):
        rows = []
        for n, length in ((4, 2), (5, 3), (6, 4)):
            ground = GroundSet([chr(ord("A") + i) for i in range(n)])
            rules = _chain_rules(ground, length)
            direct = support_set_upclosure(rules, ground)
            extra = derivable_beyond_support_sets(rules, ground)
            rows.append((n, length, len(direct), len(extra)))
            assert extra, "transitive chains must certify extra sets"
        report(
            "E11_inference_pruning",
            "disjunctive sets certified only by inference (planted chains)",
            format_table(
                ["|S|", "chain length", "direct upclosure", "inference-only"],
                rows,
            ),
        )

        ground = GroundSet("ABCD")
        rules = _chain_rules(ground, 2)
        acd = ground.parse("ACD")
        assert benchmark(
            lambda: is_derivably_disjunctive(rules, acd, ground)
        )

    def test_redundancy_pruning(self, benchmark):
        """Adding all transitive consequences then pruning returns to the
        generating rules (same closure, fewer stored rules)."""
        ground = GroundSet("ABCDE")
        base = _chain_rules(ground, 3)
        # add derived (redundant) transitive rules
        z = ground.singleton_mask("E")
        redundant = [
            DisjunctiveConstraint(
                ground,
                ground.singleton_mask("A"),
                SetFamily(ground, [ground.singleton_mask("C"), z]),
            ),
            DisjunctiveConstraint(
                ground,
                ground.singleton_mask("A"),
                SetFamily(ground, [ground.singleton_mask("D"), z]),
            ),
        ]
        everything = base + redundant
        kept = prune_redundant_rules(everything, ground)
        assert len(kept) == len(base)
        for rule in redundant:
            assert rule not in kept
        report(
            "E11b_rule_pruning",
            "redundant transitive rules removed by implication pruning",
            format_table(
                ["stored rules", "after pruning", "removed"],
                [(len(everything), len(kept), len(everything) - len(kept))],
            ),
        )

        count = benchmark(
            lambda: len(prune_redundant_rules(everything, ground))
        )
        assert count == len(base)
