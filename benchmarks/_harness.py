"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one experiment row-set from DESIGN.md's
per-experiment index (E1-E12).  Besides the pytest-benchmark timing
table, each experiment emits a human-readable table through
:func:`report`, which both prints it (visible with ``pytest -s`` and in
piped logs) and persists it under ``benchmarks/results/<experiment>.txt``
so EXPERIMENTS.md can cite stable artifacts.
"""

from __future__ import annotations

import os
import platform
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["report", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> List[str]:
    """Render an aligned text table as a list of lines."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return lines


def _engine_stamp() -> str:
    """One line recording the evaluation-engine configuration in effect."""
    try:
        from repro.engine import default_context

        ctx = default_context()
        backend = ctx.backend.name if ctx.backend is not None else "inherit"
        return f"engine: backend={backend}, cache={type(ctx.cache).__name__}"
    except Exception:  # engine unavailable (e.g. partial checkouts)
        return "engine: unavailable"


def _host_stamp() -> str:
    """One line recording the hardware/python the numbers came from.

    Parallel experiments (E17's worker scaling in particular) are only
    interpretable relative to the CPU budget of the machine that ran
    them, so every result file records it.
    """
    cpus = os.cpu_count() or 1
    return (
        f"host: {cpus} CPU(s), python {platform.python_version()}, "
        f"{platform.machine() or 'unknown-arch'}"
    )


def report(experiment: str, title: str, lines: Iterable[str]) -> None:
    """Print and persist one experiment's table (stamped with the engine
    backend and host so result files record how they were produced)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    body = [f"== {experiment}: {title} =="]
    body.extend(lines)
    body.append(_engine_stamp())
    body.append(_host_stamp())
    text = "\n".join(body)
    print("\n" + text)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
