"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one experiment row-set from DESIGN.md's
per-experiment index (E1-E12).  Besides the pytest-benchmark timing
table, each experiment emits a human-readable table through
:func:`report`, which both prints it (visible with ``pytest -s`` and in
piped logs) and persists it under ``benchmarks/results/<experiment>.txt``
so EXPERIMENTS.md can cite stable artifacts.

Each report is *also* persisted as machine-readable JSON
(``benchmarks/results/BENCH_<experiment>.json``, one schema for every
experiment) -- the first step of the machine-readable perf trajectory:
rows keyed by their workload identity with parsed measurement cells, so
tooling can diff numbers across commits without scraping aligned text.
``benchmarks/check_drift.py`` enforces that the JSON structure stays in
lockstep with the committed files, like the text tables.
"""

from __future__ import annotations

import json
import os
import platform
import re
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["report", "format_table", "parse_report", "BENCH_SCHEMA"]

#: Version stamp of the JSON result schema.
BENCH_SCHEMA = 1

#: A *measurement* cell: a decimal/scientific float, or a unit-suffixed
#: number (``61.5x``, ``12ms``).  Mirrors ``check_drift.py``: bare
#: integers are workload parameters, part of the row's identity.
_MEASUREMENT = re.compile(
    r"^-?(\d+\.\d+(e-?\d+)?|\d+(\.\d+)?(x|ms|s|%))$", re.IGNORECASE
)
_UNIT = re.compile(r"^(-?\d+(?:\.\d+)?(?:e-?\d+)?)(x|ms|s|%)$", re.IGNORECASE)
_INT = re.compile(r"^-?\d+$")
_FLOAT = re.compile(r"^-?\d+\.\d+(e-?\d+)?$", re.IGNORECASE)

#: Post-table annotation lines ("workload: ...", "acceptance floor
#: (...): ...") -- prose keyed by a colon inside the first cell, never a
#: workload row identity.  Mirrors ``check_drift.py``.
_ANNOTATION = re.compile(r"^[^\s].*?\S: ")


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> List[str]:
    """Render an aligned text table as a list of lines."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return lines


def _engine_stamp() -> str:
    """One line recording the evaluation-engine configuration in effect."""
    try:
        from repro.engine import default_context

        ctx = default_context()
        backend = ctx.backend.name if ctx.backend is not None else "inherit"
        return f"engine: backend={backend}, cache={type(ctx.cache).__name__}"
    except Exception:  # engine unavailable (e.g. partial checkouts)
        return "engine: unavailable"


def _effective_cpus() -> int:
    """The CPU budget of *this process* (affinity/quota-aware), matching
    ``repro.engine.calibrate.effective_cpus`` without requiring repro on
    the path (the drift checker imports this module standalone)."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    return affinity or os.cpu_count() or 1


def _host_stamp() -> str:
    """One line recording the hardware/python the numbers came from.

    Parallel experiments (E17's worker scaling in particular) are only
    interpretable relative to the CPU budget of the machine that ran
    them, so every result file records it -- the *effective* budget
    (CPU affinity, container quotas), not the raw core count, since
    that is what the planner and the worker pools get to use.
    """
    effective = _effective_cpus()
    online = os.cpu_count() or 1
    return (
        f"host: {effective} effective CPU(s) of {online} online, "
        f"python {platform.python_version()}, "
        f"{platform.machine() or 'unknown-arch'}"
    )


def _cells(line: str) -> List[str]:
    """Split an aligned table row on 2+ space runs (the writer's idiom)."""
    return [cell for cell in re.split(r"\s{2,}", line.strip()) if cell]


def _parse_cell(cell: str):
    """A table cell as data: ints/floats as numbers, unit-suffixed
    measurements as ``{"value": ..., "unit": ...}``, anything else as
    the raw string."""
    if _INT.match(cell):
        return int(cell)
    if _FLOAT.match(cell):
        return float(cell)
    unit = _UNIT.match(cell)
    if unit:
        return {"value": float(unit.group(1)), "unit": unit.group(2)}
    return cell


def parse_report(experiment: str, title: str, lines: Sequence[str]) -> dict:
    """The one JSON schema every experiment's report is emitted in.

    ``rows`` carry a ``key`` (the leading identity cells, before the
    first measurement -- the same row identity ``check_drift.py``
    compares) and a ``cells`` mapping of column name to parsed value;
    trailing non-table lines land in ``annotations``.
    """
    lines = [line for line in lines if line.strip()]
    columns: List[str] = []
    rows: List[dict] = []
    annotations: List[str] = []
    in_table = False
    table_done = False
    for line in lines:
        cells = _cells(line)
        if not in_table:
            if cells and all(set(c) == {"-"} for c in cells):
                in_table = True
                continue
            if columns:
                annotations.append(line)  # no table followed after all
            else:
                columns = cells
            continue
        if table_done or not cells or _ANNOTATION.match(line.strip()):
            table_done = table_done or bool(_ANNOTATION.match(line.strip()))
            annotations.append(line)
            continue
        key = []
        for cell in cells:
            if _MEASUREMENT.match(cell):
                break
            key.append(cell)
        if not key:
            # annotation/stamp region: prose, not a workload row
            table_done = True
            annotations.append(line)
            continue
        rows.append(
            {
                "key": key,
                "cells": {
                    col: _parse_cell(cell)
                    for col, cell in zip(columns, cells)
                },
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "experiment": experiment,
        "title": title,
        "columns": columns,
        "rows": rows,
        "annotations": annotations,
        "engine": _engine_stamp(),
        "host": _host_stamp(),
    }


def report(experiment: str, title: str, lines: Iterable[str]) -> None:
    """Print and persist one experiment's table (stamped with the engine
    backend and host so result files record how they were produced).

    Persists twice: the human-readable aligned table as
    ``<experiment>.txt`` and the same content as machine-readable
    ``BENCH_<experiment>.json`` (see :func:`parse_report`).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    lines = list(lines)
    body = [f"== {experiment}: {title} =="]
    body.extend(lines)
    body.append(_engine_stamp())
    body.append(_host_stamp())
    text = "\n".join(body)
    print("\n" + text)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    json_path = os.path.join(RESULTS_DIR, f"BENCH_{experiment}.json")
    with open(json_path, "w") as fh:
        json.dump(parse_report(experiment, title, lines), fh, indent=1)
        fh.write("\n")
