"""E8 -- the paper's conclusion: the singleton-RHS fragment is in P.

Regenerates the claim that differential-constraint implication restricted
to single-member right-hand sides coincides with functional-dependency
implication, decidable by attribute closure in polynomial time -- while
the general deciders stay exponential.  The table shows time vs ``|S|``
for the closure decider against the lattice decider on the *same*
singleton-RHS instances: the closure column stays flat into ground sets
far beyond what the exponential decider can touch.
"""

import random
import time

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet, SetFamily
from repro.core.implication import implies_fd, implies_lattice, implies_sat

from _harness import format_table, report


def _singleton_instances(ground, rng, n):
    universe = ground.universe_mask
    out = []
    for _ in range(n):
        constraints = []
        for _ in range(rng.randint(1, 5)):
            lhs = rng.randrange(universe + 1)
            member = rng.randrange(universe + 1)
            constraints.append(
                DifferentialConstraint(ground, lhs, SetFamily(ground, [member]))
            )
        target = DifferentialConstraint(
            ground,
            rng.randrange(universe + 1),
            SetFamily(ground, [rng.randrange(universe + 1)]),
        )
        out.append((ConstraintSet(ground, constraints), target))
    return out


class TestFdSubclass:
    def test_agreement_with_general_deciders(self, benchmark):
        ground = GroundSet("ABCDE")
        rng = random.Random(808)
        instances = _singleton_instances(ground, rng, 200)
        implied = 0
        for cset, target in instances:
            fd = implies_fd(cset, target)
            assert fd == implies_lattice(cset, target)
            assert fd == implies_sat(cset, target)
            implied += fd
        report(
            "E8_fd_subclass_agreement",
            "closure decider == lattice == DPLL on singleton-RHS instances",
            format_table(
                ["instances", "implied", "not implied", "agreement"],
                [(len(instances), implied, len(instances) - implied, "100%")],
            ),
        )

        def decide_all_fd():
            return sum(implies_fd(c, t) for c, t in instances)

        assert benchmark(decide_all_fd) == implied

    def test_polynomial_vs_exponential_separation(self, benchmark):
        rows = []
        for n in (6, 10, 14, 18):
            ground = GroundSet([f"a{i}" for i in range(n)])
            rng = random.Random(2000 + n)
            instances = _singleton_instances(ground, rng, 30)
            t0 = time.perf_counter()
            fd_answers = [implies_fd(c, t) for c, t in instances]
            t_fd = (time.perf_counter() - t0) * 1e3 / len(instances)
            if n <= 14:
                t0 = time.perf_counter()
                lat_answers = [implies_lattice(c, t) for c, t in instances]
                t_lat = (time.perf_counter() - t0) * 1e3 / len(instances)
                assert fd_answers == lat_answers
                lat_cell = f"{t_lat:.3f}"
            else:
                lat_cell = "(skipped: exponential)"
            rows.append((n, f"{t_fd:.4f}", lat_cell))
        report(
            "E8_fd_subclass_scaling",
            "ms/query: P-time closure vs exponential lattice decider",
            format_table(["|S|", "closure (ms)", "lattice (ms)"], rows),
        )

        # the closure decider handles a 40-attribute schema comfortably
        big = GroundSet([f"a{i}" for i in range(40)])
        rng = random.Random(4242)
        big_instances = _singleton_instances(big, rng, 50)

        def decide_big():
            return sum(implies_fd(c, t) for c, t in big_instances)

        count = benchmark(decide_big)
        assert 0 <= count <= len(big_instances)
