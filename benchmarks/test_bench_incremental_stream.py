"""E16 -- incremental streaming: per-delta latency vs full recompute.

The incremental engine maintains density, support and differential
tables under single-row deltas (``O(2^n)`` vectorized / ``O(2^|U|)``
scalar per row) with per-delta constraint monitoring, where a
non-incremental system rebuilds every table (``O(n * 2^n)`` each) and
rescans every constraint's lattice per change.  The regenerated table
reports per-delta latency for both on matched instances at
``|S| in {8, 12, 16}`` on both backends; the acceptance row is the
``>= 10x`` speedup at ``|S| = 16``.
"""

import random
import time

from repro.core import GroundSet
from repro.engine import IncrementalEvalContext, recompute_tables, shared_cache
from repro.engine.backends import backend_by_name
from repro.instances import random_constraint

from _harness import format_table, report

N_CONSTRAINTS = 4
N_SEED_ROWS = 32
N_DELTAS_INCREMENTAL = 200


def _instance(n: int, backend_name: str):
    """A seeded instance: ground set, constraints, density, delta stream."""
    ground = GroundSet([f"x{i}" for i in range(n)])
    rng = random.Random(1600 + n)
    constraints = [
        random_constraint(rng, ground, max_members=2, min_members=1)
        for _ in range(N_CONSTRAINTS)
    ]
    density = {}
    for _ in range(N_SEED_ROWS):
        mask = rng.randrange(1 << n)
        density[mask] = density.get(mask, 0) + rng.randint(1, 3)
    deltas = [
        (rng.randrange(1 << n), rng.choice([-1, 1, 1]))
        for _ in range(N_DELTAS_INCREMENTAL)
    ]
    return ground, constraints, density, deltas


def _context(ground, constraints, density, backend):
    ctx = IncrementalEvalContext(
        ground, density=density, constraints=constraints, backend=backend
    )
    ctx.support_table()
    for c in constraints:
        ctx.differential_table(c.family)
    return ctx


def _time_incremental(ground, constraints, density, deltas, backend) -> float:
    ctx = _context(ground, constraints, density, backend)
    t0 = time.perf_counter()
    for mask, delta in deltas:
        ctx.apply_delta(mask, delta)
    return (time.perf_counter() - t0) / len(deltas)


def _time_full(n, constraints, density, deltas, backend, rounds) -> float:
    """Per-change cost of the non-incremental system: rebuild density,
    support and all differential tables, then rescan each constraint's
    lattice for nonzero density.  (Generously reuses the cached boolean
    lattice tables -- those are structural and delta-independent.)"""
    cache = shared_cache()
    families = [c.family.members for c in constraints]
    running = dict(density)
    total = 0.0
    for mask, delta in deltas[:rounds]:
        running[mask] = running.get(mask, 0) + delta
        t0 = time.perf_counter()
        dens, support, diffs = recompute_tables(
            n, running.items(), families, backend
        )
        for c in constraints:
            backend.any_nonzero_where(dens, cache.lattice_table(c), 1e-9)
        total += time.perf_counter() - t0
    return total / rounds


class TestIncrementalStream:
    def test_per_delta_latency_vs_full_recompute(self, benchmark):
        rows = []
        speedups = {}
        for n in (8, 12, 16):
            for backend_name in ("exact", "float"):
                backend = backend_by_name(backend_name)
                ground, constraints, density, deltas = _instance(n, backend_name)
                t_incr = _time_incremental(
                    ground, constraints, density, deltas, backend
                )
                rounds = 3 if (n == 16 and backend.exact) else 5
                t_full = _time_full(
                    n, constraints, density, deltas, backend, rounds
                )
                speedup = t_full / t_incr
                speedups[(n, backend_name)] = speedup
                rows.append(
                    (
                        n,
                        backend_name,
                        f"{t_incr * 1e3:.4f}",
                        f"{t_full * 1e3:.3f}",
                        f"{speedup:.1f}x",
                    )
                )
        report(
            "E16_incremental_stream",
            "per-delta latency: incremental maintenance vs full recompute",
            format_table(
                [
                    "|S|",
                    "backend",
                    "incremental (ms/delta)",
                    "full recompute (ms/delta)",
                    "speedup",
                ],
                rows,
            ),
        )
        # acceptance: >= 10x at |S| = 16 on both backends
        assert speedups[(16, "exact")] >= 10
        assert speedups[(16, "float")] >= 10

        # pytest-benchmark row: the steady-state single-delta hot path
        ground, constraints, density, deltas = _instance(16, "float")
        ctx = _context(ground, constraints, density, backend_by_name("float"))
        state = {"i": 0}

        def one_delta():
            mask, delta = deltas[state["i"] % len(deltas)]
            state["i"] += 1
            ctx.apply_delta(mask, delta)

        benchmark(one_delta)

    def test_streamed_state_matches_recompute(self):
        """The timed stream ends in exactly the recomputed state."""
        for backend_name in ("exact", "float"):
            backend = backend_by_name(backend_name)
            ground, constraints, density, deltas = _instance(12, backend_name)
            ctx = _context(ground, constraints, density, backend)
            for mask, delta in deltas:
                ctx.apply_delta(mask, delta)
            families = [c.family.members for c in constraints]
            dens, support, diffs = recompute_tables(
                12, ctx.density_items(), families, backend
            )
            assert list(ctx.density_table()) == list(dens)
            assert list(ctx.support_table()) == list(support)
            for c, want in zip(constraints, diffs):
                assert list(ctx.differential_table(c.family)) == list(want)
