"""E20 -- vectorized exact backend vs list-exact vs float.

The vectorized exact backend (``exact-vec``) stores density/support/
differential tables as numpy int64 arrays and runs the four zeta/Mobius
butterflies as strided slice adds, promoting to object dtype the moment
an entry could overflow -- same results as the list-exact backend
(byte-identical, property-tested in
``tests/properties/test_vec_exact_equivalence.py``), vectorized cost.

Two measured phases on the E5/E16 workload shapes:

* ``rebuild`` -- full table rebuild through ``recompute_tables``
  (density scatter + support zeta + one differential per constraint
  family), the E5-shaped cold path, at ``|S| in {12, 16}``;
* ``per-delta`` -- steady-state single-row deltas through
  ``IncrementalEvalContext.apply_delta`` (the E16-shaped hot path) at
  ``|S| = 16``.

Acceptance floor: ``exact-vec`` rebuilds ``>= 10x`` faster than
list-exact at ``|S| = 16``.  The ``vs exact`` column makes every row's
speedup over the list-exact baseline explicit; float rows bound how
much exactness costs.
"""

import random
import time

from repro.core import GroundSet
from repro.engine import IncrementalEvalContext, recompute_tables
from repro.engine.backends import backend_by_name
from repro.instances import random_constraint

from _harness import format_table, report

N_CONSTRAINTS = 4
N_SEED_ROWS = 256
N_DELTAS = 200
N_DELTA = 16
REBUILD_SHAPES = (12, 16)
BACKENDS = ("exact", "exact-vec", "float")
#: Best-of rounds per rebuild measurement; list-exact at |S| = 16 is
#: the expensive cell (~hundreds of ms per rebuild), so keep it small.
REBUILD_ROUNDS = {"exact": 3, "exact-vec": 5, "float": 5}
FLOOR = 10.0


def _instance(n: int):
    """A seeded instance: ground set, constraints, density, delta stream."""
    ground = GroundSet([f"x{i}" for i in range(n)])
    rng = random.Random(2000 + n)
    constraints = [
        random_constraint(rng, ground, max_members=2, min_members=1)
        for _ in range(N_CONSTRAINTS)
    ]
    density = {}
    for _ in range(N_SEED_ROWS):
        mask = rng.randrange(1 << n)
        density[mask] = density.get(mask, 0) + rng.randint(1, 3)
    deltas = [
        (rng.randrange(1 << n), rng.choice([-1, 1, 1]))
        for _ in range(N_DELTAS)
    ]
    return ground, constraints, density, deltas


def _time_rebuild(n, families, density, backend) -> float:
    best = None
    for _ in range(REBUILD_ROUNDS[backend.name]):
        t0 = time.perf_counter()
        recompute_tables(n, density.items(), families, backend)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _time_per_delta(ground, constraints, density, deltas, backend) -> float:
    ctx = IncrementalEvalContext(
        ground, density=density, constraints=constraints, backend=backend
    )
    ctx.support_table()
    for c in constraints:
        ctx.differential_table(c.family)
    t0 = time.perf_counter()
    for mask, delta in deltas:
        ctx.apply_delta(mask, delta)
    return (time.perf_counter() - t0) / len(deltas)


class TestExactVec:
    def test_rebuild_and_delta_speedups(self, benchmark):
        rows = []
        rebuild = {}
        for n in REBUILD_SHAPES:
            ground, constraints, density, deltas = _instance(n)
            families = [c.family.members for c in constraints]
            for backend_name in BACKENDS:
                backend = backend_by_name(backend_name)
                rebuild[(n, backend_name)] = _time_rebuild(
                    n, families, density, backend
                )
            # noisy-neighbor guard: a floor miss gets one clean re-run
            if (
                n == N_DELTA
                and rebuild[(n, "exact")] / rebuild[(n, "exact-vec")] < FLOOR
            ):
                for backend_name in ("exact", "exact-vec"):
                    rebuild[(n, backend_name)] = min(
                        rebuild[(n, backend_name)],
                        _time_rebuild(
                            n, families, density, backend_by_name(backend_name)
                        ),
                    )
            for backend_name in BACKENDS:
                t = rebuild[(n, backend_name)]
                rows.append(
                    (
                        "rebuild",
                        n,
                        backend_name,
                        f"{t * 1e3:.3f}",
                        f"{rebuild[(n, 'exact')] / t:.1f}x",
                    )
                )
            # the timed rebuilds agree entry for entry (exactness is
            # the whole point; float only has to be close)
            want = recompute_tables(
                n, density.items(), families, backend_by_name("exact")
            )
            got = recompute_tables(
                n, density.items(), families, backend_by_name("exact-vec")
            )
            assert list(got[0]) == list(want[0])
            assert list(got[1]) == list(want[1])
            for got_diff, want_diff in zip(got[2], want[2]):
                assert list(got_diff) == list(want_diff)

        ground, constraints, density, deltas = _instance(N_DELTA)
        per_delta = {}
        for backend_name in BACKENDS:
            backend = backend_by_name(backend_name)
            per_delta[backend_name] = _time_per_delta(
                ground, constraints, density, deltas, backend
            )
        for backend_name in BACKENDS:
            t = per_delta[backend_name]
            rows.append(
                (
                    "per-delta",
                    N_DELTA,
                    backend_name,
                    f"{t * 1e3:.4f}",
                    f"{per_delta['exact'] / t:.1f}x",
                )
            )

        lines = format_table(
            ["phase", "|S|", "backend", "time (ms)", "vs exact"],
            rows,
        )
        lines.append(
            f"workload: {N_CONSTRAINTS} constraint families, "
            f"{N_SEED_ROWS} seeded rows; rebuild = density scatter + "
            "support zeta + differentials (best-of-N), per-delta = "
            f"mean over {N_DELTAS} single-row deltas"
        )
        speedup = rebuild[(N_DELTA, "exact")] / rebuild[(N_DELTA, "exact-vec")]
        lines.append(
            f"acceptance floor (rebuild, |S|={N_DELTA}): exact-vec >= "
            f"{FLOOR:.0f}x over list-exact -- measured {speedup:.1f}x"
        )
        report(
            "E20_exact_vec",
            "vectorized exact backend vs list-exact vs float",
            lines,
        )
        assert speedup >= FLOOR

        # pytest-benchmark row: the vectorized rebuild hot path
        ground, constraints, density, _ = _instance(12)
        families = [c.family.members for c in constraints]
        vec = backend_by_name("exact-vec")
        benchmark(lambda: recompute_tables(12, density.items(), families, vec))
