"""Documentation stays executable: run the code blocks in the docs.

Extracts every ```python fenced block from README.md, docs/TUTORIAL.md,
docs/ARCHITECTURE.md and docs/OPERATIONS.md and executes them
cumulatively in one namespace per file, so the documented snippets can
never drift from the library.
"""

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path):
    with open(path) as fh:
        text = fh.read()
    return _FENCE.findall(text)


def _run_blocks(path):
    namespace = {}
    blocks = _python_blocks(path)
    assert blocks, f"no python blocks found in {path}"
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path}#block{i}", "exec"), namespace)
        except Exception as err:  # pragma: no cover - the assert explains
            raise AssertionError(
                f"documentation block {i} in {os.path.basename(path)} "
                f"failed: {err}\n--- block ---\n{block}"
            ) from err
    return namespace


class TestReadme:
    def test_quickstart_block_runs(self):
        namespace = _run_blocks(os.path.join(ROOT, "README.md"))
        assert "proof" in namespace

    def test_quickstart_claims_true(self):
        namespace = _run_blocks(os.path.join(ROOT, "README.md"))
        C = namespace["C"]
        assert C.implies("A -> CD") is True
        assert C.implies("C -> A") is False


class TestTutorial:
    def test_all_blocks_run(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "TUTORIAL.md"))
        # spot-check a few documented claims
        assert namespace["f"]("A") == 3
        assert namespace["C"].implies("A -> CD") is True
        assert namespace["proof"].conclusion is not None

    def test_tutorial_mentions_every_subpackage(self):
        with open(os.path.join(ROOT, "docs", "TUTORIAL.md")) as fh:
            text = fh.read()
        for package in ("repro.core", "repro.fis", "repro.relational",
                        "repro.logic", "repro.measures", "repro.equivalence",
                        "repro.engine"):
            assert package in text, package

    def test_streaming_section_exercises_the_session(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "TUTORIAL.md"))
        session = namespace["session"]
        assert session.transactions == 2
        assert session.violated_constraints() == ()
        assert namespace["checker"].violated_fds() == ()

    def test_scaling_section_exercises_shards_and_server(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "TUTORIAL.md"))
        shard_ctx = namespace["shard_ctx"]
        assert shard_ctx.shards == 3
        assert list(shard_ctx.merged_density_table()) == list(
            shard_ctx.density_table()
        )
        assert namespace["server_answers"][0] is True
        assert namespace["server_stats"].requests == 3

    def test_service_section_exercises_durability_and_the_wire(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "TUTORIAL.md"))
        # the durable session recovered the acknowledged stream
        assert namespace["recovered_support"] == 4
        assert namespace["reopened"].transactions == 2
        # the wire protocol served a delta that flipped a status
        assert namespace["client_violations"] == ["A -> {B}"]
        assert namespace["client_stats"]["requests"] >= 2
        # and the tutorial removed its own data dir
        assert not os.path.exists(namespace["data_dir"])


class TestArchitecture:
    def test_all_blocks_run(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "ARCHITECTURE.md"))
        # the planner examples resolved the documented tiers
        assert namespace["one_shot"].tier == "batched"
        assert namespace["streaming"].tier == "incremental"
        # the ring examples exercised the fleet layer
        assert namespace["ring"].route("tenant-a") in {0, 1, 2, 3}
        # the shipping example recovered both acknowledged transactions
        assert namespace["recovered"].tx == 2

    def test_page_covers_every_engine_module(self):
        with open(os.path.join(ROOT, "docs", "ARCHITECTURE.md")) as fh:
            text = fh.read()
        for module in ("batch", "backends", "decider", "context", "plan",
                       "calibrate", "incremental", "stream", "shard",
                       "parallel", "server", "persist", "net", "quota",
                       "fleet"):
            assert f"repro.engine.{module}" in text, module


class TestOperations:
    def test_all_blocks_run(self):
        namespace = _run_blocks(os.path.join(ROOT, "docs", "OPERATIONS.md"))
        # the quota example showed the /stats block operators read
        assert namespace["stats"]["tenants"]["acme"]["admitted"] == 1
        # the takeover example recovered exactly the acknowledged prefix
        assert namespace["acknowledged"] == 2

    def test_runbook_documents_the_status_codes(self):
        with open(os.path.join(ROOT, "docs", "OPERATIONS.md")) as fh:
            text = fh.read()
        for needle in ("429", "503", "Retry-After", "--takeover",
                       "--ship-to", "/healthz", "/stats",
                       "--quota-rate", "--snapshot-every", "--fsync"):
            assert needle in text, needle


class TestShardedServiceExample:
    def test_example_runs_end_to_end(self, capsys):
        import runpy

        runpy.run_path(
            os.path.join(ROOT, "examples", "sharded_service.py"),
            run_name="__main__",
        )
        out = capsys.readouterr().out
        assert "shards" in out
        assert "IMPLIED" in out or "implied" in out


class TestDurableServiceExample:
    def test_example_runs_end_to_end(self, capsys):
        import runpy

        runpy.run_path(
            os.path.join(ROOT, "examples", "durable_service.py"),
            run_name="__main__",
        )
        out = capsys.readouterr().out
        assert "recovered answers match the acknowledged state" in out
        assert "streamed on after recovery" in out
        assert "done (data dir removed)" in out
