"""Robustness beyond dense tables: ground sets with 24-40 elements.

Dense ``2^|S|`` tables are capped at |S| = 22; everything here must run
through the sparse-density and SAT code paths only.
"""

import random

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SparseDensityFunction,
    decide,
    differential_via_density,
    differential_value,
    find_uncovered_sat,
    implies_sat,
    sparse_principal_ideal_function,
)
from repro.fis import BasketDatabase


@pytest.fixture
def big() -> GroundSet:
    return GroundSet([f"item{i}" for i in range(30)])


@pytest.fixture
def big_rng() -> random.Random:
    return random.Random(0xB16)


def _random_mask(rng, ground, p=0.2):
    mask = 0
    for bit in range(ground.size):
        if rng.random() < p:
            mask |= 1 << bit
    return mask


class TestSparseFunctions:
    def test_values_without_dense_tables(self, big, big_rng):
        density = {
            _random_mask(big_rng, big, 0.3): big_rng.randint(1, 5)
            for _ in range(20)
        }
        f = SparseDensityFunction(big, density)
        import repro.core.subsets as sb

        for _ in range(30):
            x = _random_mask(big_rng, big, 0.15)
            expected = sum(
                v for u, v in density.items() if sb.is_subset(x, u)
            )
            assert f.value(x) == expected

    def test_differential_on_sparse(self, big, big_rng):
        density = {
            _random_mask(big_rng, big, 0.3): 1 for _ in range(15)
        }
        f = SparseDensityFunction(big, density)
        family = SetFamily(
            big, [_random_mask(big_rng, big, 0.1) or 1 for _ in range(2)]
        )
        x = _random_mask(big_rng, big, 0.1)
        direct = differential_value(f, family, x)
        via_density = differential_via_density(f, family, x)
        assert direct == via_density

    def test_constraint_satisfaction_scales(self, big, big_rng):
        baskets = [_random_mask(big_rng, big, 0.25) for _ in range(200)]
        db = BasketDatabase(big, baskets)
        f = db.support_function()
        for _ in range(20):
            lhs = _random_mask(big_rng, big, 0.1)
            family = SetFamily(
                big, [_random_mask(big_rng, big, 0.1) or 1 for _ in range(2)]
            )
            c = DifferentialConstraint(big, lhs, family)
            # the density-items scan must agree with a direct check
            want = not any(
                c.lattice_contains(u)
                for u, v in f.density_items()
                if v != 0
            )
            assert c.satisfied_by(f) == want


class TestSatDecider:
    def test_implication_at_30_items(self, big, big_rng):
        constraints = []
        for _ in range(4):
            lhs = _random_mask(big_rng, big, 0.1)
            members = [_random_mask(big_rng, big, 0.1) or 1 for _ in range(2)]
            constraints.append(
                DifferentialConstraint(big, lhs, SetFamily(big, members))
            )
        cset = ConstraintSet(big, constraints)
        # every constraint implies itself and its augmentations
        for c in constraints:
            assert implies_sat(cset, c)
            augmented = DifferentialConstraint(
                big, c.lhs | 0b1011, c.family
            )
            assert implies_sat(cset, augmented)

    def test_auto_routes_to_sat(self, big, big_rng):
        lhs = _random_mask(big_rng, big, 0.1)
        member = _random_mask(big_rng, big, 0.1) | 1
        c = DifferentialConstraint(big, lhs, SetFamily(big, [member]))
        weaker = DifferentialConstraint(
            big, lhs, SetFamily(big, [member, 1 << 29])
        )
        # auto on a non-dense-capable ground set must still answer
        assert decide(ConstraintSet(big, [c]), weaker, "auto")

    def test_sat_counterexample_is_genuine(self, big, big_rng):
        a = DifferentialConstraint(big, 0b1, SetFamily(big, [0b10]))
        b = DifferentialConstraint(big, 0b10, SetFamily(big, [0b1]))
        cset = ConstraintSet(big, [a])
        u = find_uncovered_sat(cset, b)
        assert u is not None
        assert b.lattice_contains(u)
        assert not cset.lattice_contains(u)
        # and the Theorem 3.5 function built from it separates them
        f = sparse_principal_ideal_function(big, u)
        assert cset.satisfied_by(f)
        assert not b.satisfied_by(f)

    def test_fd_fragment_at_40_attributes(self):
        ground = GroundSet([f"a{i}" for i in range(40)])
        rng = random.Random(9)
        constraints = []
        for _ in range(6):
            lhs = _random_mask(rng, ground, 0.08)
            rhs = _random_mask(rng, ground, 0.08)
            constraints.append(
                DifferentialConstraint(ground, lhs, SetFamily(ground, [rhs]))
            )
        cset = ConstraintSet(ground, constraints)
        for c in constraints:
            assert decide(cset, c, "fd")
            assert decide(cset, c, "auto")


class TestDenseGuard:
    def test_dense_support_function_guarded(self, big, big_rng):
        """Materializing 2^30 floats must be refused, not attempted."""
        db = BasketDatabase(big, [0b111])
        with pytest.raises(Exception):
            db.dense_support_function()
