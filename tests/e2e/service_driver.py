#!/usr/bin/env python
"""End-to-end driver for the CI ``service-e2e`` job.

This script exercises the *binary*, not the library: it spawns
``python -m repro serve --port 0 --data-dir ...`` as a real subprocess,
drives it over the wire with :class:`repro.engine.net.ReproClient`
(implication queries, instance checks, streamed deltas, support
probes), then kills the process with **SIGKILL** mid-stream -- no
drain, no snapshot -- restarts it on the same data directory and
asserts every recovered answer matches the state the client had
acknowledged before the crash.  A final graceful shutdown must exit 0.

Run:  PYTHONPATH=src python tests/e2e/service_driver.py

Exits 0 on success, 1 on any mismatch (with a diagnostic), so the CI
job fails loudly.  No pytest involvement by design: this is the first
check that boots the shipped entry point end to end.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.engine.net import ReproClient, ServiceError  # noqa: E402

CONSTRAINTS = """\
ABCD
A -> B
B -> CD
"""

LISTENING = re.compile(r"# listening on ([\d.]+):(\d+)")


def shm_segments() -> set:
    """Names of POSIX shared-memory segments currently in ``/dev/shm``."""
    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith("psm_")}
    except (FileNotFoundError, PermissionError):
        return set()


def shm_orphans(baseline: set, timeout: float = 5.0) -> set:
    """Segments that appeared since ``baseline`` and refuse to drain.

    A SIGKILLed process cannot unlink its published segments itself;
    the survivors (executor backstops, resource trackers) get a short
    settle window before a leftover counts as a leak.
    """
    deadline = time.monotonic() + timeout
    orphans = shm_segments() - baseline
    while orphans and time.monotonic() < deadline:
        time.sleep(0.25)
        orphans = shm_segments() - baseline
    return orphans


def boot(constraint_path: str, data_dir: str):
    """Spawn ``repro serve`` and wait for its listening line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", constraint_path,
            "--port", "0", "--host", "127.0.0.1",
            "--data-dir", data_dir, "--snapshot-every", "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"[server] {line}")
        match = LISTENING.search(line)
        if match:
            port = int(match.group(2))
            break
    if port is None:
        proc.kill()
        raise SystemExit("FAIL: server never printed its listening line")
    client = ReproClient("127.0.0.1", port, timeout=30)
    client.wait_ready(timeout=30)
    return proc, client


def observe(client: ReproClient) -> dict:
    """Everything the client can see about the live state."""
    return {
        "transactions": client.health()["transactions"],
        "violated": client.health()["violated"],
        "probes": {
            subset: client.probe(subset)
            for subset in ("A", "AB", "ABC", "CD", "D", "0")
        },
        "checks": {
            text: client.check(text)
            for text in ("A -> B", "B -> CD", "AB -> C")
        },
        "implies": {
            text: client.implies(text)
            for text in ("A -> CD", "C -> A", "AB -> D")
        },
    }


def main() -> int:
    failures = 0

    def expect(condition: bool, message: str) -> None:
        nonlocal failures
        status = "ok" if condition else "FAIL"
        print(f"[driver] {status}: {message}")
        if not condition:
            failures += 1

    with tempfile.TemporaryDirectory() as tmp:
        constraint_path = os.path.join(tmp, "constraints.txt")
        with open(constraint_path, "w") as fh:
            fh.write(CONSTRAINTS)
        data_dir = os.path.join(tmp, "data")
        shm_baseline = shm_segments()

        # --- phase 1: boot fresh, drive the protocol ------------------
        proc, client = boot(constraint_path, data_dir)
        expect(client.implies("A -> CD") is True, "C |= A -> CD")
        expect(client.implies("C -> A") is False, "C |/= C -> A")
        for i in range(7):
            report = client.delta([f"+ AB {i + 1}"])
            expect(report["tx"] == i + 1, f"tx {i + 1} committed")
        report = client.delta(["+ ABC", "+ CD 2"])
        expect(
            report["newly_violated"] == [],
            "in-lattice-free batch flips nothing",
        )
        report = client.delta(["+ A"])
        expect(
            "A -> {B}" in report["newly_violated"],
            "bare-A row newly violates A -> B",
        )
        stats = client.stats()
        expect(stats["requests"] > 0, "microbatcher served the checks")

        # --- phase 2: SIGKILL mid-stream ------------------------------
        pre = observe(client)
        print(f"[driver] pre-kill observation: {pre}")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        expect(proc.returncode == -signal.SIGKILL, "server died by SIGKILL")
        try:
            client.health()
            expect(False, "port actually went dark")
        except ServiceError:
            expect(True, "port actually went dark")
        orphans = shm_orphans(shm_baseline)
        expect(
            not orphans,
            f"no orphan shm segments after SIGKILL (found {sorted(orphans)})",
        )

        # --- phase 3: restart on the same data dir --------------------
        proc2, client2 = boot(constraint_path, data_dir)
        post = observe(client2)
        print(f"[driver] post-recovery observation: {post}")
        expect(
            post == pre,
            "recovered answers match the acknowledged pre-kill state",
        )

        # --- phase 4: the recovered instance still streams ------------
        report = client2.delta(["- A"])
        expect(
            "A -> {B}" in report["restored"],
            "recovered session keeps flipping statuses",
        )
        expect(
            report["tx"] == pre["transactions"] + 1,
            "transaction numbering continues, not restarts",
        )
        client2.snapshot()

        # --- phase 5: graceful shutdown exits 0 -----------------------
        client2.shutdown()
        rc = proc2.wait(timeout=60)
        tail = proc2.stdout.read()
        for line in tail.splitlines():
            print(f"[server] {line}")
        expect(rc == 0, f"graceful shutdown exit code is 0 (got {rc})")

        # --- phase 6: a third boot sees the drained state -------------
        proc3, client3 = boot(constraint_path, data_dir)
        expect(
            client3.health()["transactions"] == pre["transactions"] + 1,
            "third boot recovers the post-restart stream",
        )
        expect(client3.check("A -> B") is True, "restored status persisted")
        client3.shutdown()
        expect(proc3.wait(timeout=60) == 0, "third boot drains cleanly")
        orphans = shm_orphans(shm_baseline)
        expect(
            not orphans,
            f"no orphan shm segments after the full run "
            f"(found {sorted(orphans)})",
        )

    if failures:
        print(f"[driver] {failures} check(s) FAILED")
        return 1
    print("[driver] service-e2e PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
