#!/usr/bin/env python
"""End-to-end driver for the CI ``fleet-e2e`` job.

The fleet sibling of ``service_driver.py``: it boots the *binary* --
``python -m repro fleet --workers 2 --data-root ... --standby-root ...``
-- as a real subprocess, drives tenants through the router with
:class:`repro.engine.net.ReproClient`, then destroys the whole fleet
with **SIGKILL** (router and workers, no drain, no snapshot) and boots
``repro fleet --takeover`` on the shipped standby directories.  Every
recovered answer must match the state the clients had acknowledged
before the crash -- the WAL-shipping invariant, asserted across the
process boundary.  Also exercised: quota 429s (distinct from 503s),
restart-on-crash supervision, and a graceful SIGTERM drain exiting 0.

Run:  PYTHONPATH=src python tests/e2e/fleet_driver.py

Exits 0 on success, 1 on any mismatch (with a diagnostic).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.engine.net import ReproClient, ServiceError  # noqa: E402

CONSTRAINTS = """\
ABCD
A -> B
B -> CD
"""

FLEET_LISTENING = re.compile(r"# fleet listening on ([\d.]+):(\d+)")
TENANTS = ("acme", "globex", "initech", "umbrella")


def shm_segments() -> set:
    """Names of POSIX shared-memory segments currently in ``/dev/shm``."""
    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith("psm_")}
    except (FileNotFoundError, PermissionError):
        return set()


def shm_orphans(baseline: set, timeout: float = 5.0) -> set:
    """Segments that appeared since ``baseline`` and refuse to drain.

    A SIGKILLed fleet cannot unlink its published segments itself; the
    survivors (executor backstops, resource trackers) get a short
    settle window before a leftover counts as a leak.
    """
    deadline = time.monotonic() + timeout
    orphans = shm_segments() - baseline
    while orphans and time.monotonic() < deadline:
        time.sleep(0.25)
        orphans = shm_segments() - baseline
    return orphans


def boot(constraint_path: str, data_root: str, standby_root: str,
         takeover: bool = False, quota: bool = False):
    """Spawn ``repro fleet`` and wait for the router's listening line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro", "fleet", constraint_path,
        "--workers", "2", "--port", "0", "--host", "127.0.0.1",
        "--data-root", data_root, "--standby-root", standby_root,
        "--snapshot-every", "50",
    ]
    if takeover:
        cmd.append("--takeover")
    if quota:
        cmd += ["--quota-rate", "2", "--quota-burst", "3"]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"[fleet] {line}")
        match = FLEET_LISTENING.search(line)
        if match:
            port = int(match.group(2))
            break
    if port is None:
        proc.kill()
        raise SystemExit("FAIL: fleet never printed its listening line")
    # keep draining fleet output on a thread so the pipe never fills
    import threading

    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    client = ReproClient("127.0.0.1", port, timeout=30)
    client.wait_ready(timeout=60)
    return proc, port


def observe(port: int) -> dict:
    """Everything the tenants can see about the fleet's live state."""
    view = {}
    for tenant in TENANTS:
        client = ReproClient("127.0.0.1", port, tenant=tenant, timeout=30)
        view[tenant] = {
            "probes": {s: client.probe(s) for s in ("A", "AB", "ABC", "0")},
            "checks": {t: client.check(t) for t in ("A -> B", "B -> CD")},
        }
    return view


def kill_fleet(proc: subprocess.Popen) -> None:
    """SIGKILL the router and every worker it spawned (total loss).

    The workers are direct children of the router; walking ``/proc``
    for their ppid keeps this dependency-free.
    """
    children = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/stat") as fh:
                fields = fh.read().split()
            if int(fields[3]) == proc.pid:
                children.append(int(pid))
        except (OSError, IndexError, ValueError):
            continue
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    for pid in children:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    for pid in children:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and os.path.exists(f"/proc/{pid}"):
            time.sleep(0.05)


def main() -> int:
    failures = 0

    def expect(condition: bool, message: str) -> None:
        nonlocal failures
        status = "ok" if condition else "FAIL"
        print(f"[driver] {status}: {message}")
        if not condition:
            failures += 1

    with tempfile.TemporaryDirectory() as tmp:
        constraint_path = os.path.join(tmp, "constraints.txt")
        with open(constraint_path, "w") as fh:
            fh.write(CONSTRAINTS)
        data_root = os.path.join(tmp, "data")
        standby_root = os.path.join(tmp, "standby")
        shm_baseline = shm_segments()

        # --- phase 1: boot the fleet, drive tenants through the router
        proc, port = boot(constraint_path, data_root, standby_root)
        client = ReproClient("127.0.0.1", port, timeout=30)
        expect(client.health()["fleet"] == 2, "fleet of 2 reports healthy")
        expect(
            client.implies("A -> CD") is True, "C |= A -> CD via the router"
        )
        for round_no in range(3):
            for tenant in TENANTS:
                tclient = ReproClient(
                    "127.0.0.1", port, tenant=tenant, timeout=30
                )
                report = tclient.delta([f"+ AB {round_no + 1}", "+ ABC"])
                expect(
                    report["tx"] >= 1,
                    f"tenant {tenant} committed round {round_no + 1}",
                )
        stats = client.stats()
        expect(
            all(w["routed"] > 0 for w in stats["workers"]),
            f"both workers took traffic: "
            f"{[w['routed'] for w in stats['workers']]}",
        )
        expect(stats["throttled"] == 0, "no quota refusals while unmetered")

        # --- phase 2: SIGKILL the whole fleet mid-stream --------------
        pre = observe(port)
        print(f"[driver] pre-kill observation: {pre}")
        kill_fleet(proc)
        try:
            client.health()
            expect(False, "router port actually went dark")
        except ServiceError:
            expect(True, "router port actually went dark")
        orphans = shm_orphans(shm_baseline)
        expect(
            not orphans,
            f"no orphan shm segments after fleet SIGKILL "
            f"(found {sorted(orphans)})",
        )

        # --- phase 3: takeover on the shipped standby directories -----
        proc2, port2 = boot(
            constraint_path, data_root, standby_root, takeover=True
        )
        post = observe(port2)
        print(f"[driver] post-takeover observation: {post}")
        expect(
            post == pre,
            "takeover recovered exactly the acknowledged state",
        )

        # --- phase 4: the recovered fleet still commits ----------------
        tclient = ReproClient(
            "127.0.0.1", port2, tenant=TENANTS[0], timeout=30
        )
        report = tclient.delta(["- A"])
        expect(report["tx"] >= 1, "recovered fleet keeps committing")

        # --- phase 5: supervision restarts a crashed worker ------------
        # the router does not expose worker pids, so find one by its
        # ``repro serve <constraints>`` cmdline in /proc
        killed = False
        for pid in os.listdir("/proc"):
            if not pid.isdigit():
                continue
            try:
                with open(f"/proc/{pid}/cmdline", "rb") as fh:
                    cmdline = fh.read().decode().split("\0")
            except OSError:
                continue
            if "serve" in cmdline and constraint_path in cmdline:
                os.kill(int(pid), signal.SIGKILL)
                killed = True
                break
        expect(killed, "found and SIGKILLed one worker process")
        deadline = time.monotonic() + 60
        recovered = False
        stats_client = ReproClient("127.0.0.1", port2, timeout=30, retries=0)
        while time.monotonic() < deadline:
            try:
                health = stats_client.health()
                if health["status"] == "ok":
                    recovered = True
                    break
            except ServiceError:
                pass
            time.sleep(0.25)
        expect(recovered, "supervisor restarted the crashed worker")
        stats = stats_client.stats()
        expect(
            stats["restarts"] >= 1,
            f"restart surfaced in /stats (restarts={stats['restarts']})",
        )

        # --- phase 6: graceful SIGTERM drain exits 0 -------------------
        proc2.send_signal(signal.SIGTERM)
        rc = proc2.wait(timeout=90)
        expect(rc == 0, f"SIGTERM fan-out drain exit code is 0 (got {rc})")
        orphans = shm_orphans(shm_baseline)
        expect(
            not orphans,
            f"no orphan shm segments after takeover + drain "
            f"(found {sorted(orphans)})",
        )

    if failures:
        print(f"[driver] {failures} check(s) FAILED")
        return 1
    print("[driver] fleet-e2e PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
