"""Regression tests for the documented discrepancies in the printed paper.

DESIGN.md §2 and EXPERIMENTS.md (E6) record places where the printed text
(a ResearchGate OCR of the PODS 2005 paper) cannot be read literally.
These tests pin each discrepancy down: they show the literal reading
contradicts the paper's own worked examples (so our corrected reading is
forced), and they lock in the corrected behaviour.
"""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    differential_value,
    iter_lattice,
    witnesses,
)
from repro.core import subsets as sb


class TestDefinition26Interval:
    """The printed 'L(X,Y) = union of [X, W]' must be '[X, S-W]'."""

    def test_literal_reading_contradicts_example_27(self, ground_abcd):
        s = ground_abcd
        family = SetFamily.of(s, "B", "CD")
        x = s.parse("A")
        # literal reading: union of [X, W] over witnesses W
        literal = set()
        for w in witnesses(family):
            literal.update(sb.iter_interval(x, w))
        # the paper's Example 2.7 output
        example_27 = {s.parse(u) for u in ("A", "AC", "AD")}
        assert literal != example_27  # the literal reading is wrong...
        assert literal == set()  # ...(A is inside no witness: all empty)

    def test_corrected_reading_matches_example_27(self, ground_abcd):
        s = ground_abcd
        family = SetFamily.of(s, "B", "CD")
        x = s.parse("A")
        corrected = set()
        for w in witnesses(family):
            corrected.update(sb.iter_interval(x, s.complement(w)))
        assert corrected == {s.parse(u) for u in ("A", "AC", "AD")}
        assert corrected == set(iter_lattice(x, family, s))


class TestDefinition21DensityFamily:
    """The printed 'd_f(X) = D^{{y}|y in X}_f(X)' must range over the
    complement of X (Example 2.2 shows D^{B,C,D} at A over S=ABCD)."""

    def test_literal_reading_contradicts_example_24(self, ground_abcd, rng):
        from repro.instances import random_set_function

        s = ground_abcd
        f = random_set_function(rng, s)
        x = s.parse("A")
        literal_family = SetFamily.singletons_of(s, x)  # over X itself
        literal = differential_value(f, literal_family, x)
        # Example 2.4's expansion of d_f(A)
        expected = (
            f("A") - f("AB") - f("AC") - f("AD")
            + f("ABC") + f("ABD") + f("ACD") - f("ABCD")
        )
        # literal reading: D^{{A}}_f(A) = f(A) - f(A) = 0 almost never
        # equals the Example 2.4 value
        assert literal == pytest.approx(0.0)
        corrected_family = SetFamily.singletons_of(s, s.complement(x))
        corrected = differential_value(f, corrected_family, x)
        assert corrected == pytest.approx(expected)
        assert corrected == pytest.approx(f.density_value(x))


class TestSection6FdfreeEquation:
    """The printed 'FDFree = Infreq union Disjunctive' garbles the cited
    construction; FDFree is frequent AND disjunctive-free."""

    def test_literal_equation_inconsistent(self, ground_abcd, rng):
        from repro.fis import is_disjunctive, mine_concise, random_baskets

        db = random_baskets(ground_abcd, 25, 0.5, rng)
        kappa = 5
        rep = mine_concise(db, kappa, max_rhs=2)
        literal_fdfree = {
            mask
            for mask in ground_abcd.all_masks()
            if db.support(mask) < kappa or is_disjunctive(db, mask, 2)
        }
        # under the literal reading, FDFree would contain infrequent sets,
        # contradicting that the representation stores their supports as
        # "frequent" elements; our miner's FDFree is the complement class
        assert set(rep.elements) != literal_fdfree
        for mask in rep.elements:
            assert db.support(mask) >= kappa
            assert not is_disjunctive(db, mask, 2)

    def test_corrected_reading_is_lossless(self, ground_abcd, rng):
        from repro.fis import mine_concise, random_baskets, verify_lossless

        db = random_baskets(ground_abcd, 25, 0.5, rng)
        assert verify_lossless(db, mine_concise(db, 5, max_rhs=2))


class TestTheorem81RelationalEdge:
    """Empty-family constraints in C break the printed nine-way
    equivalence at the two relational statements (no 'zero' model)."""

    def test_edge_instance(self, ground_abc):
        from repro.equivalence import evaluate_theorem81

        cset = ConstraintSet.of(ground_abc, "A -> ")
        target = DifferentialConstraint.parse(ground_abc, "B -> ")
        report = evaluate_theorem81(cset, target)
        assert not report.all_agree()
        assert report.consistent_with_paper()
        assert set(report.disagreeing()) == {"semantic_simpson", "boolean"}

    def test_no_edge_without_empty_families(self, ground_abc, rng):
        from repro.equivalence import evaluate_theorem81
        from repro.instances import random_constraint, random_constraint_set

        for _ in range(10):
            cset = random_constraint_set(
                rng, ground_abc, 2, max_members=2, min_members=1
            )
            target = random_constraint(
                rng, ground_abc, max_members=2, allow_empty_member=True
            )
            assert evaluate_theorem81(cset, target).all_agree()
