"""Shared fixtures for the test suite.

Ground sets of the sizes the paper's examples use, deterministic RNGs
(each test function gets a fresh, seeded generator), and a couple of
frequently-reused objects (the Example 3.2 function, the Example 2.2
constraint data).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.core import GroundSet, SetFamily, SetFunction

# Seeded Hypothesis profiles: ``derandomize=True`` makes every property
# test a pure function of its code, so runs are reproducible across the
# CI python matrix (no cross-job flakes from random example draws).
# ``deadline=None`` because exact-backend tables are interpreter-speed.
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, freshly seeded per test."""
    return random.Random(0xD1FF)


@pytest.fixture
def ground_a() -> GroundSet:
    """``S = {A}`` (Remark 3.6's ground set)."""
    return GroundSet("A")


@pytest.fixture
def ground_abc() -> GroundSet:
    """``S = {A, B, C}`` (Examples 3.2 and 3.4)."""
    return GroundSet("ABC")


@pytest.fixture
def ground_abcd() -> GroundSet:
    """``S = {A, B, C, D}`` (Examples 2.2-2.10 and 4.3)."""
    return GroundSet("ABCD")


@pytest.fixture
def ground_5() -> GroundSet:
    return GroundSet("ABCDE")


@pytest.fixture
def example_32_function(ground_abc: GroundSet) -> SetFunction:
    """Example 3.2: ``f((/)) = f(C) = 2`` and ``f = 1`` elsewhere."""
    return SetFunction.from_dict(
        ground_abc, {"": 2, "C": 2}, default=1, exact=True
    )


@pytest.fixture
def example_22_family(ground_abcd: GroundSet) -> SetFamily:
    """Example 2.2's family ``{B, CD}``."""
    return SetFamily.of(ground_abcd, "B", "CD")
