"""Golden backend regressions: paper example values pinned as literals.

The worked examples behind Figures 1/2 (the running constraint set
``{A -> B, B -> CD}`` and its derivations) and Examples 2.2/3.2 are
evaluated on *both* engine backends and compared against hard-coded
tables.  Backend drift -- a butterfly reordered, a tolerance nudged, a
cache returning a stale table -- then shows up as a literal diff against
this file instead of a flaky downstream failure.

All pinned values are integers, which float64 represents exactly, so
equality is exact on both backends by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    differential_function_by_definition,
    differential_value,
    find_uncovered,
)
from repro.core.implication import find_uncovered_engine, implies_engine, implies_lattice
from repro.engine import EvalContext, IncrementalEvalContext, recompute_tables
from repro.engine.backends import backend_by_name

BACKENDS = ["exact", "float"]

S3 = GroundSet("ABC")
S4 = GroundSet("ABCD")

#: Example 3.2: ``f((/)) = f(C) = 2`` and ``f = 1`` elsewhere over ABC.
EX32_TABLE = [2, 1, 1, 1, 2, 1, 1, 1]
EX32_DENSITY = [0, 0, 0, 0, 1, 0, 0, 1]

#: A pinned integer function over ABCD: ``f(X) = 3|X| + (mask mod 5)``.
PINNED_TABLE = [0, 4, 5, 9, 7, 6, 7, 11, 6, 10, 6, 10, 8, 12, 13, 12]
PINNED_DENSITY = [-10, 0, 5, 0, 10, -5, -5, -1, 5, 0, -5, -2, -5, 0, 1, 12]
#: Its Example 2.2 differential ``D_f^{B, CD}`` as a whole table.
PINNED_DIFF_B_CD = [0, -5, 0, 0, 5, -5, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0]

#: The Figure 1/2 running example ``C = {A -> B, B -> CD}`` over ABCD:
#: its atomic closure ``L(C)`` and the Theorem 3.5 counterexample mask
#: for the non-implied target ``C -> A``.
RUNNING_LC = [1, 2, 3, 5, 6, 7, 9, 10, 11, 13]  # A B AB AC BC ABC AD BD ABD ACD
RUNNING_UNCOVERED = 14  # BCD


def as_list(table):
    return list(np.asarray(table)) if isinstance(table, np.ndarray) else list(table)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestExample32Golden:
    def test_function_and_density_tables(self, backend_name):
        exact = backend_name == "exact"
        f = SetFunction.from_dict(S3, {"": 2, "C": 2}, default=1, exact=exact)
        assert as_list(f.table()) == EX32_TABLE
        assert as_list(f.density().table()) == EX32_DENSITY

    def test_from_density_roundtrip(self, backend_name):
        exact = backend_name == "exact"
        density = {m: v for m, v in enumerate(EX32_DENSITY) if v}
        f = SetFunction.from_density(S3, density, exact=exact)
        assert as_list(f.table()) == EX32_TABLE


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestExample22Golden:
    def test_pinned_density(self, backend_name):
        exact = backend_name == "exact"
        f = SetFunction(S4, PINNED_TABLE, exact=exact)
        assert as_list(f.density().table()) == PINNED_DENSITY

    def test_differential_table_engine(self, backend_name):
        exact = backend_name == "exact"
        f = SetFunction(S4, PINNED_TABLE, exact=exact)
        fam = SetFamily.of(S4, "B", "CD")
        got = f.differential(fam)
        assert as_list(got.table()) == PINNED_DIFF_B_CD
        assert got.exact == exact

    def test_differential_table_scalar(self, backend_name):
        exact = backend_name == "exact"
        f = SetFunction(S4, PINNED_TABLE, exact=exact)
        fam = SetFamily.of(S4, "B", "CD")
        got = differential_function_by_definition(f, fam)
        assert as_list(got.table()) == PINNED_DIFF_B_CD
        # Example 2.2's expansion at X = A, spelled out
        assert differential_value(f, fam, S4.parse("A")) == (
            PINNED_TABLE[1] - PINNED_TABLE[3] - PINNED_TABLE[13] + PINNED_TABLE[15]
        )

    def test_incremental_rebuild_hits_same_tables(self, backend_name):
        backend = backend_by_name(backend_name)
        fam = SetFamily.of(S4, "B", "CD")
        ctx = IncrementalEvalContext(S4, backend=backend)
        ctx.support_table()
        ctx.differential_table(fam)
        for mask, value in enumerate(PINNED_DENSITY):
            ctx.apply_delta(mask, value)
        assert as_list(ctx.support_table()) == PINNED_TABLE
        assert as_list(ctx.differential_table(fam)) == PINNED_DIFF_B_CD
        density, support, (diff,) = recompute_tables(
            4, enumerate(PINNED_DENSITY), [fam.members], backend
        )
        assert as_list(density) == PINNED_DENSITY
        assert as_list(support) == PINNED_TABLE
        assert as_list(diff) == PINNED_DIFF_B_CD


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestRunningExampleGolden:
    """The Figure 1/2 derivation example ``{A -> B, B -> CD} |- A -> CD``."""

    def test_atomic_closure_pinned(self, backend_name):
        cset = ConstraintSet.of(S4, "A -> B", "B -> CD")
        EvalContext(backend=backend_name)  # backends share the bool tables
        assert sorted(cset.iter_lattice()) == RUNNING_LC
        assert [S4.format_mask(m) for m in RUNNING_LC] == [
            "A", "B", "AB", "AC", "BC", "ABC", "AD", "BD", "ABD", "ACD",
        ]

    def test_implication_and_counterexample_pinned(self, backend_name):
        cset = ConstraintSet.of(S4, "A -> B", "B -> CD")
        context = EvalContext(backend=backend_name)
        implied = DifferentialConstraint.parse(S4, "A -> CD")
        not_implied = DifferentialConstraint.parse(S4, "C -> A")
        assert implies_engine(cset, implied, context=context)
        assert implies_lattice(cset, implied)
        assert not implies_engine(cset, not_implied, context=context)
        assert find_uncovered(cset, not_implied) == RUNNING_UNCOVERED
        assert find_uncovered_engine(cset, not_implied, context=context) == (
            RUNNING_UNCOVERED
        )

    def test_counterexample_function_separates(self, backend_name):
        """The Theorem 3.5 witness at the pinned mask satisfies C and
        violates the target -- on both backends."""
        exact = backend_name == "exact"
        cset = ConstraintSet.of(S4, "A -> B", "B -> CD")
        not_implied = DifferentialConstraint.parse(S4, "C -> A")
        witness = SetFunction.from_density(
            S4, {RUNNING_UNCOVERED: 1}, exact=exact
        )
        assert cset.satisfied_by(witness)
        assert not not_implied.satisfied_by(witness)
