"""Unit tests for distributions and marginals."""

import random

import pytest

from repro.core import GroundSet
from repro.relational import Distribution, Relation


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABC")


@pytest.fixture
def r(s) -> Relation:
    return Relation(s, [(0, 0, 0), (0, 1, 0), (1, 1, 1)])


class TestValidation:
    def test_uniform(self, r):
        p = Distribution.uniform(r)
        assert all(abs(p.prob(t) - 1 / 3) < 1e-12 for t in r)

    def test_empty_relation_rejected(self, s):
        with pytest.raises(ValueError):
            Distribution.uniform(Relation(s, []))

    def test_zero_mass_rejected(self, r):
        probs = {row: (1.0 if i else 0.0) for i, row in enumerate(r.rows)}
        with pytest.raises(ValueError):
            Distribution(r, probs)

    def test_mass_off_relation_rejected(self, r, s):
        probs = {row: 1 / 4 for row in r.rows}
        probs[(9, 9, 9)] = 1 / 4
        with pytest.raises(ValueError):
            Distribution(r, probs)

    def test_normalization_checked(self, r):
        probs = {row: 0.5 for row in r.rows}  # sums to 1.5
        with pytest.raises(ValueError):
            Distribution(r, probs)

    def test_random_is_valid_and_deterministic(self, r):
        a = Distribution.random(r, random.Random(3))
        b = Distribution.random(r, random.Random(3))
        assert all(abs(a.prob(t) - b.prob(t)) < 1e-12 for t in r)
        assert abs(sum(p for _, p in a.items()) - 1.0) < 1e-9


class TestMarginals:
    def test_marginal_sums(self, r, s):
        p = Distribution.uniform(r)
        marg = p.marginal(s.parse("A"))
        assert marg[(0,)] == pytest.approx(2 / 3)
        assert marg[(1,)] == pytest.approx(1 / 3)

    def test_empty_marginal_is_total_mass(self, r):
        p = Distribution.uniform(r)
        assert p.marginal(0)[()] == pytest.approx(1.0)

    def test_full_marginal_is_p(self, r, s):
        p = Distribution.uniform(r)
        marg = p.marginal(s.universe_mask)
        for row in r:
            assert marg[row] == pytest.approx(p.prob(row))

    def test_prob_off_relation_is_zero(self, r):
        p = Distribution.uniform(r)
        assert p.prob((7, 7, 7)) == 0.0
