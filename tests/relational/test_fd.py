"""Unit tests for functional dependencies and the P-time fragment."""

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.core.implication import implies_lattice
from repro.relational import (
    FunctionalDependency,
    armstrong_derives,
    candidate_keys,
    closure,
    implies_fd_classic,
    is_superkey,
    random_relation,
    relation_satisfying_fds,
)


class TestBasics:
    def test_parse_and_repr(self, ground_abcd):
        fd = FunctionalDependency.parse(ground_abcd, "AB -> C")
        assert fd.lhs == ground_abcd.parse("AB")
        assert fd.rhs == ground_abcd.parse("C")
        assert repr(fd) == "AB -> C"

    def test_triviality(self, ground_abcd):
        assert FunctionalDependency.parse(ground_abcd, "AB -> A").is_trivial
        assert not FunctionalDependency.parse(ground_abcd, "AB -> C").is_trivial

    def test_satisfaction(self, ground_abc):
        from repro.relational import Relation

        r = Relation(ground_abc, [(0, 1, 1), (0, 1, 2), (1, 2, 2)])
        assert FunctionalDependency.parse(ground_abc, "A -> B").satisfied_by(r)
        assert not FunctionalDependency.parse(ground_abc, "A -> C").satisfied_by(r)


class TestClosure:
    def test_textbook_example(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        assert closure(ground_abcd, ground_abcd.parse("A"), fds) == ground_abcd.parse("ABC")
        assert closure(ground_abcd, ground_abcd.parse("D"), fds) == ground_abcd.parse("D")

    def test_implication(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        assert implies_fd_classic(fds, FunctionalDependency.parse(ground_abcd, "A -> C"))
        assert not implies_fd_classic(fds, FunctionalDependency.parse(ground_abcd, "C -> A"))

    def test_armstrong_agrees_with_closure(self, ground_abcd, rng):
        for _ in range(80):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 4))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            assert armstrong_derives(fds, t) == implies_fd_classic(fds, t)


class TestPaperConclusion:
    """Singleton-RHS differential implication == FD implication."""

    def test_equivalence_random(self, ground_abcd, rng):
        for _ in range(100):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 4))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            cset = ConstraintSet(
                ground_abcd, [fd.to_differential() for fd in fds]
            )
            assert implies_fd_classic(fds, t) == implies_lattice(
                cset, t.to_differential()
            )

    def test_boolean_route_agrees(self, ground_abcd, rng):
        from repro.relational import implies_boolean

        for _ in range(40):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 3))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            assert implies_fd_classic(fds, t) == implies_boolean(
                [fd.to_boolean() for fd in fds], t.to_boolean()
            )


class TestKeys:
    def test_candidate_keys(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        keys = candidate_keys(ground_abcd, fds)
        assert keys == [ground_abcd.parse("AD")]

    def test_superkey(self, ground_abcd):
        fds = [FunctionalDependency.parse(ground_abcd, "A -> BCD")]
        assert is_superkey(ground_abcd, ground_abcd.parse("A"), fds)
        assert not is_superkey(ground_abcd, ground_abcd.parse("B"), fds)

    def test_keys_are_minimal_antichain(self, ground_abcd, rng):
        import repro.core.subsets as sb

        for _ in range(10):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(3)
            ]
            keys = candidate_keys(ground_abcd, fds)
            for a in keys:
                assert is_superkey(ground_abcd, a, fds)
                for b in keys:
                    if a != b:
                        assert not sb.is_subset(a, b)


class TestRepair:
    def test_repaired_relations_satisfy(self, ground_abcd, rng):
        for _ in range(15):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 3))
            ]
            r = relation_satisfying_fds(ground_abcd, fds, 10, 3, rng)
            for fd in fds:
                assert fd.satisfied_by(r)

    def test_random_relation_shape(self, ground_abc, rng):
        r = random_relation(ground_abc, 10, 2, rng)
        assert len(r) <= 10
        for row in r:
            assert all(v in (0, 1) for v in row)
