"""Unit tests for functional dependencies and the P-time fragment."""

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.core.implication import implies_lattice
from repro.relational import (
    FunctionalDependency,
    armstrong_derives,
    candidate_keys,
    closure,
    implies_fd_classic,
    is_superkey,
    random_relation,
    relation_satisfying_fds,
)


class TestBasics:
    def test_parse_and_repr(self, ground_abcd):
        fd = FunctionalDependency.parse(ground_abcd, "AB -> C")
        assert fd.lhs == ground_abcd.parse("AB")
        assert fd.rhs == ground_abcd.parse("C")
        assert repr(fd) == "AB -> C"

    def test_triviality(self, ground_abcd):
        assert FunctionalDependency.parse(ground_abcd, "AB -> A").is_trivial
        assert not FunctionalDependency.parse(ground_abcd, "AB -> C").is_trivial

    def test_satisfaction(self, ground_abc):
        from repro.relational import Relation

        r = Relation(ground_abc, [(0, 1, 1), (0, 1, 2), (1, 2, 2)])
        assert FunctionalDependency.parse(ground_abc, "A -> B").satisfied_by(r)
        assert not FunctionalDependency.parse(ground_abc, "A -> C").satisfied_by(r)


class TestClosure:
    def test_textbook_example(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        assert closure(ground_abcd, ground_abcd.parse("A"), fds) == ground_abcd.parse("ABC")
        assert closure(ground_abcd, ground_abcd.parse("D"), fds) == ground_abcd.parse("D")

    def test_implication(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        assert implies_fd_classic(fds, FunctionalDependency.parse(ground_abcd, "A -> C"))
        assert not implies_fd_classic(fds, FunctionalDependency.parse(ground_abcd, "C -> A"))

    def test_armstrong_agrees_with_closure(self, ground_abcd, rng):
        for _ in range(80):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 4))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            assert armstrong_derives(fds, t) == implies_fd_classic(fds, t)


class TestPaperConclusion:
    """Singleton-RHS differential implication == FD implication."""

    def test_equivalence_random(self, ground_abcd, rng):
        for _ in range(100):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 4))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            cset = ConstraintSet(
                ground_abcd, [fd.to_differential() for fd in fds]
            )
            assert implies_fd_classic(fds, t) == implies_lattice(
                cset, t.to_differential()
            )

    def test_boolean_route_agrees(self, ground_abcd, rng):
        from repro.relational import implies_boolean

        for _ in range(40):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 3))
            ]
            t = FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
            assert implies_fd_classic(fds, t) == implies_boolean(
                [fd.to_boolean() for fd in fds], t.to_boolean()
            )


class TestKeys:
    def test_candidate_keys(self, ground_abcd):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> C"),
        ]
        keys = candidate_keys(ground_abcd, fds)
        assert keys == [ground_abcd.parse("AD")]

    def test_superkey(self, ground_abcd):
        fds = [FunctionalDependency.parse(ground_abcd, "A -> BCD")]
        assert is_superkey(ground_abcd, ground_abcd.parse("A"), fds)
        assert not is_superkey(ground_abcd, ground_abcd.parse("B"), fds)

    def test_keys_are_minimal_antichain(self, ground_abcd, rng):
        import repro.core.subsets as sb

        for _ in range(10):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(3)
            ]
            keys = candidate_keys(ground_abcd, fds)
            for a in keys:
                assert is_superkey(ground_abcd, a, fds)
                for b in keys:
                    if a != b:
                        assert not sb.is_subset(a, b)


class TestRepair:
    def test_repaired_relations_satisfy(self, ground_abcd, rng):
        for _ in range(15):
            fds = [
                FunctionalDependency(ground_abcd, rng.randrange(16), rng.randrange(16))
                for _ in range(rng.randint(1, 3))
            ]
            r = relation_satisfying_fds(ground_abcd, fds, 10, 3, rng)
            for fd in fds:
                assert fd.satisfied_by(r)

    def test_random_relation_shape(self, ground_abc, rng):
        r = random_relation(ground_abc, 10, 2, rng)
        assert len(r) <= 10
        for row in r:
            assert all(v in (0, 1) for v in row)


class TestDurableChecker:
    """The streaming FD checker's row-level durability."""

    @pytest.fixture
    def fds(self, ground_abc):
        return [
            FunctionalDependency.parse(ground_abc, "A -> B"),
            FunctionalDependency.parse(ground_abc, "B -> C"),
        ]

    def _checker(self, ground, fds, tmp_path, **kwargs):
        from repro.relational import StreamingFDChecker

        return StreamingFDChecker(
            ground, fds, durable=str(tmp_path / "fd"), **kwargs
        )

    def test_reopen_recovers_rows_and_density(self, ground_abc, fds, tmp_path):
        ck = self._checker(ground_abc, fds, tmp_path, snapshot_every=3)
        ck.insert((1, "x", True))
        ck.insert((1, "x", True))
        ck.insert((2, "y", False))
        ck.insert((2, "z", False))  # violates A -> B
        assert ck.violated_fds() != ()
        ck.delete((2, "z", False))
        density = list(ck.session.context.density_table())
        ck.close()

        ck2 = self._checker(ground_abc, fds, tmp_path)
        assert len(ck2) == 3
        assert ck2.violated_fds() == ()
        assert list(ck2.session.context.density_table()) == density
        # the recovered relation equals the materialized oracle
        assert set(ck2.to_relation()) == {(1, "x", True), (2, "y", False)}
        # and streaming continues with contiguous transaction numbers
        ck2.insert((3, "w", True))
        ck2.close()
        ck3 = self._checker(ground_abc, fds, tmp_path)
        assert len(ck3) == 4
        ck3.close()

    def test_torn_final_row_record_is_dropped(self, ground_abc, fds, tmp_path):
        import os

        ck = self._checker(ground_abc, fds, tmp_path)
        ck.insert((1, 1, 1))
        ck.insert((2, 2, 2))
        ck.close()
        wal = tmp_path / "fd" / "wal.log"
        with open(wal, "rb+") as fh:
            fh.truncate(os.path.getsize(wal) - 2)
        ck2 = self._checker(ground_abc, fds, tmp_path)
        assert len(ck2) == 1 and ck2._row_tx == 1
        ck2.close()

    def test_wrong_kind_of_dir_is_loud(self, ground_abc, fds, tmp_path):
        from repro.engine import StreamSession
        from repro.errors import CorruptSnapshotError

        StreamSession(ground_abc, durable=str(tmp_path / "fd")).close()
        with pytest.raises(CorruptSnapshotError, match="stream-session"):
            self._checker(ground_abc, fds, tmp_path)

    def test_snapshot_requires_durability(self, ground_abc, fds):
        from repro.errors import PersistenceError
        from repro.relational import StreamingFDChecker

        ck = StreamingFDChecker(ground_abc, fds)
        with pytest.raises(PersistenceError, match="not durable"):
            ck.snapshot()

    def test_heterogeneous_row_values_snapshot_cleanly(
        self, ground_abc, fds, tmp_path
    ):
        ck = self._checker(ground_abc, fds, tmp_path)
        ck.insert((1, "x", True))
        ck.insert(("a", 2, None))  # mixed types across rows
        ck.snapshot()
        ck.close()
        ck2 = self._checker(ground_abc, fds, tmp_path)
        assert len(ck2) == 2
        ck2.close()

    def test_failed_apply_wedges_the_durable_checker(
        self, ground_abc, fds, tmp_path, monkeypatch
    ):
        from repro.engine import StreamSession
        from repro.errors import PersistenceError

        ck = self._checker(ground_abc, fds, tmp_path)
        ck.insert((1, 1, 1))

        def exploding(self, deltas):
            raise RuntimeError("simulated executor death")

        monkeypatch.setattr(StreamSession, "apply", exploding)
        with pytest.raises(RuntimeError, match="executor death"):
            ck.insert((2, 2, 2))
        monkeypatch.undo()
        assert ck._row_tx == 2  # the logged row op owns seq 2
        with pytest.raises(PersistenceError, match="wedged"):
            ck.insert((3, 3, 3))
        with pytest.raises(PersistenceError, match="wedged"):
            ck.snapshot()
        ck.close()
        ck2 = self._checker(ground_abc, fds, tmp_path)
        assert len(ck2) == 2 and ck2._row_tx == 2  # replay healed
        ck2.close()
