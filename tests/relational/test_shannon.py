"""Unit tests for the Shannon-entropy probes (the open problem)."""

import math

import pytest

from repro.core import GroundSet
from repro.relational import (
    Distribution,
    Relation,
    entropy_density_can_be_negative,
    entropy_function,
    entropy_value,
    fd_holds_by_entropy,
    random_probabilistic_relation,
    random_relation,
)


class TestEntropyValues:
    def test_empty_set_entropy_zero(self, ground_abc, rng):
        dist = random_probabilistic_relation(ground_abc, 5, 3, rng)
        assert entropy_value(dist, 0) == pytest.approx(0.0)

    def test_uniform_distinct_column(self, ground_abc):
        rows = [(i, 0, 0) for i in range(4)]
        dist = Distribution.uniform(Relation(ground_abc, rows))
        assert entropy_value(dist, ground_abc.parse("A")) == pytest.approx(2.0)
        assert entropy_value(dist, ground_abc.parse("B")) == pytest.approx(0.0)

    def test_monotone_increasing_in_x(self, ground_abc, rng):
        import repro.core.subsets as sb

        for _ in range(10):
            dist = random_probabilistic_relation(ground_abc, 6, 2, rng)
            h = entropy_function(dist)
            for x in ground_abc.all_masks():
                for sup in sb.iter_supersets(x, ground_abc.universe_mask):
                    assert h.value(sup) >= h.value(x) - 1e-9

    def test_submodularity(self, ground_abc, rng):
        """h(X) + h(Y) >= h(X | Y) + h(X & Y) -- Shannon's inequality."""
        for _ in range(10):
            dist = random_probabilistic_relation(ground_abc, 6, 2, rng)
            h = entropy_function(dist)
            for x in ground_abc.all_masks():
                for y in ground_abc.all_masks():
                    lhs = h.value(x) + h.value(y)
                    rhs = h.value(x | y) + h.value(x & y)
                    assert lhs >= rhs - 1e-9


class TestFdCharacterization:
    def test_entropy_test_matches_pairwise(self, ground_abc, rng):
        from repro.relational import FunctionalDependency

        for _ in range(40):
            r = random_relation(ground_abc, rng.randint(1, 8), 2, rng)
            if r.is_empty():
                continue
            dist = Distribution.uniform(r)
            lhs = rng.randrange(8)
            rhs = rng.randrange(8)
            fd = FunctionalDependency(ground_abc, lhs, rhs)
            assert fd.satisfied_by(r) == fd_holds_by_entropy(dist, lhs, rhs)

    def test_holds_for_any_positive_distribution(self, ground_abc, rng):
        """The FD characterization is distribution-independent."""
        from repro.relational import FunctionalDependency

        r = Relation(ground_abc, [(0, 1, 0), (0, 1, 1), (1, 2, 0)])
        fd = FunctionalDependency.parse(ground_abc, "A -> B")
        assert fd.satisfied_by(r)
        for _ in range(5):
            dist = Distribution.random(r, rng)
            assert fd_holds_by_entropy(dist, fd.lhs, fd.rhs)


class TestOpenProblemBoundary:
    def test_xor_witness(self, ground_abc):
        relation, value = entropy_density_can_be_negative(ground_abc)
        assert value == pytest.approx(-1.0)
        assert len(relation) == 4

    def test_witness_with_padding(self):
        s = GroundSet("ABCDE")
        relation, value = entropy_density_can_be_negative(s)
        assert value == pytest.approx(-1.0)

    def test_too_few_attributes_rejected(self):
        with pytest.raises(ValueError):
            entropy_density_can_be_negative(GroundSet("AB"))

    def test_entropy_functions_not_all_frequency(self, ground_abc):
        """The concrete content of the open problem: Shannon functions
        escape positive(S), so Theorem 3.5's counterexample machinery
        does not specialize to them the way it does for Simpson."""
        from repro.fis import is_frequency_function

        relation, _ = entropy_density_can_be_negative(ground_abc)
        h = entropy_function(Distribution.uniform(relation))
        assert not is_frequency_function(h, tol=1e-9)
