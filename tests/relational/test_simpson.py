"""Unit tests for Simpson functions (Definition 7.1, Proposition 7.2)."""

import pytest

from repro.core import GroundSet
from repro.fis import is_frequency_function
from repro.instances import random_constraint
from repro.relational import (
    Distribution,
    Relation,
    random_probabilistic_relation,
    simpson_density_function_pairsum,
    simpson_density_pairsum,
    simpson_function,
    simpson_satisfies,
    simpson_value,
)


class TestDefinition71:
    def test_empty_set_value_is_one(self, ground_abc, rng):
        dist = random_probabilistic_relation(ground_abc, 5, 3, rng)
        assert simpson_value(dist, 0) == pytest.approx(1.0)

    def test_single_row_all_ones(self, ground_abc):
        r = Relation(ground_abc, [(1, 2, 3)])
        dist = Distribution.uniform(r)
        for mask in ground_abc.all_masks():
            assert simpson_value(dist, mask) == pytest.approx(1.0)

    def test_uniform_distinct_column(self, ground_abc):
        """n rows all distinct on A: simpson(A) = n * (1/n)^2 = 1/n."""
        rows = [(i, 0, 0) for i in range(4)]
        dist = Distribution.uniform(Relation(ground_abc, rows))
        assert simpson_value(dist, ground_abc.parse("A")) == pytest.approx(1 / 4)

    def test_monotone_decreasing_in_x(self, ground_abc, rng):
        """Refining the grouping cannot increase the Simpson index."""
        import repro.core.subsets as sb

        for _ in range(10):
            dist = random_probabilistic_relation(ground_abc, 6, 2, rng)
            f = simpson_function(dist)
            for x in ground_abc.all_masks():
                for sup in sb.iter_supersets(x, ground_abc.universe_mask):
                    assert f.value(sup) <= f.value(x) + 1e-9


class TestProposition72:
    def test_pairsum_matches_mobius(self, ground_abcd, rng):
        for _ in range(20):
            dist = random_probabilistic_relation(ground_abcd, rng.randint(1, 7), 3, rng)
            f = simpson_function(dist)
            pairsum = simpson_density_function_pairsum(dist)
            assert f.density().allclose(pairsum, 1e-9)

    def test_pointwise_pairsum(self, ground_abc, rng):
        dist = random_probabilistic_relation(ground_abc, 5, 2, rng)
        f = simpson_function(dist)
        for mask in ground_abc.all_masks():
            assert simpson_density_pairsum(dist, mask) == pytest.approx(
                f.density_value(mask), abs=1e-9
            )

    def test_density_nonnegative(self, ground_abcd, rng):
        """Every Simpson function is a frequency function (Section 7)."""
        for _ in range(15):
            dist = random_probabilistic_relation(ground_abcd, rng.randint(1, 8), 3, rng)
            assert is_frequency_function(simpson_function(dist), tol=1e-9)

    def test_density_at_s_strictly_positive(self, ground_abc, rng):
        """d(S) = sum p(t)^2 > 0 -- the relational-vacuity driver."""
        for _ in range(10):
            dist = random_probabilistic_relation(ground_abc, rng.randint(1, 6), 2, rng)
            f = simpson_function(dist)
            assert f.density_value(ground_abc.universe_mask) > 0


class TestSatisfaction:
    def test_pair_based_matches_density_based(self, ground_abcd, rng):
        for _ in range(25):
            dist = random_probabilistic_relation(ground_abcd, rng.randint(1, 6), 2, rng)
            f = simpson_function(dist)
            for _ in range(8):
                c = random_constraint(
                    rng, ground_abcd, max_members=2, allow_empty_member=True
                )
                assert simpson_satisfies(dist, c) == c.satisfied_by(f, tol=1e-9)

    def test_never_satisfies_empty_family(self, ground_abc, rng):
        from repro.core import DifferentialConstraint, SetFamily

        c = DifferentialConstraint(ground_abc, 0, SetFamily(ground_abc))
        for _ in range(5):
            dist = random_probabilistic_relation(ground_abc, rng.randint(1, 5), 2, rng)
            assert not simpson_satisfies(dist, c)
