"""Unit tests for positive boolean dependencies (Prop 7.3, Cor 7.4)."""

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.instances import random_constraint
from repro.relational import (
    BooleanDependency,
    Relation,
    implies_boolean,
    random_probabilistic_relation,
    semantic_implies_over_two_tuple_relations,
    simpson_satisfies,
)


class TestSatisfaction:
    def test_formula_6_semantics(self, ground_abc):
        r = Relation(ground_abc, [(0, 0, 0), (0, 0, 1), (1, 2, 2)])
        # A =>bool {B}: rows 1,2 agree on A and on B -- holds
        assert BooleanDependency.of(ground_abc, "A", "B").satisfied_by(r)
        # B =>bool {C}: rows 1,2 agree on B but differ on C -- fails
        assert not BooleanDependency.of(ground_abc, "B", "C").satisfied_by(r)

    def test_fd_special_case(self, ground_abc, rng):
        """A boolean dependency with Y = {Y} is the FD X -> Y."""
        from repro.relational import FunctionalDependency, random_relation

        for _ in range(30):
            r = random_relation(ground_abc, rng.randint(1, 8), 2, rng)
            lhs = rng.randrange(8)
            rhs = rng.randrange(8)
            fd = FunctionalDependency(ground_abc, lhs, rhs)
            bd = BooleanDependency(
                ground_abc, lhs, SetFamily(ground_abc, [rhs])
            )
            assert fd.satisfied_by(r) == bd.satisfied_by(r)

    def test_empty_family_violated_by_reflexive_pairs(self, ground_abc):
        r = Relation(ground_abc, [(0, 0, 0)])
        bd = BooleanDependency(ground_abc, 0, SetFamily(ground_abc))
        assert not bd.satisfied_by(r)

    def test_empty_member_always_satisfied(self, ground_abc, rng):
        from repro.relational import random_relation

        bd = BooleanDependency(
            ground_abc, ground_abc.parse("A"), SetFamily(ground_abc, [0])
        )
        for _ in range(5):
            r = random_relation(ground_abc, rng.randint(1, 6), 2, rng)
            assert bd.satisfied_by(r)


class TestProposition73:
    def test_simpson_iff_boolean(self, ground_abcd, rng):
        for _ in range(30):
            dist = random_probabilistic_relation(
                ground_abcd, rng.randint(1, 6), 2, rng
            )
            for _ in range(6):
                c = random_constraint(
                    rng, ground_abcd, max_members=2, allow_empty_member=True
                )
                bd = BooleanDependency.from_differential(c)
                assert simpson_satisfies(dist, c) == bd.satisfied_by(
                    dist.relation
                )

    def test_independent_of_distribution(self, ground_abc, rng):
        """Prop 7.3's satisfaction is a property of r alone; any strictly
        positive p gives the same answer."""
        from repro.relational import Distribution, random_relation

        for _ in range(15):
            r = random_relation(ground_abc, rng.randint(1, 6), 2, rng)
            if r.is_empty():
                continue
            c = random_constraint(rng, ground_abc, max_members=2)
            answers = {
                simpson_satisfies(Distribution.uniform(r), c),
                simpson_satisfies(Distribution.random(r, rng), c),
            }
            assert len(answers) == 1


class TestCorollary74:
    def test_routes_agree(self, ground_abcd, rng):
        for _ in range(50):
            deps = [
                BooleanDependency.from_differential(
                    random_constraint(rng, ground_abcd, max_members=2, min_members=1)
                )
                for _ in range(rng.randint(1, 3))
            ]
            t = BooleanDependency.from_differential(
                random_constraint(rng, ground_abcd, max_members=2)
            )
            a = implies_boolean(deps, t, "lattice")
            b = implies_boolean(deps, t, "sat")
            c = semantic_implies_over_two_tuple_relations(deps, t)
            assert a == b == c

    def test_fd_chain_in_boolean_world(self, ground_abc):
        deps = [
            BooleanDependency.of(ground_abc, "A", "B"),
            BooleanDependency.of(ground_abc, "B", "C"),
        ]
        t = BooleanDependency.of(ground_abc, "A", "C")
        assert implies_boolean(deps, t)
        assert semantic_implies_over_two_tuple_relations(deps, t)

    def test_repr(self, ground_abc):
        bd = BooleanDependency.of(ground_abc, "A", "B", "C")
        assert repr(bd) == "A =>bool {B, C}"
