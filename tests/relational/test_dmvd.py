"""Tests for degenerate multivalued dependencies."""

import pytest

from repro.core import GroundSet, derive, check_proof, ConstraintSet
from repro.relational import Relation, random_relation
from repro.relational.dmvd import DegenerateMVD, implies_dmvd


class TestConstruction:
    def test_partition(self, ground_abcd):
        d = DegenerateMVD.of(ground_abcd, "A", "BC")
        assert d.right == ground_abcd.parse("D")
        assert repr(d) == "A ->-> BC | D"

    def test_branch_symmetry(self, ground_abcd):
        a = DegenerateMVD.of(ground_abcd, "A", "BC")
        b = DegenerateMVD.of(ground_abcd, "A", "D")
        assert a == b
        assert hash(a) == hash(b)

    def test_overlap_rejected(self, ground_abcd):
        with pytest.raises(ValueError):
            DegenerateMVD.of(ground_abcd, "AB", "BC")


class TestSatisfaction:
    def test_semantics(self, ground_abcd):
        # tuples agreeing on A agree on BC or on D: the A=0 group shares
        # BC, the A=1 group shares D, cross pairs differ on A (vacuous)
        r = Relation(
            ground_abcd,
            [
                (0, 1, 1, 9),
                (0, 1, 1, 7),
                (1, 2, 5, 7),
                (1, 3, 6, 7),
            ],
        )
        assert DegenerateMVD.of(ground_abcd, "A", "BC").satisfied_by(r)
        r_bad = Relation(
            ground_abcd,
            [(0, 1, 1, 9), (0, 2, 1, 7)],  # agree on A and C only
        )
        assert not DegenerateMVD.of(ground_abcd, "A", "BC").satisfied_by(r_bad)

    def test_full_branch_always_holds(self, ground_abcd, rng):
        """X ->-> (S-X) | (/) is trivial."""
        d = DegenerateMVD.of(ground_abcd, "A", "BCD")
        for _ in range(10):
            r = random_relation(ground_abcd, rng.randint(1, 8), 2, rng)
            assert d.satisfied_by(r)

    def test_matches_two_tuple_characterization(self, ground_abcd, rng):
        from repro.relational import two_tuple_relation

        for _ in range(30):
            lhs = rng.randrange(16)
            left = rng.randrange(16) & ~lhs
            d = DegenerateMVD(ground_abcd, lhs, left)
            c = d.to_differential()
            for u in ground_abcd.all_masks():
                r = two_tuple_relation(ground_abcd, u)
                want = not c.lattice_contains(u) and not c.lattice_contains(
                    ground_abcd.universe_mask
                )
                assert d.satisfied_by(r) == want


class TestImplication:
    def test_fd_implies_dmvd(self, ground_abcd):
        """Classical fact: X -> Y implies X ->-> Y | Z."""
        from repro.relational import FunctionalDependency

        fd = FunctionalDependency.parse(ground_abcd, "A -> BC")
        dmvd = DegenerateMVD.of(ground_abcd, "A", "BC")
        cset = ConstraintSet(ground_abcd, [fd.to_differential()])
        assert cset.implies(dmvd.to_differential())

    def test_complement_rule_is_built_in(self, ground_abcd):
        """X ->-> Y | Z and X ->-> Z | Y coincide by construction."""
        a = DegenerateMVD.of(ground_abcd, "A", "BC")
        assert implies_dmvd([a], DegenerateMVD.of(ground_abcd, "A", "D"))

    def test_augmentation(self, ground_abcd):
        a = DegenerateMVD.of(ground_abcd, "A", "BC")
        cset = ConstraintSet(ground_abcd, [a.to_differential()])
        # AD ->-> BC | (/)... augment the LHS: AD ->-> BC | (rest)
        lifted = DegenerateMVD.of(ground_abcd, "AD", "BC")
        assert cset.implies(lifted.to_differential())

    def test_implied_dmvd_has_figure1_derivation(self, ground_abcd):
        a = DegenerateMVD.of(ground_abcd, "A", "BC")
        target = DegenerateMVD.of(ground_abcd, "AD", "BC")
        cset = ConstraintSet(ground_abcd, [a.to_differential()])
        proof = derive(cset, target.to_differential(), allow_derived=False)
        check_proof(proof, cset.constraints, allow_derived=False)

    def test_implication_matches_semantic_scan(self, ground_abcd, rng):
        from repro.relational import semantic_implies_over_two_tuple_relations

        for _ in range(25):
            premises = []
            for _ in range(rng.randint(1, 2)):
                lhs = rng.randrange(16)
                left = rng.randrange(16) & ~lhs
                premises.append(DegenerateMVD(ground_abcd, lhs, left))
            lhs = rng.randrange(16)
            left = rng.randrange(16) & ~lhs
            target = DegenerateMVD(ground_abcd, lhs, left)
            got = implies_dmvd(premises, target)
            want = semantic_implies_over_two_tuple_relations(
                [p.to_boolean() for p in premises], target.to_boolean()
            )
            assert got == want
