"""Unit tests for relations and the two-tuple construction."""

import pytest

from repro.core import GroundSet
from repro.relational import Relation, two_tuple_relation


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABC")


class TestConstruction:
    def test_set_semantics(self, s):
        r = Relation(s, [(0, 1, 2), (0, 1, 2), (1, 1, 1)])
        assert len(r) == 2

    def test_width_checked(self, s):
        with pytest.raises(ValueError):
            Relation(s, [(0, 1)])

    def test_of(self, s):
        r = Relation.of(s, (0, 0, 0), (1, 1, 1))
        assert len(r) == 2

    def test_equality_ignores_order(self, s):
        a = Relation(s, [(0, 0, 0), (1, 1, 1)])
        b = Relation(s, [(1, 1, 1), (0, 0, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty(self, s):
        assert Relation(s, []).is_empty()


class TestProjectionAndAgreement:
    def test_project_row(self, s):
        r = Relation(s, [(5, 6, 7)])
        assert r.project_row((5, 6, 7), s.parse("AC")) == (5, 7)
        assert r.project_row((5, 6, 7), 0) == ()

    def test_project(self, s):
        r = Relation(s, [(0, 1, 0), (0, 2, 0), (1, 1, 0)])
        assert r.project(s.parse("A")) == {(0,), (1,)}
        assert r.project(s.parse("AC")) == {(0, 0), (1, 0)}
        assert r.project(0) == {()}

    def test_agree(self, s):
        r = Relation(s, [(0, 1, 0), (0, 2, 0)])
        t, t2 = r.rows
        assert r.agree(t, t2, s.parse("AC"))
        assert not r.agree(t, t2, s.parse("AB"))
        assert r.agree(t, t2, 0)

    def test_agreement_set(self, s):
        r = Relation(s, [(0, 1, 0), (0, 2, 0)])
        t, t2 = r.rows
        assert r.agreement_set(t, t2) == s.parse("AC")
        assert r.agreement_set(t, t) == s.universe_mask


class TestTwoTupleRelation:
    def test_agreement_exactly_u(self, s):
        for u in s.all_masks():
            r = two_tuple_relation(s, u)
            if u == s.universe_mask:
                assert len(r) == 1
            else:
                assert len(r) == 2
                t, t2 = r.rows
                assert r.agreement_set(t, t2) == u

    def test_boolean_dependency_characterization(self, s, rng):
        """r_U satisfies X =>bool Y iff both U and S avoid L(X, Y);
        on nonempty families the S-condition is automatic."""
        from repro.instances import random_constraint
        from repro.relational import BooleanDependency

        universe = s.universe_mask
        for _ in range(60):
            c = random_constraint(rng, s, max_members=2, allow_empty_member=True)
            bd = BooleanDependency.from_differential(c)
            for u in s.all_masks():
                r = two_tuple_relation(s, u)
                want = not c.lattice_contains(u) and not c.lattice_contains(
                    universe
                )
                assert bd.satisfied_by(r) == want
                if len(c.family) >= 1:
                    assert bd.satisfied_by(r) == (not c.lattice_contains(u))
